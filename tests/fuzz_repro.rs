//! Fuzz-reproducer regression fixtures.
//!
//! Two minimized failing cases produced by `enmc fuzz-dram --inject-bug`
//! are checked in under `tests/golden/fuzz_repro_*.json`. Each test
//! re-derives the reproducer from scratch (generate → run → ddmin shrink,
//! all deterministic) and requires byte-level agreement with the fixture,
//! then replays the fixture and requires the planted bug's rule to fire.
//! That pins three things at once: the traffic generators, the shrinker,
//! and the checker's verdict on a known-bad command stream.
//!
//! Intentional changes are re-blessed with
//! `ENMC_BLESS=1 cargo test --test fuzz_repro`.

use enmc::dram::fuzz::{self, InjectedBug, PatternKind, Reproducer};
use enmc::dram::{AddressMapping, DramConfig, Rule};

const TRCD_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fuzz_repro_trcd.json");
const TFAW_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fuzz_repro_tfaw.json");

/// Rebuilds the minimized reproducer for `(pattern, seed, len, bug)`
/// exactly as `enmc fuzz-dram --inject-bug` would.
fn regenerate(pattern: PatternKind, seed: u64, len: usize, bug: InjectedBug) -> Reproducer {
    let (reqs, out) = fuzz::run_seed(pattern, seed, len, Some(bug));
    assert!(
        !out.is_clean(),
        "{} seed {seed} no longer triggers {}: the fixture premise is gone",
        pattern.name(),
        bug.name()
    );
    let reference = DramConfig::enmc_single_rank();
    let mut cfg = reference;
    cfg.timing = bug.apply(cfg.timing);
    let minimal = fuzz::shrink(&reqs, |r| {
        !fuzz::run_case(r, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing).is_clean()
    });
    Reproducer {
        pattern: pattern.name().to_string(),
        seed,
        bug: Some(bug.name().to_string()),
        // Fixtures predate the preset layer; the baseline omits the field
        // so the checked-in JSON stays byte-identical.
        memory: None,
        requests: minimal,
    }
}

fn check_fixture(
    path: &str,
    pattern: PatternKind,
    seed: u64,
    len: usize,
    bug: InjectedBug,
    rule: Rule,
) {
    let current = regenerate(pattern, seed, len, bug);
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(path, current.to_json()).expect("write fuzz reproducer fixture");
        return;
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing fixture {path} ({e}); bless with ENMC_BLESS=1"));
    let fixture = Reproducer::from_json(&text).expect("fixture parses");
    assert_eq!(
        fixture, current,
        "fuzzer/shrinker output drifted from {path}; if intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test fuzz_repro"
    );
    // The fixture must still reproduce: replay is not clean and the
    // planted bug's own rule is among the violations.
    let out = fixture.replay();
    assert!(!out.is_clean(), "fixture {path} replays clean — regression coverage lost");
    assert!(
        out.violations.iter().any(|v| v.rule == rule),
        "fixture {path} no longer raises {rule:?}: {:?}",
        out.violations
    );
    // And it stays a *minimal* reproducer: dropping any one request makes
    // the failure disappear (1-minimality, the shrinker's contract).
    let reference = DramConfig::enmc_single_rank();
    let mut cfg = reference;
    cfg.timing = bug.apply(cfg.timing);
    if fixture.requests.len() > 1 {
        for skip in 0..fixture.requests.len() {
            let mut sub = fixture.requests.clone();
            sub.remove(skip);
            let sub_out =
                fuzz::run_case(&sub, &cfg, AddressMapping::RoRaBaCoBg, &reference.timing);
            assert!(
                sub_out.is_clean(),
                "fixture {path} is not 1-minimal: request {skip} is removable"
            );
        }
    }
}

#[test]
fn trcd_reproducer_is_stable_and_minimal() {
    // A tRCD-1 controller bug: a single cold read already issues one
    // cycle early, so the shrunk case is one request.
    check_fixture(
        TRCD_PATH,
        PatternKind::RowThrash,
        11,
        64,
        InjectedBug::TrcdMinusOne,
        Rule::Trcd,
    )
}

#[test]
fn tfaw_reproducer_is_stable_and_minimal() {
    // A tFAW-1 bug needs five activations racing one four-ACT window, so
    // the shrunk case keeps a handful of bank-spread requests.
    check_fixture(
        TFAW_PATH,
        PatternKind::BankGroupConflict,
        1,
        96,
        InjectedBug::TfawMinusOne,
        Rule::Tfaw,
    )
}
