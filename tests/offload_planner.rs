//! Differential tests over the per-query offload planner, driven through
//! the public `enmc::tune` API exactly as `enmc offload-plan` and
//! `serve-sim --offload` use it: every `(tier, batch)` decision must pick
//! the cheaper executor, the installed plan must mirror the decisions,
//! and the whole plan must be a pure function of the scenario — same
//! bytes at any worker count and under either cost backend's audits.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::par::SimConfig;
use enmc::serve::tier::default_tiers;
use enmc::surrogate::{CostBackend, CostModel};
use enmc::tune::plan_ladder;

const SEED: u64 = 7;
const BATCH_MAX: usize = 4;

fn job() -> ClassificationJob {
    ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
}

#[test]
fn every_planned_point_picks_the_cheaper_executor() {
    let sys = SystemModel::table3();
    let job = job();
    let tiers = default_tiers(&job);
    let mut cost = CostModel::new(CostBackend::CycleAccurate, SEED);
    let (table, decisions, plan) =
        plan_ladder(&sys, &job, &tiers, BATCH_MAX, &SimConfig::sequential(), &mut cost)
            .expect("cycle-accurate calibration never violates an audit bound");

    assert_eq!(decisions.len(), tiers.len() * BATCH_MAX, "one decision per admission point");
    for d in &decisions {
        // The differential: the planner's pick is exactly the cheaper of
        // the two independently-derived service times, NMP winning ties.
        assert_eq!(
            d.cycles(),
            d.cpu_cycles.min(d.nmp_cycles),
            "tier {} batch {} must pick the cheaper executor",
            d.tier,
            d.batch
        );
        assert_eq!(d.nmp, d.nmp_cycles <= d.cpu_cycles, "NMP wins ties");
        assert_eq!(d.nmp_cycles, table.cycles[d.tier][d.batch - 1]);
        // The installed plan mirrors the decision it was folded from.
        assert_eq!(plan.cycles[d.tier][d.batch - 1], d.cycles().max(1));
        assert_eq!(plan.nmp[d.tier][d.batch - 1], d.nmp);
        // Installing a plan can only speed an admission point up.
        assert!(plan.cycles[d.tier][d.batch - 1] <= table.cycles[d.tier][d.batch - 1]);
    }
}

#[test]
fn plan_is_invariant_across_worker_counts_and_audit_lotteries() {
    let sys = SystemModel::table3();
    let job = job();
    let tiers = default_tiers(&job);

    let mut seq = CostModel::new(CostBackend::CycleAccurate, SEED);
    let (t1, d1, p1) =
        plan_ladder(&sys, &job, &tiers, BATCH_MAX, &SimConfig::sequential(), &mut seq).unwrap();
    let mut par = CostModel::new(CostBackend::CycleAccurate, SEED);
    let (t2, d2, p2) =
        plan_ladder(&sys, &job, &tiers, BATCH_MAX, &SimConfig::with_threads(4), &mut par).unwrap();
    assert_eq!(t1, t2, "calibration must not depend on the worker count");
    assert_eq!(d1, d2);
    assert_eq!(p1, p2);

    // The surrogate backend audits a seeded subset of its calibration
    // points against the cycle-accurate model; whichever points the
    // lottery picks, the calibrated table is the same deterministic
    // function, so the plan's executor choices cannot wobble with the
    // audit rate.
    for rate in [0.0, 1.0] {
        let mut sur = CostModel::new(CostBackend::Surrogate { audit_rate: rate }, SEED);
        let (_, ds, ps) =
            plan_ladder(&sys, &job, &tiers, BATCH_MAX, &SimConfig::sequential(), &mut sur)
                .expect("surrogate audits stay within the declared bound");
        let mut again = CostModel::new(CostBackend::Surrogate { audit_rate: rate }, SEED);
        let (_, ds2, ps2) =
            plan_ladder(&sys, &job, &tiers, BATCH_MAX, &SimConfig::with_threads(4), &mut again)
                .unwrap();
        assert_eq!(ds, ds2, "audit rate {rate}: decisions must be thread-invariant");
        assert_eq!(ps, ps2, "audit rate {rate}: plans must be thread-invariant");
        for d in &ds {
            assert_eq!(d.cycles(), d.cpu_cycles.min(d.nmp_cycles));
        }
    }
}
