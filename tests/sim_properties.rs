//! Consistency properties of the timing simulators: monotonicity and
//! conservation laws that any sane performance model must satisfy.

use enmc::arch::config::EnmcConfig;
use enmc::arch::unit::{RankJob, RankUnit, UnitParams};
use enmc::dram::fuzz::{self, PatternKind};
use enmc::dram::golden::audit_channel;
use enmc::dram::{AddressMapping, DramConfig, DramSystem, MemRequest};
use proptest::prelude::*;

fn job(l: usize, batch: usize, m: usize) -> RankJob {
    RankJob {
        categories: l,
        hidden: 256,
        reduced: 64,
        batch,
        candidates_per_item: vec![m; batch],
    }
}

fn enmc() -> RankUnit {
    RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// More categories never make the job faster.
    #[test]
    fn cycles_monotone_in_categories(l in 256usize..2048, extra in 1usize..1024) {
        let a = enmc().simulate(&job(l, 1, 8));
        let b = enmc().simulate(&job(l + extra, 1, 8));
        prop_assert!(b.dram_cycles >= a.dram_cycles, "{l}+{extra}: {} < {}", b.dram_cycles, a.dram_cycles);
    }

    /// More candidates never make the job faster.
    #[test]
    fn cycles_monotone_in_candidates(m in 0usize..64, extra in 1usize..64) {
        let a = enmc().simulate(&job(1024, 1, m));
        let b = enmc().simulate(&job(1024, 1, m + extra));
        prop_assert!(b.dram_cycles >= a.dram_cycles);
        prop_assert!(b.exact_bytes > a.exact_bytes);
    }

    /// Larger batches never make the job faster, and never more than
    /// linearly slower.
    #[test]
    fn cycles_sane_in_batch(batch in 1usize..4) {
        let a = enmc().simulate(&job(1024, batch, 8));
        let b = enmc().simulate(&job(1024, batch + 1, 8));
        prop_assert!(b.dram_cycles >= a.dram_cycles);
        let ratio = b.dram_cycles as f64 / a.dram_cycles as f64;
        prop_assert!(ratio <= (batch + 1) as f64 / batch as f64 + 0.25, "ratio {ratio}");
    }

    /// DRAM stats conservation: every enqueued read completes exactly once
    /// and bytes match 64 × reads.
    #[test]
    fn dram_conserves_requests(n in 1u64..512) {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < n {
            while sent < n && sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                sent += 1;
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            prop_assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let stats = sys.stats();
        prop_assert_eq!(stats.reads, n);
        prop_assert_eq!(stats.bytes(), n * 64);
        prop_assert!(sys.is_idle());
    }

    /// Latency sanity: no read completes faster than the pure pipeline
    /// latency, and the first read pays exactly the cold-start cost.
    #[test]
    fn dram_latency_bounds(addr in 0u64..(1u64 << 30)) {
        let cfg = DramConfig::enmc_single_rank();
        let t = cfg.timing;
        let mut sys = DramSystem::new(cfg);
        sys.enqueue(MemRequest::read(addr & !63)).expect("queue empty");
        let done = sys.run_until_idle(100_000);
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(done[0].latency(), t.trcd + t.cl + t.tbl);
    }

    /// The real controller never violates DDR4 timing and never diverges
    /// from the golden reference model, whatever the seeded adversarial
    /// traffic shape (this is the fuzzer's full harness: checker, command
    /// replay audit, completion-set equality, serial bound).
    #[test]
    fn controller_conforms_under_seeded_traffic(seed in 0u64..4096, pidx in 0usize..6) {
        let p = PatternKind::ALL[pidx];
        let (_, out) = fuzz::run_seed(p, seed, 40, None);
        prop_assert!(
            out.is_clean(),
            "{} seed {seed}: violations {:?}, divergences {:?}",
            p.name(), out.violations, out.divergences
        );
    }

    /// Golden command-stream replay agrees with the controller's own
    /// accounting: per-command issue legality plus exact ACT/PRE/RD/WR/REF
    /// and busy-cycle counter equality.
    #[test]
    fn golden_replay_matches_controller_counters(seed in 0u64..4096) {
        let cfg = DramConfig::enmc_single_rank();
        let mut sys = DramSystem::with_mapping(cfg, AddressMapping::RoRaBaCoBg);
        sys.enable_protocol_check();
        sys.enable_command_log();
        let mut lcg = seed.wrapping_mul(2) + 1;
        for _ in 0..48 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = ((lcg >> 16) % cfg.organization.channel_bytes()) & !63;
            let req = if lcg & 1 == 0 { MemRequest::read(addr) } else { MemRequest::write(addr) };
            while sys.enqueue(req).is_none() {
                sys.tick();
            }
        }
        sys.run_until_idle(10_000_000);
        prop_assert_eq!(sys.protocol_violation_count(), 0);
        let logs = sys.take_command_log();
        let stats = sys.channel_stats();
        for (ch, (log, st)) in logs.iter().zip(stats.iter()).enumerate() {
            let divergences = audit_channel(log, st, &cfg);
            prop_assert!(divergences.is_empty(), "channel {ch}: {divergences:?}");
        }
    }

    /// The parallel drain is bit-identical to the sequential one: same
    /// final stats and the same protocol-violation stream (here: empty),
    /// with the checker running in both.
    #[test]
    fn parallel_drain_matches_sequential_checker_stream(seed in 0u64..4096) {
        let cfg = DramConfig::enmc_table3();
        let space = cfg.organization.channels as u64 * cfg.organization.channel_bytes();
        let mut addrs = Vec::new();
        let mut lcg = seed.wrapping_mul(2) + 1;
        for _ in 0..48 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            addrs.push(((lcg >> 16) % space) & !63);
        }
        let run = |workers: Option<usize>| {
            let mut sys = DramSystem::new(cfg);
            sys.enable_protocol_check();
            for (i, &addr) in addrs.iter().enumerate() {
                let req = if i % 3 == 0 { MemRequest::write(addr) } else { MemRequest::read(addr) };
                while sys.enqueue(req).is_none() {
                    sys.tick();
                }
            }
            let done = match workers {
                Some(w) => sys.run_until_idle_par(10_000_000, w),
                None => sys.run_until_idle(10_000_000),
            };
            (done, sys.cycle(), sys.stats(), sys.take_protocol_violations())
        };
        let (seq_done, seq_cycle, seq_stats, seq_viol) = run(None);
        let (par_done, par_cycle, par_stats, par_viol) = run(Some(4));
        prop_assert_eq!(seq_done, par_done);
        prop_assert_eq!(seq_cycle, par_cycle);
        prop_assert_eq!(seq_stats, par_stats);
        prop_assert_eq!(&seq_viol, &par_viol);
        prop_assert!(seq_viol.is_empty(), "{seq_viol:?}");
    }
}

#[test]
fn screener_busy_bounded_by_total() {
    let r = enmc().simulate(&job(2048, 2, 16));
    assert!(r.screener_busy <= r.dram_cycles);
    assert!(r.executor_busy <= r.dram_cycles);
}

#[test]
fn traffic_accounting_adds_up() {
    let r = enmc().simulate(&job(1024, 1, 16));
    // Every byte the unit requested is visible in the DRAM stats.
    let requested = r.screen_bytes + r.exact_bytes + r.spill_bytes;
    assert_eq!(r.dram.bytes(), requested, "{:?}", r);
}
