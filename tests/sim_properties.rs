//! Consistency properties of the timing simulators: monotonicity and
//! conservation laws that any sane performance model must satisfy.

use enmc::arch::config::EnmcConfig;
use enmc::arch::unit::{RankJob, RankUnit, UnitParams};
use enmc::dram::{DramConfig, DramSystem, MemRequest};
use proptest::prelude::*;

fn job(l: usize, batch: usize, m: usize) -> RankJob {
    RankJob {
        categories: l,
        hidden: 256,
        reduced: 64,
        batch,
        candidates_per_item: vec![m; batch],
    }
}

fn enmc() -> RankUnit {
    RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// More categories never make the job faster.
    #[test]
    fn cycles_monotone_in_categories(l in 256usize..2048, extra in 1usize..1024) {
        let a = enmc().simulate(&job(l, 1, 8));
        let b = enmc().simulate(&job(l + extra, 1, 8));
        prop_assert!(b.dram_cycles >= a.dram_cycles, "{l}+{extra}: {} < {}", b.dram_cycles, a.dram_cycles);
    }

    /// More candidates never make the job faster.
    #[test]
    fn cycles_monotone_in_candidates(m in 0usize..64, extra in 1usize..64) {
        let a = enmc().simulate(&job(1024, 1, m));
        let b = enmc().simulate(&job(1024, 1, m + extra));
        prop_assert!(b.dram_cycles >= a.dram_cycles);
        prop_assert!(b.exact_bytes > a.exact_bytes);
    }

    /// Larger batches never make the job faster, and never more than
    /// linearly slower.
    #[test]
    fn cycles_sane_in_batch(batch in 1usize..4) {
        let a = enmc().simulate(&job(1024, batch, 8));
        let b = enmc().simulate(&job(1024, batch + 1, 8));
        prop_assert!(b.dram_cycles >= a.dram_cycles);
        let ratio = b.dram_cycles as f64 / a.dram_cycles as f64;
        prop_assert!(ratio <= (batch + 1) as f64 / batch as f64 + 0.25, "ratio {ratio}");
    }

    /// DRAM stats conservation: every enqueued read completes exactly once
    /// and bytes match 64 × reads.
    #[test]
    fn dram_conserves_requests(n in 1u64..512) {
        let mut sys = DramSystem::new(DramConfig::enmc_single_rank());
        let mut sent = 0u64;
        let mut done = 0u64;
        while done < n {
            while sent < n && sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                sent += 1;
            }
            sys.tick();
            done += sys.drain_completions().len() as u64;
            prop_assert!(sys.cycle() < 10_000_000, "stalled");
        }
        let stats = sys.stats();
        prop_assert_eq!(stats.reads, n);
        prop_assert_eq!(stats.bytes(), n * 64);
        prop_assert!(sys.is_idle());
    }

    /// Latency sanity: no read completes faster than the pure pipeline
    /// latency, and the first read pays exactly the cold-start cost.
    #[test]
    fn dram_latency_bounds(addr in 0u64..(1u64 << 30)) {
        let cfg = DramConfig::enmc_single_rank();
        let t = cfg.timing;
        let mut sys = DramSystem::new(cfg);
        sys.enqueue(MemRequest::read(addr & !63)).expect("queue empty");
        let done = sys.run_until_idle(100_000);
        prop_assert_eq!(done.len(), 1);
        prop_assert_eq!(done[0].latency(), t.trcd + t.cl + t.tbl);
    }
}

#[test]
fn screener_busy_bounded_by_total() {
    let r = enmc().simulate(&job(2048, 2, 16));
    assert!(r.screener_busy <= r.dram_cycles);
    assert!(r.executor_busy <= r.dram_cycles);
}

#[test]
fn traffic_accounting_adds_up() {
    let r = enmc().simulate(&job(1024, 1, 16));
    // Every byte the unit requested is visible in the DRAM stats.
    let requested = r.screen_bytes + r.exact_bytes + r.spill_bytes;
    assert_eq!(r.dram.bytes(), requested, "{:?}", r);
}
