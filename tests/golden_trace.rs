//! Golden-trace regression: the Chrome `trace_event` export of one fixed
//! rank job is checked in at `tests/golden/rank_trace.chrome.json`. The
//! exporter's byte output, the span-nesting invariants and the per-phase
//! cycle totals must all stay stable; an intentional change to any of
//! them is re-blessed with `ENMC_BLESS=1 cargo test --test golden_trace`.

use enmc::arch::config::EnmcConfig;
use enmc::arch::unit::{RankJob, RankUnit, UnitParams, UnitReport};
use enmc::dram::DramConfig;
use enmc::obs::trace::{export_chrome, validate_chrome, TID_PHASES};
use enmc::obs::{TraceBuffer, Value};

const GOLDEN: &str = include_str!("golden/rank_trace.chrome.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/rank_trace.chrome.json");

/// The fixed job the fixture was produced from. The uneven candidate
/// counts keep the gather phase's per-item spans distinguishable.
fn golden_job() -> RankJob {
    RankJob {
        categories: 512,
        hidden: 256,
        reduced: 64,
        batch: 2,
        candidates_per_item: vec![24, 17],
    }
}

/// Re-simulates the golden job and exports its trace exactly as the CLI
/// would (unbounded buffer, DDR4-2400 cycle-to-ns conversion).
fn current_trace() -> (UnitReport, String) {
    let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
    let mut trace = TraceBuffer::unbounded();
    let report = unit.simulate_traced(&golden_job(), Some(&mut trace));
    let ns_per_cycle = DramConfig::enmc_single_rank().timing.cycles_to_ns(1);
    let chrome = export_chrome(&trace.drain(), ns_per_cycle);
    (report, chrome)
}

#[test]
fn golden_trace_is_reproduced_exactly() {
    let (_, chrome) = current_trace();
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &chrome).expect("write golden fixture");
        return;
    }
    assert!(
        chrome == GOLDEN,
        "trace export drifted from tests/golden/rank_trace.chrome.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test golden_trace",
        chrome.len(),
        GOLDEN.len(),
    );
}

#[test]
fn golden_trace_passes_the_span_nesting_validator() {
    let summary = validate_chrome(GOLDEN).expect("golden trace must validate");
    assert!(summary.begins > 0, "no spans in fixture");
    assert_eq!(summary.begins, summary.ends, "unbalanced spans");
    assert!(summary.instants > 0, "no DRAM command markers");
    assert!(summary.has_category("dram"), "missing dram category");
    assert!(summary.has_category("pipeline"), "missing pipeline category");
}

#[test]
fn golden_phase_spans_carry_the_exact_cycle_totals() {
    // The screen/gather/activation summary spans in the fixture must
    // reproduce the simulator's phase boundaries cycle-for-cycle: the
    // trace is the observability layer's claim about where time went, and
    // it has to agree with the UnitReport the RunReport phases are built
    // from.
    let (report, _) = current_trace();
    let ns_per_cycle = DramConfig::enmc_single_rank().timing.cycles_to_ns(1);
    let to_cycles = |us: f64| (us * 1000.0 / ns_per_cycle).round() as u64;

    let doc = Value::parse(GOLDEN).expect("fixture parses");
    let events = doc.get("traceEvents").and_then(Value::as_arr).expect("traceEvents");
    let mut spans: Vec<(String, u64, u64)> = Vec::new(); // (name, begin, end)
    let mut open: Vec<(String, u64)> = Vec::new();
    for e in events {
        if e.get("tid").and_then(Value::as_u64) != Some(TID_PHASES as u64) {
            continue;
        }
        let name = e.get("name").and_then(Value::as_str).expect("name").to_string();
        let ts = to_cycles(e.get("ts").and_then(Value::as_f64).expect("ts"));
        match e.get("ph").and_then(Value::as_str) {
            Some("B") => open.push((name, ts)),
            Some("E") => {
                let (b_name, b_ts) = open.pop().expect("balanced");
                assert_eq!(b_name, name, "phase spans must nest trivially");
                spans.push((name, b_ts, ts));
            }
            other => panic!("unexpected ph {other:?} on the phase track"),
        }
    }
    assert!(open.is_empty(), "phase span left open");

    let expected = [
        ("screen", 0, report.screen_done_cycle),
        ("gather", report.screen_done_cycle, report.exec_done_cycle),
        ("activation", report.exec_done_cycle, report.dram_cycles),
    ];
    assert_eq!(spans.len(), expected.len(), "fixture phase spans: {spans:?}");
    for ((name, begin, end), (e_name, e_begin, e_end)) in spans.iter().zip(expected) {
        assert_eq!(name, e_name);
        assert_eq!((*begin, *end), (e_begin, e_end), "{name} span boundaries");
    }
    let total: u64 = spans.iter().map(|(_, b, e)| e - b).sum();
    assert_eq!(total, report.dram_cycles, "phase cycles must tile the run");
}
