//! Distributed-systems invariants of the fleet simulator: consistent-hash
//! ring balance and minimal disruption, query conservation per tenant and
//! fleet-wide, and placement-policy invariance of the routed work — over
//! randomized cluster shapes and traffic.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::fleet::{simulate_fleet, FleetConfig, HashRing, PlacementPolicy, TenantConfig};
use enmc::obs::MetricsRegistry;
use enmc::par::SimConfig;
use enmc::serve::arrival::SplitMix64;
use enmc::serve::tier::{default_tiers, DegradeTier};
use enmc::serve::ArrivalProcess;
use enmc::surrogate::{CostBackend, CostModel};
use proptest::prelude::*;

/// Small enough that each case's calibration pass stays in the
/// milliseconds (the same job `tests/serve_properties.rs` uses).
fn small_job() -> ClassificationJob {
    ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
}

fn run(job: &ClassificationJob, cfg: &FleetConfig) -> enmc::fleet::FleetOutcome {
    let mut registry = MetricsRegistry::new();
    let mut cost = CostModel::new(CostBackend::CycleAccurate, cfg.seed);
    simulate_fleet(&SystemModel::table3(), job, cfg, &SimConfig::sequential(), &mut registry, &mut cost)
        .expect("cycle-accurate backend cannot violate an audit")
}

/// A randomized but always-valid two-tenant fleet scenario.
fn scenario() -> impl Strategy<Value = FleetConfig> {
    (
        (1usize..5, 1usize..7, 0usize..5, any::<bool>(), 0u8..4),
        (0.01f64..2.0, 4usize..32, 1usize..5, 100u64..3_000, 1usize..3),
        (2_000u64..200_000, any::<u64>()),
    )
        .prop_map(
            |(
                (nodes, shards, replicas, popularity, zipf_half_steps),
                (rate, requests, batch_max, linger_cycles, lanes),
                (slo_cycles, seed),
            )| {
                let tiers = default_tiers(&small_job());
                let mk = |i: u64, shed_depth: usize| {
                    let mut t = TenantConfig::new(
                        &format!("t{i}"),
                        ArrivalProcess::Poisson { rate },
                        requests,
                        slo_cycles * (i + 1),
                        tiers.clone(),
                        seed.wrapping_add(i),
                    );
                    t.shed_queue_depth = shed_depth;
                    t
                };
                FleetConfig {
                    nodes,
                    shards,
                    replicas,
                    placement: if popularity {
                        PlacementPolicy::PopularityAware
                    } else {
                        PlacementPolicy::ConsistentHash
                    },
                    zipf_s: zipf_half_steps as f64 * 0.5,
                    batch_max,
                    linger_cycles,
                    lanes,
                    tenants: vec![mk(0, 48), mk(1, 8)],
                    seed,
                    ..Default::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The 64-vnode ring spreads keys evenly: no node owns more than
    /// 2.5x its fair share of a large uniform key population (the
    /// statistical bound for 64 vnodes is ~1.4x; 2.5x leaves slack so
    /// the test never flakes on an unlucky hash draw).
    #[test]
    fn ring_balance_is_bounded(nodes in 2usize..9, seed in any::<u64>()) {
        let ring = HashRing::new(nodes);
        let keys = 4096usize;
        let mut owned = vec![0u64; nodes];
        let mut rng = SplitMix64::new(seed);
        for _ in 0..keys {
            owned[ring.owner(rng.next_u64())] += 1;
        }
        let fair = keys as f64 / nodes as f64;
        for (n, &o) in owned.iter().enumerate() {
            prop_assert!(
                (o as f64) <= fair * 2.5,
                "node {n} owns {o} of {keys} keys (fair share {fair:.0})"
            );
        }
    }

    /// Adding a node moves keys *only onto the new node* (no key
    /// shuffles between surviving nodes), and the moved fraction is
    /// near the ideal 1/(n+1).
    #[test]
    fn ring_growth_causes_minimal_disruption(nodes in 2usize..9, seed in any::<u64>()) {
        let before = HashRing::new(nodes);
        let after = HashRing::new(nodes + 1);
        let keys = 4096usize;
        let mut moved = 0u64;
        let mut rng = SplitMix64::new(seed);
        for _ in 0..keys {
            let k = rng.next_u64();
            let (a, b) = (before.owner(k), after.owner(k));
            if a != b {
                prop_assert_eq!(b, nodes, "keys may only move to the new node {}, not {}", nodes, b);
                moved += 1;
            }
        }
        let ideal = keys as f64 / (nodes + 1) as f64;
        prop_assert!(
            (moved as f64) <= ideal * 2.5,
            "moved {moved} of {keys} keys; ideal {ideal:.0}"
        );
    }

    /// Every generated query is accounted for exactly once, per tenant
    /// and fleet-wide: shed at admission or completed (the fleet drains
    /// its queues), and the router's per-shard tallies cover exactly the
    /// admitted queries.
    #[test]
    fn queries_are_conserved(cfg in scenario()) {
        let job = small_job();
        let out = run(&job, &cfg);
        for t in &out.tenants {
            prop_assert_eq!(t.generated, t.admitted + t.shed, "{}", &t.name);
            prop_assert_eq!(t.admitted, t.completed, "{} queue must drain", &t.name);
            prop_assert_eq!(t.latency.count(), t.completed, "{} histogram", &t.name);
            prop_assert_eq!(
                t.per_tier_completed.iter().sum::<u64>(),
                t.completed,
                "{} per-tier sum",
                &t.name
            );
        }
        let admitted: u64 = out.tenants.iter().map(|t| t.admitted).sum();
        let routed: u64 = out.shard_queries.iter().sum();
        prop_assert_eq!(routed, admitted, "router tally");
        let in_batches: u64 = out.batches.iter().map(|b| b.size as u64).sum();
        prop_assert_eq!(in_batches, admitted, "batch membership");
    }

    /// With no replication, no shedding, and a flat ladder, the *routed
    /// work* is placement-invariant: both policies see identical
    /// per-shard query counts (the shard draw stream does not depend on
    /// where shards live) and complete every query.
    #[test]
    fn routed_work_is_placement_invariant_without_replication(
        nodes in 1usize..5,
        shards in 1usize..7,
        zipf_half_steps in 0u8..4,
        seed in any::<u64>(),
    ) {
        let job = small_job();
        let tiers = vec![DegradeTier { candidates: 128, screen_shift: 0 }];
        let mut t0 = TenantConfig::new(
            "t0",
            ArrivalProcess::Poisson { rate: 0.2 },
            24,
            10_000_000,
            tiers,
            seed,
        );
        // A bottomless queue: nothing sheds, so admissions equal draws.
        t0.shed_queue_depth = usize::MAX;
        let base = FleetConfig {
            nodes,
            shards,
            replicas: 0,
            zipf_s: zipf_half_steps as f64 * 0.5,
            tenants: vec![t0],
            seed,
            ..Default::default()
        };
        let ch = run(&job, &FleetConfig {
            placement: PlacementPolicy::ConsistentHash,
            ..base.clone()
        });
        let pa = run(&job, &FleetConfig {
            placement: PlacementPolicy::PopularityAware,
            ..base
        });
        prop_assert_eq!(&ch.shard_queries, &pa.shard_queries, "per-shard routed counts");
        for out in [&ch, &pa] {
            prop_assert_eq!(out.tenants[0].shed, 0);
            prop_assert_eq!(out.tenants[0].completed, out.tenants[0].generated);
            prop_assert_eq!(out.hot_shard_replicas, 0, "replica budget must stay unspent");
        }
    }
}
