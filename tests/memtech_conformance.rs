//! Per-technology conformance suite: every timing rule probed with a
//! boundary pair on *each* memory preset (DDR4-2666, DDR5-4800,
//! LPDDR4-3200, HBM2), mirroring `ddr4_conformance.rs` but with every
//! constraint derived from the preset rather than from Table 3.
//!
//! Each probe asserts its structural premise first (e.g. tFAW binds
//! before the tRRD chain would), so a preset whose numbers break a
//! premise fails with a named message instead of a silent alias between
//! two rules. The suite ends with the "would we notice?" checks run per
//! preset: a clean 8-seed fuzz sweep on the nominal timing and a planted
//! off-by-one that every preset's checker must catch.

use enmc::dram::fuzz::{self, InjectedBug, PatternKind};
use enmc::dram::{CommandKind, Coord, DramConfig, Rule, Timing, TimingChecker};
use enmc::mem::MemTech;

fn config(tech: MemTech) -> DramConfig {
    tech.preset().single_rank_config()
}

fn fresh(tech: MemTech) -> TimingChecker {
    let cfg = config(tech);
    TimingChecker::new(cfg.timing, cfg.organization, 0)
}

fn at(bg: usize, bank: usize, row: usize) -> Coord {
    Coord { channel: 0, rank: 0, bank_group: bg, bank, row, column: 0 }
}

/// Runs `prologue` on a fresh checker for `tech` (asserting it is
/// violation-free), then observes `cmd` at `now` and returns the
/// violations it raised.
fn probe(
    tech: MemTech,
    prologue: &[(u64, CommandKind, Coord)],
    now: u64,
    cmd: CommandKind,
    coord: Coord,
) -> Vec<enmc::dram::ProtocolViolation> {
    let mut ck = fresh(tech);
    for (cycle, kind, c) in prologue {
        let vs = ck.observe(*cycle, *kind, c);
        assert!(vs.is_empty(), "{}: prologue not conforming: {vs:?}", tech.name());
    }
    ck.observe(now, cmd, &coord)
}

/// Asserts the boundary pair on one preset: clean exactly at `legal`, a
/// single `rule` violation (with `earliest_legal == legal`) one cycle
/// earlier.
fn assert_boundary(
    tech: MemTech,
    prologue: &[(u64, CommandKind, Coord)],
    legal: u64,
    cmd: CommandKind,
    coord: Coord,
    rule: Rule,
) {
    let ok = probe(tech, prologue, legal, cmd, coord);
    assert!(ok.is_empty(), "{} {rule:?}: cycle {legal} must be accepted, got {ok:?}", tech.name());
    let bad = probe(tech, prologue, legal - 1, cmd, coord);
    assert_eq!(
        bad.len(),
        1,
        "{} {rule:?}: cycle {} must raise exactly one violation, got {bad:?}",
        tech.name(),
        legal - 1
    );
    assert_eq!(bad[0].rule, rule, "{}", tech.name());
    assert_eq!(
        bad[0].earliest_legal,
        legal,
        "{} {rule:?} reports the wrong earliest cycle",
        tech.name()
    );
}

fn timing(tech: MemTech) -> Timing {
    config(tech).timing
}

#[test]
fn trcd_act_to_column_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        assert_boundary(tech, &[(0, CommandKind::Act, c)], t.trcd, CommandKind::Rd, c, Rule::Trcd);
        assert_boundary(tech, &[(0, CommandKind::Act, c)], t.trcd, CommandKind::Wr, c, Rule::Trcd);
    }
}

#[test]
fn trp_precharge_to_act_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        // Precharge late enough that tRAS/tRTP are long since satisfied,
        // so the probe one cycle before pre + tRP trips tRP alone.
        let pre = t.tras.max(t.trcd + t.trtp).max(t.trc);
        let prologue =
            [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c), (pre, CommandKind::Pre, c)];
        assert_boundary(tech, &prologue, pre + t.trp, CommandKind::Act, at(0, 0, 6), Rule::Trp);
    }
}

#[test]
fn trc_act_to_act_same_bank_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        // RDA's auto-precharge starts at tRCD + tRTP; its tRP must be
        // recovered before tRC so only tRC sits at the boundary.
        let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rda, c)];
        assert!(
            t.trcd + t.trtp + t.trp < t.trc,
            "{} premise: tRP must recover before tRC",
            tech.name()
        );
        assert_boundary(tech, &prologue, t.trc, CommandKind::Act, at(0, 0, 6), Rule::Trc);
    }
}

#[test]
fn tras_act_to_precharge_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        assert_boundary(tech, &[(0, CommandKind::Act, c)], t.tras, CommandKind::Pre, c, Rule::Tras);
    }
}

#[test]
fn tccd_l_same_bank_group_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c)];
        assert_boundary(tech, &prologue, t.trcd + t.tccd_l, CommandKind::Rd, c, Rule::TccdL);
    }
}

#[test]
fn tccd_s_across_bank_groups_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        // Bank group 1 exists on every preset (LPDDR4 models two groups).
        let (a, b) = (at(0, 0, 5), at(1, 0, 5));
        let first_col = t.trrd_s + t.trcd + 10;
        let prologue = [
            (0, CommandKind::Act, a),
            (t.trrd_s, CommandKind::Act, b),
            (first_col, CommandKind::Rd, a),
        ];
        assert_boundary(tech, &prologue, first_col + t.tccd_s, CommandKind::Rd, b, Rule::TccdS);
    }
}

#[test]
fn trrd_l_same_bank_group_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let prologue = [(0, CommandKind::Act, at(0, 0, 5))];
        assert_boundary(tech, &prologue, t.trrd_l, CommandKind::Act, at(0, 1, 5), Rule::TrrdL);
    }
}

#[test]
fn trrd_s_across_bank_groups_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let prologue = [(0, CommandKind::Act, at(0, 0, 5))];
        assert_boundary(tech, &prologue, t.trrd_s, CommandKind::Act, at(1, 0, 5), Rule::TrrdS);
    }
}

#[test]
fn tfaw_four_activation_window_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        // Alternate between two bank groups so the schedule also works on
        // the two-group LPDDR4 preset: consecutive ACTs are cross-group
        // (tRRD_S) and same-group pairs sit 2·s apart (tRRD_L).
        let s = t.trrd_s.max(t.trrd_l.div_ceil(2));
        let prologue = [
            (0, CommandKind::Act, at(0, 0, 5)),
            (s, CommandKind::Act, at(1, 0, 5)),
            (2 * s, CommandKind::Act, at(0, 1, 5)),
            (3 * s, CommandKind::Act, at(1, 1, 5)),
        ];
        // The fifth ACT (group 0, bank 2) probes tFAW - 1; its tRRD_L gap
        // to the ACT at 2·s and tRRD_S gap to the ACT at 3·s must both be
        // already satisfied there.
        assert!(3 * s + t.trrd_s < t.tfaw, "{} premise: tFAW binds before tRRD", tech.name());
        assert!(
            t.tfaw - 1 >= 2 * s + t.trrd_l,
            "{} premise: tRRD_L satisfied at the tFAW boundary",
            tech.name()
        );
        assert_boundary(tech, &prologue, t.tfaw, CommandKind::Act, at(0, 2, 5), Rule::Tfaw);
    }
}

#[test]
fn twtr_write_to_read_turnaround_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Wr, c)];
        let turn = t.trcd + t.cwl + t.tbl + t.twtr;
        assert!(turn > t.trcd + t.tccd_l, "{} premise: tWTR binds after tCCD_L", tech.name());
        assert_boundary(tech, &prologue, turn, CommandKind::Rd, c, Rule::Twtr);
    }
}

#[test]
fn read_to_write_bus_turnaround_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c)];
        let turn = t.trcd + t.cl + t.tbl + 2 - t.cwl;
        assert!(turn > t.trcd + t.tccd_l, "{} premise: RD->WR binds after tCCD_L", tech.name());
        assert_boundary(tech, &prologue, turn, CommandKind::Wr, c, Rule::RdToWr);
    }
}

#[test]
fn twr_write_recovery_before_precharge_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Wr, c)];
        let recovery = t.trcd + t.cwl + t.tbl + t.twr;
        assert!(recovery > t.tras, "{} premise: write recovery binds after tRAS", tech.name());
        assert_boundary(tech, &prologue, recovery, CommandKind::Pre, c, Rule::Twr);
    }
}

#[test]
fn trtp_read_to_precharge_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let c = at(0, 0, 5);
        // A late read so tRAS is satisfied and only tRTP is at its boundary.
        let rd = t.tras;
        let prologue = [(0, CommandKind::Act, c), (rd, CommandKind::Rd, c)];
        assert_boundary(tech, &prologue, rd + t.trtp, CommandKind::Pre, c, Rule::Trtp);
    }
}

#[test]
fn trfc_refresh_blocks_the_rank_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        let prologue = [(0, CommandKind::Ref, at(0, 0, 0))];
        assert_boundary(tech, &prologue, t.trfc, CommandKind::Act, at(0, 0, 5), Rule::Trfc);
    }
}

#[test]
fn trefi_postponement_deadline_every_preset() {
    for tech in MemTech::ALL {
        let t = timing(tech);
        // tREFI is a deadline, so this pair is inverted: REF exactly at
        // the 9 x tREFI postponement limit is legal, one cycle later is
        // the violation.
        let deadline = 9 * t.trefi;
        let prologue = [(0, CommandKind::Ref, at(0, 0, 0))];
        let ok = probe(tech, &prologue, deadline, CommandKind::Ref, at(0, 0, 0));
        assert!(ok.is_empty(), "{}: REF at the postponement deadline must be accepted", tech.name());
        let bad = probe(tech, &prologue, deadline + 1, CommandKind::Ref, at(0, 0, 0));
        assert_eq!(bad.len(), 1, "{}", tech.name());
        assert_eq!(bad[0].rule, Rule::TrefiWindow, "{}", tech.name());
        assert_eq!(bad[0].earliest_legal, deadline, "{}", tech.name());
    }
}

/// Nominal timing on every preset survives a short fuzz sweep over every
/// traffic pattern, including the data-dependent moving-inversion passes
/// — the per-preset analogue of the fuzzer's own clean-sweep property.
#[test]
fn every_preset_fuzzes_clean_on_nominal_timing() {
    for tech in MemTech::ALL {
        let reference = config(tech);
        for pattern in PatternKind::ALL {
            for seed in 0..8 {
                let (_, out) = fuzz::run_seed_on(&reference, pattern, seed, 64, None);
                assert!(
                    out.is_clean(),
                    "{} {} seed {seed} violated its own preset timing: {:?}",
                    tech.name(),
                    pattern.name(),
                    out.violations
                );
            }
        }
    }
}

/// The planted tFAW off-by-one must surface on every preset: the checker
/// holds the preset's reference timing while the controller runs one
/// cycle tight.
#[test]
fn injected_tfaw_bug_is_caught_on_every_preset() {
    for tech in MemTech::ALL {
        let reference = config(tech);
        let caught = (0..8).any(|seed| {
            let (_, out) = fuzz::run_seed_on(
                &reference,
                PatternKind::BankGroupConflict,
                seed,
                96,
                Some(InjectedBug::TfawMinusOne),
            );
            out.violations.iter().any(|v| v.rule == Rule::Tfaw)
        });
        assert!(caught, "{}: tFAW-1 escaped 8 fuzz seeds", tech.name());
    }
}
