//! DDR4 conformance suite: one test per Table 3 timing parameter.
//!
//! Every timing rule is probed with a boundary pair — the command exactly
//! at the constraint boundary must be accepted, one cycle earlier must be
//! rejected with the right [`Rule`] and `earliest_legal`. Command
//! sequences are arranged so that exactly one rule sits at its boundary
//! (e.g. tRTP is probed with a late read so tRAS is already satisfied).
//!
//! The suite ends with the "would we notice?" checks: a tFAW off-by-one
//! planted in the controller's timing must be caught both by the checker
//! shadowing the real controller and by the traffic fuzzer.

use enmc::dram::fuzz::{self, InjectedBug, PatternKind};
use enmc::dram::{
    AddressMapping, CommandKind, Coord, DramConfig, DramSystem, Rule, Timing, TimingChecker,
};

fn table3() -> Timing {
    DramConfig::enmc_table3().timing
}

fn fresh() -> TimingChecker {
    let cfg = DramConfig::enmc_table3();
    TimingChecker::new(cfg.timing, cfg.organization, 0)
}

fn at(bg: usize, bank: usize, row: usize) -> Coord {
    Coord { channel: 0, rank: 0, bank_group: bg, bank, row, column: 0 }
}

/// Runs `prologue` on a fresh checker (asserting it is violation-free),
/// then observes `cmd` at `now` and returns the violations it raised.
fn probe(
    prologue: &[(u64, CommandKind, Coord)],
    now: u64,
    cmd: CommandKind,
    coord: Coord,
) -> Vec<enmc::dram::ProtocolViolation> {
    let mut ck = fresh();
    for (cycle, kind, c) in prologue {
        let vs = ck.observe(*cycle, *kind, c);
        assert!(vs.is_empty(), "prologue not conforming: {vs:?}");
    }
    ck.observe(now, cmd, &coord)
}

/// Asserts the boundary pair: clean exactly at `legal`, a single `rule`
/// violation (with `earliest_legal == legal`) one cycle earlier.
fn assert_boundary(
    prologue: &[(u64, CommandKind, Coord)],
    legal: u64,
    cmd: CommandKind,
    coord: Coord,
    rule: Rule,
) {
    let ok = probe(prologue, legal, cmd, coord);
    assert!(ok.is_empty(), "{rule:?}: cycle {legal} must be accepted, got {ok:?}");
    let bad = probe(prologue, legal - 1, cmd, coord);
    assert_eq!(bad.len(), 1, "{rule:?}: cycle {} must raise exactly one violation", legal - 1);
    assert_eq!(bad[0].rule, rule);
    assert_eq!(bad[0].earliest_legal, legal, "{rule:?} reports the wrong earliest cycle");
}

#[test]
fn trcd_act_to_column() {
    let t = table3();
    let c = at(0, 0, 5);
    assert_boundary(&[(0, CommandKind::Act, c)], t.trcd, CommandKind::Rd, c, Rule::Trcd);
    assert_boundary(&[(0, CommandKind::Act, c)], t.trcd, CommandKind::Wr, c, Rule::Trcd);
}

#[test]
fn trp_precharge_to_act() {
    let t = table3();
    let c = at(0, 0, 5);
    // Precharge only after tRC has elapsed since the ACT, so the probe
    // one cycle before pre + tRP trips tRP alone (tRAS + tRP == tRC for
    // Table 3, so a minimum-tRAS precharge would alias the two rules).
    let pre = t.tras.max(t.trcd + t.trtp).max(t.trc);
    let prologue =
        [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c), (pre, CommandKind::Pre, c)];
    assert_boundary(&prologue, pre + t.trp, CommandKind::Act, at(0, 0, 6), Rule::Trp);
}

#[test]
fn trc_act_to_act_same_bank() {
    let t = table3();
    let c = at(0, 0, 5);
    // RDA's auto-precharge starts at tRCD + tRTP, well before tRAS would
    // let an explicit PRE go — so at tRC - 1 only tRC is at its boundary
    // (with PRE at tRAS, tRAS + tRP == tRC and the pair would alias).
    let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rda, c)];
    assert!(t.trcd + t.trtp + t.trp < t.trc, "test premise: tRP recovered before tRC");
    assert_boundary(&prologue, t.trc, CommandKind::Act, at(0, 0, 6), Rule::Trc);
}

#[test]
fn tras_act_to_precharge() {
    let t = table3();
    let c = at(0, 0, 5);
    assert_boundary(&[(0, CommandKind::Act, c)], t.tras, CommandKind::Pre, c, Rule::Tras);
}

#[test]
fn tccd_l_same_bank_group() {
    let t = table3();
    let c = at(0, 0, 5);
    let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c)];
    assert_boundary(&prologue, t.trcd + t.tccd_l, CommandKind::Rd, c, Rule::TccdL);
}

#[test]
fn tccd_s_across_bank_groups() {
    let t = table3();
    let (a, b) = (at(0, 0, 5), at(1, 0, 5));
    // Both banks activated early so tRCD is long since satisfied when the
    // second column command probes the tCCD_S boundary.
    let first_col = t.trrd_s + t.trcd + 10;
    let prologue = [
        (0, CommandKind::Act, a),
        (t.trrd_s, CommandKind::Act, b),
        (first_col, CommandKind::Rd, a),
    ];
    assert_boundary(&prologue, first_col + t.tccd_s, CommandKind::Rd, b, Rule::TccdS);
}

#[test]
fn trrd_l_same_bank_group() {
    let t = table3();
    let prologue = [(0, CommandKind::Act, at(0, 0, 5))];
    assert_boundary(&prologue, t.trrd_l, CommandKind::Act, at(0, 1, 5), Rule::TrrdL);
}

#[test]
fn trrd_s_across_bank_groups() {
    let t = table3();
    let prologue = [(0, CommandKind::Act, at(0, 0, 5))];
    assert_boundary(&prologue, t.trrd_s, CommandKind::Act, at(1, 0, 5), Rule::TrrdS);
}

#[test]
fn tfaw_four_activation_window() {
    let t = table3();
    // Four ACTs across bank groups at minimum tRRD_S spacing; the fifth
    // may not issue until tFAW after the first.
    let prologue = [
        (0, CommandKind::Act, at(0, 0, 5)),
        (t.trrd_s, CommandKind::Act, at(1, 0, 5)),
        (2 * t.trrd_s, CommandKind::Act, at(2, 0, 5)),
        (3 * t.trrd_s, CommandKind::Act, at(3, 0, 5)),
    ];
    assert!(4 * t.trrd_s < t.tfaw, "test premise: tFAW binds before tRRD");
    assert_boundary(&prologue, t.tfaw, CommandKind::Act, at(0, 1, 5), Rule::Tfaw);
}

#[test]
fn twtr_write_to_read_turnaround() {
    let t = table3();
    let c = at(0, 0, 5);
    let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Wr, c)];
    let turn = t.trcd + t.cwl + t.tbl + t.twtr;
    assert!(turn > t.trcd + t.tccd_l, "test premise: tWTR binds after tCCD_L");
    assert_boundary(&prologue, turn, CommandKind::Rd, c, Rule::Twtr);
}

#[test]
fn read_to_write_bus_turnaround() {
    let t = table3();
    let c = at(0, 0, 5);
    let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Rd, c)];
    let turn = t.trcd + t.cl + t.tbl + 2 - t.cwl;
    assert!(turn > t.trcd + t.tccd_l, "test premise: RD->WR binds after tCCD_L");
    assert_boundary(&prologue, turn, CommandKind::Wr, c, Rule::RdToWr);
}

#[test]
fn twr_write_recovery_before_precharge() {
    let t = table3();
    let c = at(0, 0, 5);
    let prologue = [(0, CommandKind::Act, c), (t.trcd, CommandKind::Wr, c)];
    let recovery = t.trcd + t.cwl + t.tbl + t.twr;
    assert!(recovery > t.tras, "test premise: write recovery binds after tRAS");
    assert_boundary(&prologue, recovery, CommandKind::Pre, c, Rule::Twr);
}

#[test]
fn trtp_read_to_precharge() {
    let t = table3();
    let c = at(0, 0, 5);
    // A late read so tRAS is satisfied and only tRTP is at its boundary.
    let rd = t.tras;
    let prologue = [(0, CommandKind::Act, c), (rd, CommandKind::Rd, c)];
    assert_boundary(&prologue, rd + t.trtp, CommandKind::Pre, c, Rule::Trtp);
}

#[test]
fn trfc_refresh_blocks_the_rank() {
    let t = table3();
    let prologue = [(0, CommandKind::Ref, at(0, 0, 0))];
    assert_boundary(&prologue, t.trfc, CommandKind::Act, at(0, 0, 5), Rule::Trfc);
}

#[test]
fn trefi_postponement_deadline() {
    let t = table3();
    // tREFI is a deadline, not a minimum gap, so this boundary pair is
    // inverted relative to every other test: REF exactly at the 9 x tREFI
    // postponement limit is legal, one cycle *later* is the violation,
    // and `earliest_legal` carries the latest legal cycle.
    let deadline = 9 * t.trefi;
    let prologue = [(0, CommandKind::Ref, at(0, 0, 0))];
    let ok = probe(&prologue, deadline, CommandKind::Ref, at(0, 0, 0));
    assert!(ok.is_empty(), "REF at the postponement deadline must be accepted");
    let bad = probe(&prologue, deadline + 1, CommandKind::Ref, at(0, 0, 0));
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].rule, Rule::TrefiWindow);
    assert_eq!(bad[0].earliest_legal, deadline);
}

#[test]
fn structural_rules_fire_without_thresholds() {
    let t = table3();
    let c = at(0, 0, 5);
    // ACT on an already-open bank.
    let vs = probe(&[(0, CommandKind::Act, c)], t.trc, CommandKind::Act, c);
    assert_eq!(vs[0].rule, Rule::DoubleAct);
    // Column command to a precharged bank.
    let vs = probe(&[], 0, CommandKind::Rd, c);
    assert_eq!(vs[0].rule, Rule::ClosedBank);
    // Column command to the wrong open row.
    let vs = probe(&[(0, CommandKind::Act, c)], t.trcd, CommandKind::Rd, at(0, 0, 6));
    assert_eq!(vs[0].rule, Rule::WrongRow);
    // REF with a row still open.
    let vs = probe(&[(0, CommandKind::Act, c)], t.trc, CommandKind::Ref, at(0, 0, 0));
    assert!(vs.iter().any(|v| v.rule == Rule::RefOpenBank));
    for v in vs {
        assert!(v.rule.is_structural() || v.rule == Rule::Trp || v.rule == Rule::Tras);
        if v.rule.is_structural() {
            assert_eq!(v.earliest_legal, u64::MAX);
        }
    }
}

/// A tFAW off-by-one planted in the controller's own timing must surface
/// when the checker (holding the true reference) shadows the real
/// controller under activation-heavy traffic.
#[test]
fn injected_tfaw_bug_is_caught_on_the_real_controller() {
    let reference = DramConfig::enmc_single_rank();
    let mut cfg = reference;
    cfg.timing = InjectedBug::TfawMinusOne.apply(cfg.timing);
    let reqs =
        PatternKind::BankGroupConflict.generate(1, 96, &reference, AddressMapping::RoRaBaCoBg);

    let mut sys = DramSystem::with_mapping(cfg, AddressMapping::RoRaBaCoBg);
    sys.enable_protocol_check_against(reference.timing);
    let mut next = 0usize;
    while next < reqs.len() || !sys.is_idle() {
        while next < reqs.len() && reqs[next].at <= sys.cycle() {
            let req = if reqs[next].write {
                enmc::dram::MemRequest::write(reqs[next].addr)
            } else {
                enmc::dram::MemRequest::read(reqs[next].addr)
            };
            if sys.enqueue(req).is_some() {
                next += 1;
            } else {
                break;
            }
        }
        sys.tick();
        sys.drain_completions();
        assert!(sys.cycle() < 10_000_000, "controller stalled");
    }
    let violations = sys.take_protocol_violations();
    assert!(
        violations.iter().any(|v| v.rule == Rule::Tfaw),
        "tFAW-1 escaped the checker: {violations:?}"
    );
    // Every report is precise: a one-cycle bug issues exactly one cycle
    // before the reference window closes.
    for v in violations.iter().filter(|v| v.rule == Rule::Tfaw) {
        assert_eq!(v.cycle + 1, v.earliest_legal);
    }
}

/// The same planted bug must also fall out of the black-box fuzzer.
#[test]
fn injected_tfaw_bug_is_caught_by_the_fuzzer() {
    let caught = (0..8).any(|seed| {
        let (_, out) =
            fuzz::run_seed(PatternKind::BankGroupConflict, seed, 64, Some(InjectedBug::TfawMinusOne));
        out.violations.iter().any(|v| v.rule == Rule::Tfaw)
    });
    assert!(caught, "tFAW-1 escaped 8 fuzz seeds of bank-group-conflict traffic");
}
