//! End-to-end checks of the observability layer: a traced simulation must
//! export a valid Chrome trace containing both DRAM command events and NMP
//! pipeline spans, and the structured run report must round-trip through
//! JSON with phase cycles that tile the headline latency exactly.

use enmc::arch::config::EnmcConfig;
use enmc::arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc::arch::unit::{RankJob, RankUnit, UnitParams};
use enmc::dram::DramConfig;
use enmc::obs::report::RunReport;
use enmc::obs::trace::{export_chrome, validate_chrome};
use enmc::obs::TraceBuffer;
use enmc::pipeline::report_from_result;

fn small_job() -> RankJob {
    RankJob {
        categories: 512,
        hidden: 256,
        reduced: 64,
        batch: 2,
        candidates_per_item: vec![24; 2],
    }
}

#[test]
fn traced_simulation_exports_a_valid_chrome_trace() {
    let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
    let mut trace = TraceBuffer::unbounded();
    let report = unit.simulate_traced(&small_job(), Some(&mut trace));
    assert!(report.dram_cycles > 0);

    let ns_per_cycle = DramConfig::enmc_single_rank().timing.cycles_to_ns(1);
    let events = trace.drain();
    assert!(!events.is_empty(), "traced run emitted no events");
    let chrome = export_chrome(&events, ns_per_cycle);
    let summary = validate_chrome(&chrome).expect("exported trace must validate");

    assert_eq!(summary.events, events.len());
    assert!(summary.begins > 0 && summary.begins == summary.ends, "unbalanced spans");
    assert!(summary.instants > 0, "no DRAM command events");
    assert!(summary.categories.iter().any(|c| c == "dram"), "missing dram category");
    assert!(summary.categories.iter().any(|c| c == "pipeline"), "missing pipeline category");
}

#[test]
fn system_run_report_is_consistent_and_round_trips() {
    let sys = SystemModel::table3();
    let job = ClassificationJob {
        categories: 33_278,
        hidden: 512,
        reduced: 128,
        batch: 1,
        candidates: 1_700,
    };
    let result = sys.run(&job, Scheme::Enmc);
    let report = report_from_result("simulate", "lstm", &job, &result, 1_000.0);

    assert!(report.is_consistent(), "phase cycles must tile the simulated cycles");
    assert_eq!(report.sim_cycles, report.phase_sim_cycles());
    let names: Vec<&str> = report.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["screen", "gather", "activation"]);

    let parsed = RunReport::from_json(&report.to_json()).expect("report JSON parses");
    assert_eq!(parsed, report);
    assert_eq!(parsed.headline_ns, result.ns);
}

#[test]
fn analytic_schemes_report_a_single_phase() {
    let sys = SystemModel::table3();
    let job = ClassificationJob {
        categories: 8_192,
        hidden: 256,
        reduced: 64,
        batch: 1,
        candidates: 400,
    };
    let result = sys.run(&job, Scheme::CpuFull);
    let report = report_from_result("simulate", "lstm", &job, &result, 10.0);
    assert!(report.is_consistent());
    assert_eq!(report.phases.len(), 1);
    assert_eq!(report.phases[0].name, "analytic");
    assert_eq!(report.sim_cycles, 0);
}
