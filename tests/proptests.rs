//! Property-based tests over the core data structures and invariants,
//! spanning the tensor, ISA and DRAM crates.

use enmc::arch::unit::{RankJob, RankUnit, UnitParams, UnitReport};
use enmc::arch::AreaPower;
use enmc::dram::{AddressMapping, DramConfig, DramStats};
use enmc::isa::{BufferId, Instruction, RegId};
use enmc::model::quality::QualityAccumulator;
use enmc::surrogate::fit::{doe_plan, fit_from_anchors, splitmix64, ShapeFit};
use enmc::tensor::activation::{softmax, taylor_exp};
use enmc::tensor::quant::{Precision, QuantVector};
use enmc::tensor::select::{threshold_filter, top_k_indices};
use enmc::tensor::{Matrix, Vector};
use enmc::tune::{dominates, pareto_frontier, DesignPoint, EvaluatedDesign};
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e4f32..1e4).prop_filter("finite", |x| x.is_finite())
}

fn buffer_strategy() -> impl Strategy<Value = BufferId> {
    (0u8..8).prop_map(|c| BufferId::from_code(c).expect("in range"))
}

fn reg_strategy() -> impl Strategy<Value = RegId> {
    (0u8..15).prop_map(|c| RegId::from_code(c).expect("in range"))
}

fn dram_stats_strategy() -> impl Strategy<Value = DramStats> {
    // u32-sized counters keep every sum far from u64 overflow.
    prop::collection::vec(any::<u32>(), 15..16).prop_map(|v| DramStats {
        reads: v[0] as u64,
        writes: v[1] as u64,
        activations: v[2] as u64,
        precharges: v[3] as u64,
        refreshes: v[4] as u64,
        row_hits: v[5] as u64,
        row_misses: v[6] as u64,
        row_conflicts: v[7] as u64,
        busy_cycles: v[8] as u64,
        idle_cycles: v[9] as u64,
        total_cycles: v[10] as u64,
        bank_group_accesses: [v[11] as u64, v[12] as u64, v[13] as u64, v[14] as u64],
    })
}

/// One quality query: full logits, approximate logits, ground-truth target.
/// Logits are kept in ±50 so the softmax never underflows the target's
/// probability to zero (which would push the perplexity sums to infinity
/// and make tolerance comparisons meaningless).
fn quality_query_strategy() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, usize)> {
    (
        prop::collection::vec(-50.0f32..50.0, 12..13),
        prop::collection::vec(-50.0f32..50.0, 12..13),
        0usize..12,
    )
}

fn quality_acc_strategy() -> impl Strategy<Value = QualityAccumulator> {
    prop::collection::vec(quality_query_strategy(), 1..12).prop_map(|qs| {
        let mut acc = QualityAccumulator::new(3);
        for (full, approx, target) in &qs {
            acc.add(full, approx, *target);
        }
        acc
    })
}

/// Shared surrogate fixture: one rank shape fitted from its full
/// deterministic anchor grid. Fitted once (`OnceLock`) because every
/// anchor is a cycle-accurate simulation; the properties below only
/// exercise the pure-arithmetic fit and predict paths.
fn surrogate_fixture() -> &'static (UnitParams, Vec<(RankJob, UnitReport)>, ShapeFit) {
    static FIX: std::sync::OnceLock<(UnitParams, Vec<(RankJob, UnitReport)>, ShapeFit)> =
        std::sync::OnceLock::new();
    FIX.get_or_init(|| {
        let params = enmc::arch::system::SystemModel::table3().enmc_unit_params();
        let unit = RankUnit::new(params);
        let anchors: Vec<(RankJob, UnitReport)> =
            doe_plan(7, 8, 40, params.batch_reuse(16))
                .into_iter()
                .map(|(b, c)| {
                    let job = surrogate_job(b, c);
                    let report = unit.simulate(&job);
                    (job, report)
                })
                .collect();
        let fit = fit_from_anchors(&params, &anchors);
        (params, anchors, fit)
    })
}

fn surrogate_job(b: usize, c: usize) -> RankJob {
    RankJob { categories: 520, hidden: 64, reduced: 16, batch: b, candidates_per_item: vec![c; b] }
}

fn area_power_strategy() -> impl Strategy<Value = AreaPower> {
    (0.0f64..4.0, 0.0f64..4000.0)
        .prop_map(|(area_mm2, power_mw)| AreaPower { area_mm2, power_mw })
}

/// An evaluated design with fixed axes and a free objective vector —
/// the frontier extractor only looks at the objectives and the lattice
/// index.
fn objective_design(index: usize, lat: f64, nj: f64, q: f64) -> EvaluatedDesign {
    EvaluatedDesign {
        point: DesignPoint {
            index,
            ranks: 64,
            lanes: 128,
            screen_bits: 4,
            screen_shift: 0,
            candidates: 128,
            batch_max: 4,
            linger_cycles: 0,
            ecc: false,
            memory: enmc::mem::MemTech::Ddr4_2666,
        },
        cost: AreaPower { area_mm2: 28.0, power_mw: 18_000.0 },
        latency_ns: lat,
        energy_per_query_nj: nj,
        quality_pct: q,
        audited: false,
        fit_anchors: 0,
        audit_max_rel_err: 0.0,
    }
}

fn instruction_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (reg_strategy(), any::<u64>()).prop_map(|(reg, data)| Instruction::Init { reg, data }),
        reg_strategy().prop_map(|reg| Instruction::Query { reg }),
        (buffer_strategy(), any::<u64>())
            .prop_map(|(buffer, addr)| Instruction::Ldr { buffer, addr }),
        (buffer_strategy(), any::<u64>())
            .prop_map(|(buffer, addr)| Instruction::Str { buffer, addr }),
        (buffer_strategy(), buffer_strategy())
            .prop_map(|(dst, src)| Instruction::Move { dst, src }),
        (buffer_strategy(), buffer_strategy())
            .prop_map(|(a, b)| Instruction::MulAddInt4 { a, b }),
        (buffer_strategy(), buffer_strategy())
            .prop_map(|(a, b)| Instruction::MulAddFp32 { a, b }),
        buffer_strategy().prop_map(|buffer| Instruction::Filter { buffer }),
        Just(Instruction::Softmax),
        Just(Instruction::Sigmoid),
        Just(Instruction::Barrier),
        Just(Instruction::Nop),
        Just(Instruction::Return),
        Just(Instruction::Clr),
    ]
}

proptest! {
    // ---- tensor ---------------------------------------------------------

    #[test]
    fn quantization_error_bounded_by_half_step(
        values in prop::collection::vec(finite_f32(), 1..64),
        precision in prop_oneof![Just(Precision::Int8), Just(Precision::Int4)],
    ) {
        let v = Vector::from(values.clone());
        let q = QuantVector::quantize(&v, precision).expect("nonempty");
        let back = q.dequantize();
        for (orig, rec) in values.iter().zip(back.as_slice()) {
            prop_assert!((orig - rec).abs() <= q.scale() * 0.5 + 1e-3,
                "{orig} vs {rec} (scale {})", q.scale());
        }
    }

    #[test]
    fn softmax_is_a_distribution(values in prop::collection::vec(finite_f32(), 1..64)) {
        let p = softmax(&values);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn softmax_preserves_argmax(values in prop::collection::vec(-50.0f32..50.0, 2..64)) {
        let p = softmax(&values);
        let am_in = top_k_indices(&values, 1)[0];
        let am_out = top_k_indices(&p, 1)[0];
        // Ties can legitimately flip; only check when the max is unique.
        let max = values[am_in];
        if values.iter().filter(|&&v| v == max).count() == 1 {
            prop_assert_eq!(am_in, am_out);
        }
    }

    #[test]
    fn taylor_exp_tracks_exp(x in -30.0f32..30.0) {
        let exact = x.exp();
        let approx = taylor_exp(x);
        prop_assert!(((approx - exact) / exact).abs() < 1e-3, "x={x}");
    }

    #[test]
    fn top_k_matches_sorting(values in prop::collection::vec(finite_f32(), 0..128), k in 0usize..130) {
        let got = top_k_indices(&values, k);
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).expect("finite").then(a.cmp(&b)));
        order.truncate(k);
        prop_assert_eq!(got, order);
    }

    #[test]
    fn threshold_filter_is_exact(values in prop::collection::vec(finite_f32(), 0..128), t in finite_f32()) {
        let got = threshold_filter(&values, t);
        for c in &got {
            prop_assert!(values[c.index] > t);
            prop_assert_eq!(c.score, values[c.index]);
        }
        let expected = values.iter().filter(|&&v| v > t).count();
        prop_assert_eq!(got.len(), expected);
    }

    #[test]
    fn matvec_is_linear(
        rows in 1usize..8, cols in 1usize..8,
        s in -3.0f32..3.0,
        seed in any::<u64>(),
    ) {
        // W(a + s·b) == W a + s·(W b), up to f32 tolerance.
        let mut lcg = seed;
        let mut next = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((lcg >> 40) as f32 / (1u32 << 24) as f32) - 0.5
        };
        let mut w = Matrix::zeros(rows, cols);
        for v in w.as_mut_slice() { *v = next(); }
        let a: Vector = (0..cols).map(|_| next()).collect();
        let b: Vector = (0..cols).map(|_| next()).collect();
        let mut combo = a.clone();
        combo.axpy(s, &b);
        let left = w.matvec(&combo);
        let mut right = w.matvec(&a);
        right.axpy(s, &w.matvec(&b));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    // ---- ISA ------------------------------------------------------------

    #[test]
    fn every_generated_instruction_roundtrips(inst in instruction_strategy()) {
        let frame = inst.encode();
        prop_assert!(frame.is_valid_width());
        prop_assert_eq!(Instruction::decode(&frame).expect("decodes"), inst);
    }

    #[test]
    fn assembly_roundtrips(inst in instruction_strategy()) {
        let text = enmc::isa::asm::disassemble(&inst);
        let back = enmc::isa::asm::assemble_line(&text).expect("parses");
        prop_assert_eq!(back, inst);
    }

    // ---- DRAM -----------------------------------------------------------

    #[test]
    fn address_mapping_roundtrips(addr in 0u64..(1u64 << 39), host in any::<bool>()) {
        let org = DramConfig::enmc_table3().organization;
        let mapping = if host { AddressMapping::RoBaRaCoCh } else { AddressMapping::RoRaBaCoBg };
        // The host mapping spans all channels (512 GiB); the on-DIMM ENMC
        // mapping addresses a single channel's ranks (64 GiB).
        let space = if host { org.total_bytes() } else { org.channel_bytes() };
        let addr = (addr % space) & !63; // in range, burst aligned
        let coord = mapping.decode(addr, &org);
        prop_assert_eq!(mapping.encode(&coord, &org), addr);
        prop_assert!(coord.channel < org.channels);
        prop_assert!(coord.rank < org.ranks);
        prop_assert!(coord.row < org.rows);
        prop_assert!(coord.column < org.bursts_per_row());
    }

    // ---- parallel execution ---------------------------------------------

    #[test]
    fn shard_ranges_partition_exactly(len in 0usize..10_000, shards in 1usize..64) {
        // Sharding must never drop or duplicate a batch element: the
        // ranges tile [0, len) contiguously, in order.
        let ranges = enmc::par::shard_ranges(len, shards);
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next, "gap or overlap at {}", r.start);
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, len, "ranges must cover the whole batch");
        prop_assert!(ranges.len() <= shards.max(1));
        // Balanced: no shard is more than one element larger than another.
        if let (Some(max), Some(min)) = (
            ranges.iter().map(|r| r.len()).max(),
            ranges.iter().map(|r| r.len()).min(),
        ) {
            prop_assert!(max - min <= 1, "unbalanced shards: {max} vs {min}");
        }
    }

    #[test]
    fn par_map_equals_sequential_map(
        items in prop::collection::vec(any::<i64>(), 0..200),
        workers in 1usize..9,
    ) {
        // The pool must return exactly the sequential map in input order,
        // for any worker count.
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(31).wrapping_add(7)).collect();
        let got = enmc::par::par_map(workers, items, |_, x| x.wrapping_mul(31).wrapping_add(7));
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn quality_merge_is_commutative(
        a in quality_acc_strategy(),
        b in quality_acc_strategy(),
    ) {
        // The parallel pipeline merges per-shard accumulators; whichever
        // order the scheduler hands them over, a ∪ b must equal b ∪ a
        // exactly — every counter is a sum, and f64 addition commutes
        // bitwise even though it does not associate.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert_eq!(ab.finish(), ba.finish());
    }

    #[test]
    fn quality_merge_reproduces_sequential_accumulation(
        queries in prop::collection::vec(quality_query_strategy(), 1..24),
        shards in 1usize..6,
    ) {
        // Sharding the batch with the runtime's own shard_ranges and
        // merging in shard order must reproduce sequential accumulation:
        // integer-derived metrics exactly, float sums up to re-association.
        let mut seq = QualityAccumulator::new(3);
        for (f, a, t) in &queries {
            seq.add(f, a, *t);
        }
        let mut merged = QualityAccumulator::new(3);
        for r in &enmc::par::shard_ranges(queries.len(), shards) {
            let mut acc = QualityAccumulator::new(3);
            for (f, a, t) in &queries[r.clone()] {
                acc.add(f, a, *t);
            }
            merged.merge(&acc);
        }
        let (m, s) = (merged.finish(), seq.finish());
        prop_assert_eq!(m.queries, s.queries);
        prop_assert_eq!(m.top1_agreement, s.top1_agreement);
        prop_assert_eq!(m.k, s.k);
        prop_assert!((m.precision_at_k - s.precision_at_k).abs() < 1e-12);
        prop_assert!((m.perplexity_full - s.perplexity_full).abs()
            <= 1e-9 * s.perplexity_full.abs());
        prop_assert!((m.perplexity_approx - s.perplexity_approx).abs()
            <= 1e-9 * s.perplexity_approx.abs());
    }

    // ---- surrogate cost model -------------------------------------------

    #[test]
    fn surrogate_cycles_are_monotone_in_batch_and_candidates(
        b1 in 1usize..9, b2 in 1usize..9,
        c1 in 1usize..41, c2 in 1usize..41,
    ) {
        // Inside the anchored envelope the predicted headline total must
        // be nondecreasing along both load axes: the anchor table takes
        // a 2-D running max and bilinear interpolation of a monotone
        // grid is monotone along each axis. A sweep that sees cycles
        // *drop* when load rises would draw the wrong frontier.
        let (_, _, fit) = surrogate_fixture();
        let lo = fit.predict(&surrogate_job(b1.min(b2), c1.min(c2)));
        let hi = fit.predict(&surrogate_job(b1.max(b2), c1.max(c2)));
        prop_assert!(
            lo.dram_cycles <= hi.dram_cycles,
            "(b{},c{}) -> {} cycles but (b{},c{}) -> {}",
            b1.min(b2), c1.min(c2), lo.dram_cycles,
            b1.max(b2), c1.max(c2), hi.dram_cycles
        );
        prop_assert!(lo.ns <= hi.ns);
    }

    #[test]
    fn surrogate_doe_plan_is_seed_invariant(s1 in any::<u64>(), s2 in any::<u64>()) {
        // The anchor plan is a pure function of the fit envelope; the
        // seed only drives the audit lottery. Any seed dependence here
        // would make coefficient files irreproducible across runs.
        prop_assert_eq!(doe_plan(s1, 8, 40, 4), doe_plan(s2, 8, 40, 4));
    }

    #[test]
    fn surrogate_fit_is_byte_identical_for_the_same_anchors(mask_seed in any::<u64>()) {
        // Fit determinism: the same anchor set must always produce
        // bitwise-identical coefficients and tables — no iteration-order
        // or accumulation-order wobble — for any subset of the grid, not
        // just the full factorial.
        let (params, anchors, _) = surrogate_fixture();
        let subset: Vec<(RankJob, UnitReport)> = anchors
            .iter()
            .enumerate()
            .filter(|(i, _)| splitmix64(mask_seed ^ (*i as u64)) & 3 != 0)
            .map(|(_, a)| a.clone())
            .collect();
        let subset = if subset.is_empty() { anchors.clone() } else { subset };
        let a = fit_from_anchors(params, &subset);
        let b = fit_from_anchors(params, &subset);
        prop_assert_eq!(&a, &b);
        for (ra, rb) in a.coeffs.iter().zip(&b.coeffs) {
            for (ca, cb) in ra.iter().zip(rb) {
                prop_assert_eq!(ca.to_bits(), cb.to_bits(), "coefficients must match bitwise");
            }
        }
        for (ra, rb) in a.table.iter().zip(&b.table) {
            for (ca, cb) in ra.iter().zip(rb) {
                for (va, vb) in ca.iter().zip(cb) {
                    prop_assert_eq!(va.to_bits(), vb.to_bits(), "table must match bitwise");
                }
            }
        }
    }

    // ---- physical model / design-space tuning ---------------------------

    #[test]
    fn area_power_composition_is_linear(
        a in area_power_strategy(),
        b in area_power_strategy(),
        s in 0.0f64..64.0,
        t in 0.0f64..64.0,
    ) {
        // The design pricer composes per-primitive costs with `add` and
        // `scale`; those must behave like the linear algebra they claim.
        // Addition commutes bitwise in f64, so a ⊕ b == b ⊕ a exactly.
        prop_assert_eq!(a.add(&b), b.add(&a));
        // Identities are exact too.
        prop_assert_eq!(a.scale(1.0), a);
        prop_assert_eq!(a.scale(0.0).area_mm2, 0.0);
        prop_assert_eq!(a.scale(0.0).power_mw, 0.0);
        prop_assert_eq!(a.add(&AreaPower { area_mm2: 0.0, power_mw: 0.0 }), a);
        // Scaling distributes over addition and composes multiplicatively
        // (up to f64 rounding of the reassociated products).
        let lhs = a.add(&b).scale(s);
        let rhs = a.scale(s).add(&b.scale(s));
        prop_assert!((lhs.area_mm2 - rhs.area_mm2).abs() <= 1e-9 * lhs.area_mm2.abs().max(1.0));
        prop_assert!((lhs.power_mw - rhs.power_mw).abs() <= 1e-9 * lhs.power_mw.abs().max(1.0));
        let once = a.scale(s * t);
        let twice = a.scale(s).scale(t);
        prop_assert!((once.area_mm2 - twice.area_mm2).abs() <= 1e-9 * once.area_mm2.abs().max(1.0));
        prop_assert!((once.power_mw - twice.power_mw).abs() <= 1e-9 * once.power_mw.abs().max(1.0));
    }

    #[test]
    fn area_power_sums_are_order_independent(
        parts in prop::collection::vec(area_power_strategy(), 1..8),
    ) {
        // Budget admission prices a design by summing its components;
        // whichever order the pricer visits them, the total must agree
        // (exactly for a swapped pair, within re-association slack for a
        // reversed fold).
        let zero = AreaPower { area_mm2: 0.0, power_mw: 0.0 };
        let fwd = parts.iter().fold(zero, |acc, p| acc.add(p));
        let rev = parts.iter().rev().fold(zero, |acc, p| acc.add(p));
        prop_assert!((fwd.area_mm2 - rev.area_mm2).abs() <= 1e-9 * fwd.area_mm2.abs().max(1.0));
        prop_assert!((fwd.power_mw - rev.power_mw).abs() <= 1e-9 * fwd.power_mw.abs().max(1.0));
        if parts.len() >= 2 {
            let mut swapped = parts.clone();
            swapped.swap(0, 1);
            let swp = swapped.iter().fold(zero, |acc, p| acc.add(p));
            prop_assert_eq!(fwd, swp, "swapping adjacent head terms commutes bitwise");
        }
    }

    #[test]
    fn pareto_frontier_is_valid_for_any_objective_cloud(
        objs in prop::collection::vec(
            (1.0f64..1000.0, 1.0f64..1000.0, 0.0f64..100.0), 1..24),
    ) {
        let evaluated: Vec<EvaluatedDesign> = objs
            .iter()
            .enumerate()
            .map(|(i, (l, e, q))| objective_design(i, *l, *e, *q))
            .collect();
        let frontier = pareto_frontier(&evaluated);
        prop_assert!(!frontier.is_empty(), "a non-empty cloud always has a maximal point");
        // No frontier point is dominated by anything evaluated.
        for f in &frontier {
            prop_assert!(
                !evaluated.iter().any(|d| dominates(d, &f.design)),
                "dominated design {} on the frontier", f.design.point.index
            );
        }
        // Dominance is a strict partial order over a finite set, so every
        // point off the frontier is dominated by some maximal (frontier)
        // point — nothing is silently dropped.
        for d in &evaluated {
            let on_frontier = frontier.iter().any(|f| f.design.point.index == d.point.index);
            if !on_frontier {
                prop_assert!(
                    frontier.iter().any(|f| dominates(&f.design, d)),
                    "design {} neither kept nor dominated", d.point.index
                );
            }
        }
        // Deterministic order: (latency, energy, lattice index) ascending.
        for w in frontier.windows(2) {
            let (a, b) = (&w[0].design, &w[1].design);
            let key_a = (a.latency_ns, a.energy_per_query_nj, a.point.index);
            let key_b = (b.latency_ns, b.energy_per_query_nj, b.point.index);
            prop_assert!(key_a < key_b, "frontier must sort strictly by its key");
        }
    }

    #[test]
    fn dram_stats_merge_parallel_is_commutative(
        a in dram_stats_strategy(),
        b in dram_stats_strategy(),
    ) {
        let mut ab = a;
        ab.merge_parallel(&b);
        let mut ba = b;
        ba.merge_parallel(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn dram_stats_merge_parallel_is_associative(
        a in dram_stats_strategy(),
        b in dram_stats_strategy(),
        c in dram_stats_strategy(),
    ) {
        // (a ∥ b) ∥ c == a ∥ (b ∥ c): counts add and clocks max, so the
        // shard-merge order chosen by the runtime cannot matter.
        let mut left = a;
        left.merge_parallel(&b);
        left.merge_parallel(&c);
        let mut bc = b;
        bc.merge_parallel(&c);
        let mut right = a;
        right.merge_parallel(&bc);
        prop_assert_eq!(left, right);
    }

    /// The fuzzer's clean-sweep property holds on every memory preset:
    /// any pattern (including the data-dependent moving-inversion
    /// passes), any seed, run against the preset's own nominal timing,
    /// raises no violation and agrees with the golden model.
    #[test]
    fn nominal_fuzz_sweep_is_clean_under_every_preset(
        tech_idx in 0usize..4,
        pattern_idx in 0usize..enmc::dram::fuzz::PatternKind::ALL.len(),
        seed in 0u64..1024,
    ) {
        let tech = enmc::mem::MemTech::ALL[tech_idx];
        let pattern = enmc::dram::fuzz::PatternKind::ALL[pattern_idx];
        let reference = tech.preset().single_rank_config();
        let (_, out) = enmc::dram::fuzz::run_seed_on(&reference, pattern, seed, 48, None);
        prop_assert!(
            out.is_clean(),
            "{} {} seed {seed}: {:?}",
            tech.name(),
            pattern.name(),
            out.violations
        );
    }
}

/// Pinned replay of the shrunken case persisted in
/// `tests/proptests.proptest-regressions` (`addr = 68719476736, host =
/// false`): the exact boundary address upstream proptest once minimized
/// an `address_mapping_roundtrips` failure to. The vendored proptest
/// stub replays every `cc` entry as a hashed extra case (its PRNG stream
/// differs from upstream's, so the literal inputs cannot be re-derived
/// from the seed); this test pins the literal inputs too.
#[test]
fn address_mapping_regression_64gib_boundary() {
    let org = DramConfig::enmc_table3().organization;
    let mapping = AddressMapping::RoRaBaCoBg; // host = false
    let raw: u64 = 68719476736; // exactly 64 GiB == org.channel_bytes()
    assert_eq!(org.channel_bytes(), raw, "regression predates an organization change");
    let addr = (raw % org.channel_bytes()) & !63; // wraps to 0, the old failure point
    let coord = mapping.decode(addr, &org);
    assert_eq!(mapping.encode(&coord, &org), addr);
    assert!(coord.channel < org.channels);
    assert!(coord.rank < org.ranks);
    assert!(coord.row < org.rows);
    assert!(coord.column < org.bursts_per_row());
}
