//! End-to-end functional validation: a *trained* screener, compiled to the
//! ISA and executed on the data-level DIMM model, must reproduce the
//! pure-software pipeline's classification decisions.

use enmc::arch::functional::HostRuntime;
use enmc::compiler::TaskDescriptor;
use enmc::model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc::screen::screener::{Screener, ScreenerConfig};
use enmc::screen::train::fit_least_squares;
use enmc::tensor::quant::{Precision, QuantMatrix, QuantVector};
use enmc::tensor::select::top_k_indices;
use enmc::tensor::Vector;

fn setup() -> (SyntheticClassifier, Screener) {
    let synth = SyntheticClassifier::generate(&SynthesisConfig {
        categories: 512,
        hidden: 64,
        clusters: 16,
        row_noise: 0.4,
        zipf_exponent: 1.0,
        bias_scale: 1.0,
        query_signal: 2.2,
        seed: 77,
    })
    .expect("valid synth");
    let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 3 };
    let mut screener =
        Screener::new(512, 64, &cfg).expect("valid dims");
    let train: Vec<_> =
        synth.sample_queries_seeded(128, 9).into_iter().map(|q| q.hidden).collect();
    fit_least_squares(&mut screener, synth.weights(), synth.bias(), &train, 1e-4);
    (synth, screener)
}

#[test]
fn hardware_decisions_match_software_decisions() {
    let (synth, screener) = setup();
    let k = screener.reduced_dim();
    let wt = QuantMatrix::quantize(screener.weights(), Precision::Int4).expect("nonempty");
    let task = TaskDescriptor {
        categories: 512,
        hidden: 64,
        reduced: k,
        screen_precision: Precision::Int4,
        batch: 1,
        threshold_bits: 0,
        weight_scale_bits: 0,
        feature_scale_bits: 0,
        softmax: true,
    };
    let mut runtime = HostRuntime::new(
        task,
        synth.weights(),
        synth.bias(),
        &wt,
        screener.bias(),
        256,
    )
    .expect("runtime builds");

    let queries = synth.sample_queries_seeded(20, 55);
    let mut top1_matches = 0usize;
    for q in &queries {
        // Host-side projection + quantization (what the front-end DMA's in).
        let ph = screener.projection().project(&q.hidden);
        let qph = QuantVector::quantize(&ph, Precision::Int4).expect("nonempty");

        // Software reference: quantized screen (same codes/scales) +
        // threshold filter + exact candidates.
        let threshold = {
            // Aim for ~5% candidates via the software approx logits.
            let mut z = wt.matvec_quant(&qph);
            z.add_assign(screener.bias());
            let idx = top_k_indices(z.as_slice(), 26);
            z[*idx.last().expect("nonempty")]
        };
        let (hw_logits, hw_cands) =
            runtime.classify(&qph, &q.hidden, threshold).expect("executes");

        let mut sw = wt.matvec_quant(&qph);
        sw.add_assign(screener.bias());
        let sw_cands: Vec<usize> = (0..512).filter(|&i| sw[i] > threshold).collect();
        assert_eq!(hw_cands, sw_cands, "candidate sets diverged");
        for &c in &sw_cands {
            let exact = enmc::tensor::matrix::dot(synth.weights().row(c), q.hidden.as_slice())
                + synth.bias()[c];
            assert!((hw_logits[c] - exact).abs() < 1e-3, "candidate {c}");
        }
        // Decision-level equivalence.
        let hw_top = top_k_indices(&hw_logits, 1)[0];
        let mut sw_mixed: Vec<f32> = sw.as_slice().to_vec();
        for &c in &sw_cands {
            sw_mixed[c] = enmc::tensor::matrix::dot(synth.weights().row(c), q.hidden.as_slice())
                + synth.bias()[c];
        }
        let sw_top = top_k_indices(&sw_mixed, 1)[0];
        if hw_top == sw_top {
            top1_matches += 1;
        }
    }
    assert_eq!(top1_matches, queries.len(), "argmax must match on every query");
}

#[test]
fn trained_screener_on_hardware_finds_true_targets() {
    let (synth, screener) = setup();
    let k = screener.reduced_dim();
    let wt = QuantMatrix::quantize(screener.weights(), Precision::Int4).expect("nonempty");
    let task = TaskDescriptor {
        categories: 512,
        hidden: 64,
        reduced: k,
        screen_precision: Precision::Int4,
        batch: 1,
        threshold_bits: 0,
        weight_scale_bits: 0,
        feature_scale_bits: 0,
        softmax: true,
    };
    let mut runtime = HostRuntime::new(
        task,
        synth.weights(),
        synth.bias(),
        &wt,
        screener.bias(),
        256,
    )
    .expect("runtime builds");
    let queries = synth.sample_queries_seeded(30, 66);
    let mut hits = 0usize;
    for q in &queries {
        let ph = screener.projection().project(&q.hidden);
        let qph = QuantVector::quantize(&ph, Precision::Int4).expect("nonempty");
        // Generous threshold: the trained screener should surface the true
        // target among its candidates for most queries.
        let (logits, cands) = runtime.classify(&qph, &q.hidden, 0.0).expect("executes");
        let top10 = top_k_indices(&logits, 10);
        if top10.contains(&q.target) || cands.contains(&q.target) {
            hits += 1;
        }
        let _ = Vector::from(logits); // logits are a plain vector
    }
    let rate = hits as f64 / queries.len() as f64;
    assert!(rate > 0.7, "hardware top-10 recovery {rate}");
}
