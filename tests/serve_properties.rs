//! Queueing-theory invariants of the serving simulator: conservation,
//! FIFO dispatch, batching bounds, linger deadlines, histogram
//! consistency, and worker-count invariance — over randomized
//! arrival processes and controller configurations.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::obs::MetricsRegistry;
use enmc::par::SimConfig;
use enmc::serve::tier::default_tiers;
use enmc::serve::{simulate, ArrivalProcess, ServeConfig, ServeOutcome};
use proptest::prelude::*;

/// Small enough that each case's calibration pass (tiers × batch sizes
/// sharded runs) stays in the milliseconds.
fn small_job() -> ClassificationJob {
    ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
}

/// A randomized but always-valid serving scenario. Rates span from idle
/// to heavily overloaded so shedding and degradation both get exercised.
fn scenario() -> impl Strategy<Value = ServeConfig> {
    let arrival = prop_oneof![
        (0.01f64..2.0).prop_map(|rate| ArrivalProcess::Poisson { rate }),
        (0.01f64..0.5, 1.0f64..20.0).prop_map(|(calm, burst)| ArrivalProcess::Burst {
            calm_rate: calm,
            burst_rate: burst,
            calm_cycles: 5_000.0,
            burst_cycles: 2_000.0,
        }),
        (0.01f64..0.5, 1.0f64..4.0).prop_map(|(trough, peak)| ArrivalProcess::Diurnal {
            trough_rate: trough,
            peak_rate: peak,
            period_cycles: 20_000,
        }),
    ];
    (
        (arrival, 8usize..40, 1usize..5, 50u64..3_000, 1usize..4),
        (200u64..20_000, 2usize..16, 4usize..32, any::<u64>()),
    )
        .prop_map(
            |((arrival, requests, batch_max, linger_cycles, lanes), (slo_cycles, dq, sq, seed))| {
                ServeConfig {
                    arrival,
                    requests,
                    slo_cycles,
                    batch_max,
                    linger_cycles,
                    lanes,
                    tiers: default_tiers(&small_job()),
                    degrade_queue_depth: dq,
                    upgrade_queue_depth: (dq / 4).max(1),
                    shed_queue_depth: sq.max(dq + 1),
                    seed,
                    offload: None,
                }
            },
        )
}

fn run(cfg: &ServeConfig, sim: &SimConfig) -> ServeOutcome {
    let mut registry = MetricsRegistry::new();
    simulate(&SystemModel::table3(), &small_job(), cfg, sim, &mut registry, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every generated request is accounted for exactly once: shed at
    /// admission or completed; nothing is lost in the queue.
    #[test]
    fn requests_are_conserved(cfg in scenario()) {
        let out = run(&cfg, &SimConfig::sequential());
        prop_assert_eq!(out.generated, out.admitted + out.shed);
        prop_assert_eq!(out.admitted, out.completed);
        prop_assert_eq!(out.requests.len() as u64, out.generated);
        let shed = out.requests.iter().filter(|r| r.shed).count() as u64;
        let done = out.requests.iter().filter(|r| r.completion.is_some()).count() as u64;
        prop_assert_eq!(shed, out.shed);
        prop_assert_eq!(done, out.completed);
    }

    /// Batches leave the queue in arrival order and respect the size cap:
    /// dispatch times and oldest-member arrivals are both non-decreasing,
    /// and no batch exceeds `batch_max` or is empty.
    #[test]
    fn dispatch_is_fifo_and_bounded(cfg in scenario()) {
        let out = run(&cfg, &SimConfig::sequential());
        prop_assert_eq!(
            out.batches.iter().map(|b| b.size as u64).sum::<u64>(),
            out.completed
        );
        for pair in out.batches.windows(2) {
            prop_assert!(pair[1].start >= pair[0].start);
            prop_assert!(pair[1].oldest_arrival >= pair[0].oldest_arrival);
        }
        for b in &out.batches {
            prop_assert!(b.size >= 1 && b.size <= cfg.batch_max, "size {}", b.size);
            prop_assert!(b.lane < cfg.lanes);
            prop_assert!(b.end > b.start);
            prop_assert!(b.start >= b.oldest_arrival);
        }
    }

    /// No batch is held past its linger deadline while a lane sits idle:
    /// each dispatch happens by the later of the oldest member's linger
    /// expiry and the first moment any lane was free.
    #[test]
    fn linger_deadline_is_honored(cfg in scenario()) {
        let out = run(&cfg, &SimConfig::sequential());
        let mut lane_free = vec![0u64; cfg.lanes];
        for b in &out.batches {
            let earliest_free = lane_free.iter().copied().min().unwrap();
            let deadline = b.oldest_arrival.saturating_add(cfg.linger_cycles).max(earliest_free);
            prop_assert!(
                b.start <= deadline,
                "batch at {} held past linger deadline {} (oldest {}, lanes free {:?})",
                b.start, deadline, b.oldest_arrival, lane_free
            );
            prop_assert!(lane_free[b.lane] <= b.start, "lane {} double-booked", b.lane);
            lane_free[b.lane] = b.end;
        }
    }

    /// The latency histogram observed exactly the completed requests, and
    /// every recorded latency is consistent with its quantiles.
    #[test]
    fn histogram_matches_completions(cfg in scenario()) {
        let out = run(&cfg, &SimConfig::sequential());
        prop_assert_eq!(out.latency.count(), out.completed);
        if out.completed > 0 {
            prop_assert!(out.latency.p50() <= out.latency.p99());
            prop_assert!(out.latency.p99() <= out.latency.p999());
            let max_lat = out
                .requests
                .iter()
                .filter_map(|r| r.completion.map(|c| c - r.arrival))
                .max()
                .unwrap();
            // Quantiles report bucket upper bounds, so p999 dominates the
            // true maximum latency.
            prop_assert!(out.latency.p999() >= max_lat as f64);
        }
    }

    /// The outcome and the emitted schema-v4 report are bit-identical
    /// whether calibration runs sequentially or on four workers.
    #[test]
    fn outcome_is_worker_count_invariant(cfg in scenario()) {
        let seq = run(&cfg, &SimConfig::sequential());
        let par = run(&cfg, &SimConfig::with_threads(4));
        prop_assert_eq!(&seq, &par);
        let mut reg_seq = MetricsRegistry::new();
        let mut reg_par = MetricsRegistry::new();
        simulate(&SystemModel::table3(), &small_job(), &cfg, &SimConfig::sequential(), &mut reg_seq, None);
        simulate(&SystemModel::table3(), &small_job(), &cfg, &SimConfig::with_threads(4), &mut reg_par, None);
        let a = seq.report("prop", &cfg, &reg_seq).to_json();
        let b = par.report("prop", &cfg, &reg_par).to_json();
        prop_assert_eq!(a, b);
    }
}
