//! Randomized cycle-accurate audit harness for the surrogate cost model:
//! 200 seeded random (batch, candidates) configurations across all five
//! paper shapes must predict within [`DECLARED_BOUND`] on every
//! attribution leaf when audited at rate 1.0; a deliberately perturbed
//! coefficient must *trip* the audit (inverted-sensitivity, the same
//! pattern as the fuzz-dram injected-bug loop); and surrogate output is
//! bit-identical across worker counts (`ENMC_THREADS` equivalents).

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::par::SimConfig;
use enmc::surrogate::fit::splitmix64;
use enmc::surrogate::{CostBackend, CostModel, DECLARED_BOUND};

/// Paper Table 2 shapes plus the S1M stress point (same set as the
/// differential conformance suite): candidate budget ~0.1%, `reduced`
/// 32, so each cycle-accurate audit stays debug-mode affordable.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("lstm", 33_278, 1_500, 33),
    ("transformer", 267_744, 512, 268),
    ("gnmt", 32_317, 1_024, 32),
    ("xmlcnn", 670_091, 512, 670),
    ("s1m", 1_000_000, 512, 1_000),
];

fn job_for(shape: &(&str, usize, usize, usize), batch: usize, candidates: usize) -> ClassificationJob {
    let (_, categories, hidden, _) = *shape;
    ClassificationJob { categories, hidden, reduced: 32, batch, candidates }
}

/// (a) Every one of 200 seeded random configurations — 40 per shape,
/// batch 1..=8, candidates 1..=budget — passes a forced audit: the
/// prediction is within the declared bound on the latency scalars and
/// every attribution leaf, or `run_sharded_enmc` would return the
/// structured violation.
#[test]
fn two_hundred_random_configs_audit_within_the_declared_bound() {
    let sys = SystemModel::table3();
    let cfg = SimConfig::sequential();
    for (si, shape) in SHAPES.iter().enumerate() {
        let (name, _, _, cand_max) = *shape;
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, 7);
        // Anchor the full envelope first so the random probes below
        // interpolate instead of triggering per-probe refits.
        let warm = job_for(shape, 8, cand_max);
        cost.run_sharded_enmc(&sys, &warm, &cfg, name).unwrap_or_else(|v| {
            panic!("{name}: envelope corner failed its audit: {v}")
        });
        for i in 0..40u64 {
            let draw = (si as u64) << 32 | i;
            let b = 1 + (splitmix64(0x5eed_0001 ^ draw) as usize) % 8;
            let c = 1 + (splitmix64(0x5eed_0002 ^ draw) as usize) % cand_max;
            let job = job_for(shape, b, c);
            cost.run_sharded_enmc(&sys, &job, &cfg, name).unwrap_or_else(|v| {
                panic!("{name}: random config b={b} c={c} failed its audit: {v}")
            });
        }
        let s = cost.stats();
        assert_eq!(s.audited, 41, "{name}: audit rate 1.0 must audit every point");
        assert_eq!(s.predicted, 41);
        assert!(
            s.max_rel_err <= DECLARED_BOUND.rel,
            "{name}: worst bound-normalized error {} exceeds {}",
            s.max_rel_err,
            DECLARED_BOUND.rel
        );
        assert!(s.fit_anchors > 0, "{name}: the fit must have consumed anchors");
    }
}

/// (b) Inverted sensitivity: the audit harness must *catch* a model that
/// is wrong. Scaling the fitted screener-busy row and the total-cycles
/// anchor table plants two different kinds of defect (a work counter
/// feeding energy/compute leaves; the headline latency); both must
/// surface as structured violations naming a leaf, not pass silently.
#[test]
fn perturbed_coefficients_must_trip_the_audit() {
    let sys = SystemModel::table3();
    let cfg = SimConfig::sequential();
    for target in ["dram_cycles", "screener_busy"] {
        let shape = &SHAPES[0];
        let job = job_for(shape, 4, 17);
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, 7);
        cost.run_sharded_enmc(&sys, &job, &cfg, "clean").expect("unperturbed model audits clean");
        assert!(cost.perturb_coeff(target, 1.5) > 0, "perturbation must touch a fit");
        let err = cost
            .run_sharded_enmc(&sys, &job, &cfg, "perturbed")
            .expect_err("a 50% error on a load-bearing value cannot pass a forced audit");
        assert!(!err.leaf.is_empty(), "violation must name the offending leaf");
        assert!(err.rel_err > err.bound, "{}: {} <= {}", target, err.rel_err, err.bound);
        let msg = err.to_string();
        assert!(msg.contains("surrogate violation"), "{msg}");
        assert!(msg.contains("predicted"), "{msg}");
    }
}

/// (c) Worker-count invariance: the surrogate path (prediction *and*
/// fitted coefficients) is bit-identical between 1 and 4 workers — the
/// same contract `ENMC_THREADS` relies on everywhere else in the repo.
/// Predictions carry no host timing, so whole results compare equal.
#[test]
fn surrogate_output_is_bit_identical_across_worker_counts() {
    let sys = SystemModel::table3();
    let shape = &SHAPES[2];
    let jobs: Vec<ClassificationJob> =
        (1..=4).map(|b| job_for(shape, b, 8 * b)).collect();

    let run_all = |threads: usize| {
        let cfg =
            if threads <= 1 { SimConfig::sequential() } else { SimConfig::with_threads(threads) };
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 0.5 }, 7);
        let results: Vec<_> = jobs
            .iter()
            .map(|j| cost.run_sharded_enmc(&sys, j, &cfg, "invariance").expect("audits clean"))
            .collect();
        (results, cost.coeffs_to_json(), cost.stats())
    };

    let (r1, coeffs1, s1) = run_all(1);
    let (r4, coeffs4, s4) = run_all(4);
    for (a, b) in r1.iter().zip(&r4) {
        assert_eq!(a.result, b.result, "prediction must not depend on worker count");
        assert_eq!(a.shard_dram, b.shard_dram);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.wall_ns, 0.0, "predictions carry no host timing");
    }
    assert_eq!(coeffs1, coeffs4, "fitted coefficients must serialize byte-identically");
    assert_eq!(s1.audited, s4.audited, "the audit lottery is seeded, not thread-scheduled");
    assert_eq!(s1.max_rel_err.to_bits(), s4.max_rel_err.to_bits());
}
