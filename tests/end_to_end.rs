//! Integration tests spanning the whole stack: workload synthesis →
//! screening → candidate selection → architecture simulation.

use enmc::arch::baseline::BaselineKind;
use enmc::arch::system::Scheme;
use enmc::pipeline::{Pipeline, PipelineConfig};
use enmc::tensor::quant::Precision;

fn config(seed: u64) -> PipelineConfig {
    PipelineConfig {
        categories: 4096,
        hidden: 96,
        scale: 0.25,
        precision: Precision::Int4,
        candidates: 120,
        train_queries: 128,
        seed,
    }
}

#[test]
fn quality_survives_the_full_stack() {
    let mut p = Pipeline::build(&config(11)).expect("valid config");
    let q = p.evaluate_quality(80);
    assert!(q.top1_agreement > 0.85, "top-1 agreement {}", q.top1_agreement);
    assert!(q.precision_at_k > 0.8, "P@10 {}", q.precision_at_k);
    assert!(q.perplexity_ratio() < 1.3, "ppl ratio {}", q.perplexity_ratio());
}

#[test]
fn scheme_ordering_matches_paper() {
    // CPU-full < CPU+AS < NMP baselines < ENMC, in performance.
    let p = Pipeline::build(&config(12)).expect("valid config");
    let cpu_full = p.simulate(Scheme::CpuFull, 1);
    let cpu_as = p.simulate(Scheme::CpuScreened, 1);
    let td = p.simulate(Scheme::Baseline(BaselineKind::TensorDimm), 1);
    let enmc = p.simulate(Scheme::Enmc, 1);
    assert!(cpu_as.ns < cpu_full.ns, "screening must beat full on CPU");
    assert!(enmc.ns < td.ns, "ENMC must beat TensorDIMM");
    assert!(enmc.ns < cpu_as.ns, "ENMC must beat the screened CPU");
}

#[test]
fn more_candidates_cost_more_but_improve_quality() {
    let mut few = Pipeline::build(&PipelineConfig { candidates: 20, ..config(13) })
        .expect("valid config");
    let mut many = Pipeline::build(&PipelineConfig { candidates: 400, ..config(13) })
        .expect("valid config");
    let q_few = few.evaluate_quality(60);
    let q_many = many.evaluate_quality(60);
    assert!(q_many.precision_at_k >= q_few.precision_at_k);
    let t_few = few.simulate_enmc();
    let t_many = many.simulate_enmc();
    assert!(t_many.ns > t_few.ns, "more exact rows must take longer");
}

#[test]
fn quantized_screening_matches_fp32_screening_quality() {
    let mut int4 = Pipeline::build(&config(14)).expect("valid config");
    let mut fp32 = Pipeline::build(&PipelineConfig {
        precision: Precision::Fp32,
        ..config(14)
    })
    .expect("valid config");
    let qi = int4.evaluate_quality(60);
    let qf = fp32.evaluate_quality(60);
    // Fig. 12(b): INT4 tracks FP32 closely.
    assert!(
        (qi.top1_agreement - qf.top1_agreement).abs() < 0.08,
        "INT4 {} vs FP32 {}",
        qi.top1_agreement,
        qf.top1_agreement
    );
}

#[test]
fn pipeline_is_deterministic() {
    let mut a = Pipeline::build(&config(15)).expect("valid config");
    let mut b = Pipeline::build(&config(15)).expect("valid config");
    let qa = a.evaluate_quality(30);
    let qb = b.evaluate_quality(30);
    assert_eq!(qa, qb);
    let sa = a.simulate_enmc();
    let sb = b.simulate_enmc();
    assert_eq!(sa.ns, sb.ns);
}

#[test]
fn batch_sizes_scale_sanely() {
    let p = Pipeline::build(&config(16)).expect("valid config");
    let b1 = p.simulate(Scheme::Enmc, 1);
    let b4 = p.simulate(Scheme::Enmc, 4);
    assert!(b4.ns > b1.ns, "batch 4 cannot be free");
    assert!(b4.ns < 4.5 * b1.ns, "batch 4 should amortize the weight stream");
}
