//! Differential conformance for the parallel execution mode: the sharded
//! whole-system path must be **bit-identical** to the same decomposition
//! run sequentially, for every paper workload shape — logits, DRAM
//! statistics, energy and the RunReport cycle sums all diff clean. The
//! shard decomposition is fixed by the workload (per-rank / fixed batch
//! shard counts), never by the worker count, so threads may only change
//! host wall-clock measurements.

use enmc::arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc::model::synth::Query;
use enmc::obs::report::RunReport;
use enmc::par::SimConfig;
use enmc::pipeline::{report_from_sharded, Pipeline, PipelineConfig};
use enmc::screen::infer::ApproxOutput;
use enmc::tensor::quant::Precision;

/// Paper Table 2 shapes (categories x hidden) plus the S1M stress point.
/// The rank decomposition depends on (categories, batch, ranks), so the
/// shapes — including the non-divisible remainders they leave across 64
/// ranks — are the interesting axis. Candidate counts use a ~0.1%
/// screening budget and `reduced` is held at 32: both only scale the
/// number of simulated DRAM cycles (debug-mode runtime), not the shard
/// decomposition or the merge logic under test.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("lstm", 33_278, 1_500, 33),
    ("transformer", 267_744, 512, 268),
    ("gnmt", 32_317, 1_024, 32),
    ("xmlcnn", 670_091, 512, 670),
    ("s1m", 1_000_000, 512, 1_000),
];

fn job_for(shape: &(&str, usize, usize, usize), batch: usize) -> ClassificationJob {
    let (_, categories, hidden, candidates) = *shape;
    ClassificationJob { categories, hidden, reduced: 32, batch, candidates }
}

/// Zeroes every host-wall-clock-derived field so two reports produced by
/// runs with different worker counts can be compared bit-for-bit on the
/// deterministic remainder (cycles, simulated ns, metrics, phases).
fn canonical(mut report: RunReport) -> RunReport {
    report.threads = 0;
    report.speedup = 0.0;
    for phase in &mut report.phases {
        phase.wall_ns = 0.0;
    }
    report.notes.retain(|n| !n.contains("sharded run"));
    report
}

#[test]
fn sharded_enmc_is_bit_identical_for_every_paper_shape() {
    let sys = SystemModel::table3();
    for shape in SHAPES {
        let job = job_for(shape, 1);
        let seq = sys.run_sharded(&job, Scheme::Enmc, &SimConfig::sequential());
        let par = sys.run_sharded(&job, Scheme::Enmc, &SimConfig::with_threads(4));
        // SchemeResult equality covers ns, the straggler-merged UnitReport
        // (cycle marks, work counters, DramStats) and the summed energy.
        assert_eq!(seq.result, par.result, "{}: sequential vs 4 workers", shape.0);
        assert_eq!(seq.shards, par.shards, "{}: shard count must not depend on workers", shape.0);

        let rep_seq = canonical(report_from_sharded("simulate", shape.0, &job, &sys, &seq));
        let rep_par = canonical(report_from_sharded("simulate", shape.0, &job, &sys, &par));
        assert_eq!(rep_seq, rep_par, "{}: canonical RunReports diverge", shape.0);
        assert!(rep_par.is_consistent(), "{}: phase cycles must tile sim_cycles", shape.0);
        assert_eq!(rep_seq.sim_cycles, rep_seq.phase_sim_cycles(), "{}: cycle sum", shape.0);
        // The attribution rides along and is part of the bit-exact diff:
        // RunReport equality above covered it, and its leaves tile the
        // headline totals exactly.
        assert!(!rep_par.breakdown.is_empty(), "{}: missing breakdown", shape.0);
        let leaf_cycles: u64 = rep_par
            .breakdown
            .iter()
            .filter(|r| r.path.starts_with("cycles/"))
            .map(|r| r.cycles)
            .sum();
        assert_eq!(leaf_cycles, rep_par.sim_cycles, "{}: breakdown cycle sum", shape.0);
        let leaf_nj: f64 = rep_par
            .breakdown
            .iter()
            .filter(|r| r.path.starts_with("energy/"))
            .map(|r| r.nj)
            .sum();
        assert_eq!(
            leaf_nj.to_bits(),
            rep_par.energy_nj.to_bits(),
            "{}: breakdown energy sum",
            shape.0
        );
    }
}

#[test]
fn sharded_run_is_worker_count_invariant() {
    // Odd worker counts exercise uneven work-stealing interleavings; the
    // merged result must not notice.
    let sys = SystemModel::table3();
    let job = job_for(&SHAPES[0], 2);
    let baseline = sys.run_sharded(&job, Scheme::Enmc, &SimConfig::sequential());
    for workers in [3usize, 5, 8] {
        let run = sys.run_sharded(&job, Scheme::Enmc, &SimConfig::with_threads(workers));
        assert_eq!(baseline.result, run.result, "{workers} workers");
        assert_eq!(run.workers, workers);
    }
}

#[test]
fn sharded_baselines_match_sequential() {
    use enmc::arch::baseline::BaselineKind;
    let sys = SystemModel::table3();
    let job = job_for(&SHAPES[0], 1);
    for kind in [BaselineKind::TensorDimm, BaselineKind::Chameleon] {
        let scheme = Scheme::Baseline(kind);
        let seq = sys.run_sharded(&job, scheme, &SimConfig::sequential());
        let par = sys.run_sharded(&job, scheme, &SimConfig::with_threads(4));
        assert_eq!(seq.result, par.result, "{kind:?}");
    }
}

#[test]
fn analytic_schemes_are_unaffected_by_threads() {
    // CPU schemes have nothing to shard; the parallel config must fall
    // through to the same closed-form latency.
    let sys = SystemModel::table3();
    let job = job_for(&SHAPES[2], 2);
    for scheme in [Scheme::CpuFull, Scheme::CpuScreened] {
        let seq = sys.run_sharded(&job, scheme, &SimConfig::sequential());
        let par = sys.run_sharded(&job, scheme, &SimConfig::with_threads(4));
        assert_eq!(seq.result, par.result);
        assert_eq!(par.shards, 1);
    }
}

/// Algorithm-level differential: classifying a query stream through the
/// batch-sharded path must reproduce the sequential logits exactly —
/// not approximately — for any worker count.
#[test]
fn batch_sharded_logits_diff_clean() {
    let p = Pipeline::build(&PipelineConfig {
        categories: 2_000,
        hidden: 64,
        candidates: 60,
        train_queries: 64,
        seed: 11,
        ..Default::default()
    })
    .expect("pipeline builds");
    let queries: Vec<Query> = p.synth().sample_queries_seeded(200, 77);
    // Pipeline::build freezes the classifier, so the shared-reference
    // classification path is available without further mutation.
    let classifier = p.classifier();

    let sequential: Vec<ApproxOutput> =
        queries.iter().map(|q| classifier.classify_ref(&q.hidden)).collect();

    for workers in [2usize, 4, 7] {
        let shards = enmc::par::shard_ranges(queries.len(), 8);
        let queries_ref = &queries[..];
        let sharded: Vec<ApproxOutput> = enmc::par::par_map(workers, shards, |_, range| {
            queries_ref[range].iter().map(|q| classifier.classify_ref(&q.hidden)).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        // ApproxOutput equality covers logits bit-patterns, candidate
        // sets and the cost model counters.
        assert_eq!(sequential, sharded, "{workers} workers");
    }
}

#[test]
fn quality_evaluation_is_worker_count_invariant() {
    let cfg = PipelineConfig {
        categories: 1_500,
        hidden: 48,
        candidates: 45,
        train_queries: 64,
        precision: Precision::Int4,
        seed: 5,
        ..Default::default()
    };
    let mut p = Pipeline::build(&cfg).expect("pipeline builds");
    let sequential = p.evaluate_quality_with(400, &SimConfig::sequential());
    for workers in [2usize, 4, 8] {
        let mut q = Pipeline::build(&cfg).expect("pipeline builds");
        let parallel = q.evaluate_quality_with(400, &SimConfig::with_threads(workers));
        assert_eq!(sequential, parallel, "{workers} workers");
    }
}
