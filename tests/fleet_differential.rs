//! Differential conformance for the fleet simulator: a 1-node, 1-shard,
//! 1-tenant, replica-free fleet must be **bit-identical** to the same
//! scenario run through the single-node serving simulator — admissions,
//! sheds, degrade transitions, batches, the latency histogram and the
//! calibrated service table all diff clean. And like every simulator in
//! this workspace, the fleet report itself must be byte-identical across
//! worker counts for every paper shape.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::fleet::{simulate_fleet, FleetConfig, PlacementPolicy, TenantConfig};
use enmc::obs::MetricsRegistry;
use enmc::par::SimConfig;
use enmc::serve::{simulate, ArrivalProcess, DegradeTier, ServeConfig};
use enmc::surrogate::{CostBackend, CostModel};

/// Paper Table 2 shapes (categories x hidden) plus the S1M stress point,
/// with a ~0.1% screening budget — the same axis `tests/differential.rs`
/// sweeps, because the rank decomposition (and its non-divisible
/// remainders) is what calibration parallelism actually shards.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("lstm", 33_278, 1_500, 33),
    ("transformer", 267_744, 512, 268),
    ("gnmt", 32_317, 1_024, 32),
    ("xmlcnn", 670_091, 512, 670),
    ("s1m", 1_000_000, 512, 1_000),
];

/// The serve-sim scenario the equivalence is checked on: a burst
/// overload on a small job, tuned so the controller sheds, walks the
/// degrade ladder, and still completes work — every interesting path.
fn serve_scenario() -> (ClassificationJob, ServeConfig) {
    let job =
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 };
    let cfg = ServeConfig {
        arrival: ArrivalProcess::Burst {
            calm_rate: 0.05,
            burst_rate: 50.0,
            calm_cycles: 20_000.0,
            burst_cycles: 10_000.0,
        },
        requests: 200,
        slo_cycles: 1_500,
        batch_max: 4,
        linger_cycles: 300,
        lanes: 1,
        tiers: vec![
            DegradeTier { candidates: 128, screen_shift: 0 },
            DegradeTier { candidates: 64, screen_shift: 1 },
            DegradeTier { candidates: 32, screen_shift: 2 },
        ],
        degrade_queue_depth: 4,
        upgrade_queue_depth: 1,
        shed_queue_depth: 12,
        seed: 3,
        offload: None,
    };
    (job, cfg)
}

/// The same scenario expressed as a degenerate fleet: one node, one
/// shard, no replication, one tenant carrying the serve config verbatim.
fn degenerate_fleet(cfg: &ServeConfig, placement: PlacementPolicy) -> FleetConfig {
    let mut tenant = TenantConfig::new(
        "t0",
        cfg.arrival.clone(),
        cfg.requests,
        cfg.slo_cycles,
        cfg.tiers.clone(),
        cfg.seed,
    );
    tenant.degrade_queue_depth = cfg.degrade_queue_depth;
    tenant.upgrade_queue_depth = cfg.upgrade_queue_depth;
    tenant.shed_queue_depth = cfg.shed_queue_depth;
    FleetConfig {
        nodes: 1,
        shards: 1,
        replicas: 0,
        placement,
        zipf_s: 0.0,
        batch_max: cfg.batch_max,
        linger_cycles: cfg.linger_cycles,
        lanes: cfg.lanes,
        tenants: vec![tenant],
        seed: cfg.seed,
        ..Default::default()
    }
}

#[test]
fn one_node_one_tenant_fleet_reproduces_serve_sim_bit_for_bit() {
    let sys = SystemModel::table3();
    let (job, cfg) = serve_scenario();
    let mut serve_reg = MetricsRegistry::new();
    let serve = simulate(&sys, &job, &cfg, &SimConfig::sequential(), &mut serve_reg, None);
    // The scenario must exercise shed + degrade or the equivalence is
    // vacuous.
    assert!(serve.shed > 0, "scenario must shed");
    assert!(serve.degrade_transitions > 0, "scenario must walk the ladder");

    for placement in [PlacementPolicy::ConsistentHash, PlacementPolicy::PopularityAware] {
        let fcfg = degenerate_fleet(&cfg, placement);
        let mut fleet_reg = MetricsRegistry::new();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, cfg.seed);
        let fleet = simulate_fleet(
            &sys,
            &job,
            &fcfg,
            &SimConfig::sequential(),
            &mut fleet_reg,
            &mut cost,
        )
        .expect("cycle-accurate backend cannot violate an audit");

        // Aggregate equivalence, field by field.
        let t = &fleet.tenants[0];
        assert_eq!(t.generated, serve.generated, "{placement:?}: generated");
        assert_eq!(t.admitted, serve.admitted, "{placement:?}: admitted");
        assert_eq!(t.completed, serve.completed, "{placement:?}: completed");
        assert_eq!(t.shed, serve.shed, "{placement:?}: shed");
        assert_eq!(t.slo_met, serve.slo_met, "{placement:?}: slo_met");
        assert_eq!(
            t.degrade_transitions, serve.degrade_transitions,
            "{placement:?}: degrade transitions"
        );
        assert_eq!(t.latency, serve.latency, "{placement:?}: latency histogram");
        assert_eq!(t.per_tier_completed, serve.per_tier_completed, "{placement:?}: per-tier");
        assert_eq!(t.per_tier_batches, serve.per_tier_batches, "{placement:?}: tier batches");
        assert_eq!(t.service_cycles, serve.service_cycles, "{placement:?}: service table");
        assert_eq!(fleet.makespan_cycles, serve.makespan_cycles, "{placement:?}: makespan");
        assert_eq!(fleet.ns_per_cycle, serve.ns_per_cycle, "{placement:?}: clock scale");
        assert_eq!(fleet.max_queue_depth, serve.max_queue_depth, "{placement:?}: queue depth");
        assert_eq!(fleet.network_cycles, 0, "{placement:?}: 1 node pays no network");

        // Per-request equivalence: same life for every request id.
        assert_eq!(fleet.requests.len(), serve.requests.len());
        for (i, (f, s)) in fleet.requests.iter().zip(&serve.requests).enumerate() {
            assert_eq!(f.arrival, s.arrival, "request {i} arrival");
            assert_eq!(f.deadline, s.deadline, "request {i} deadline");
            assert_eq!(f.completion, s.completion, "request {i} completion");
            assert_eq!(f.shed, s.shed, "request {i} shed");
        }
        // Per-batch equivalence: same dispatch schedule on the same lane.
        assert_eq!(fleet.batches.len(), serve.batches.len());
        for (i, (f, s)) in fleet.batches.iter().zip(&serve.batches).enumerate() {
            assert_eq!(
                (f.start, f.end, f.size, f.tier, f.lane),
                (s.start, s.end, s.size, s.tier, s.lane),
                "batch {i}"
            );
            assert_eq!(f.node, 0, "batch {i} must run on the only node");
        }
    }
}

#[test]
fn fleet_report_is_byte_identical_across_worker_counts_for_every_paper_shape() {
    let sys = SystemModel::table3();
    for shape in SHAPES {
        let (name, categories, hidden, candidates) = *shape;
        let job = ClassificationJob { categories, hidden, reduced: 32, batch: 1, candidates };
        // A single-tier ladder keeps the calibration pass (the only
        // parallelizable phase) to two sharded runs per worker count; the
        // byte-identity contract is about those runs, not ladder depth.
        let tiers = vec![DegradeTier { candidates, screen_shift: 0 }];
        let tenants = vec![
            TenantConfig::new(
                "t0",
                ArrivalProcess::Poisson { rate: 0.02 },
                12,
                2_000_000,
                tiers.clone(),
                7,
            ),
            TenantConfig::new(
                "t1",
                ArrivalProcess::Poisson { rate: 0.02 },
                12,
                4_000_000,
                tiers.clone(),
                8,
            ),
        ];
        let cfg = FleetConfig {
            nodes: 2,
            shards: 2,
            replicas: 1,
            placement: PlacementPolicy::PopularityAware,
            zipf_s: 1.0,
            batch_max: 2,
            linger_cycles: 2_000,
            lanes: 1,
            tenants,
            seed: 7,
            ..Default::default()
        };
        let mut json = Vec::new();
        for threads in [1usize, 4] {
            let sim = SimConfig::with_threads(threads);
            let mut registry = MetricsRegistry::new();
            let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
            let out = simulate_fleet(&sys, &job, &cfg, &sim, &mut registry, &mut cost)
                .expect("cycle-accurate backend cannot violate an audit");
            json.push(out.report(name, &cfg, &registry).to_json());
        }
        assert_eq!(json[0], json[1], "{name}: fleet report must not depend on worker count");
    }
}
