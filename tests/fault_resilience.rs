//! End-to-end resilience-subsystem tests over the public `fault-sweep`
//! surface: the nominal channel is bit-identical to the fault-free path
//! at any worker count, injected bit errors measurably degrade quality,
//! SEC-DED recovers it, and the quality-vs-refresh-energy frontier is
//! monotone nonincreasing in both axes.

use enmc::cli::FaultShape;
use enmc::resilience::{render_text, run_fault_sweep, FaultSweepArgs};

/// Small-but-representative sweep arguments; tests override what they
/// exercise. 24 queries keeps each sweep point cheap while still giving
/// degradation percentages a visible resolution (1/24 ≈ 4.2%).
fn base_args() -> FaultSweepArgs {
    FaultSweepArgs {
        shape: FaultShape::LstmWikitext2,
        ber: 0.0,
        multipliers: vec![1.0],
        weak_columns: 0.0,
        ecc: false,
        queries: 24,
        seed: 7,
        workers: 1,
        backend: enmc::surrogate::CostBackend::CycleAccurate,
        memory: enmc::mem::MemTech::Ddr4_2666,
        coeffs_in: None,
        coeffs_out: None,
    }
}

#[test]
fn zero_ber_sweep_is_the_fault_free_path_and_worker_invariant() {
    let mut args = base_args();
    let (points, frontier, report) = run_fault_sweep(&args, None).expect("nominal sweep runs");

    // The nominal channel is the identity: nothing flips, nothing is
    // corrupted, nothing needs masking or correcting.
    assert_eq!(points.len(), 1);
    let p = &points[0];
    assert_eq!(p.screener_rows_corrupted, 0);
    assert_eq!(p.weights_rows_corrupted, 0);
    for tier in &p.tiers {
        assert_eq!(tier.fault_top1_flips, 0, "no faults, no flips");
        assert_eq!(tier.corrupted_rows_read, 0);
        assert_eq!(tier.corrupted_rows_masked, 0);
    }
    assert_eq!(p.quality_degradation_pct(), 0.0);
    assert_eq!(report.quality_degradation_pct, 0.0);
    assert_eq!(report.ecc_corrected, 0);
    assert_eq!(report.ecc_uncorrected, 0);
    assert_eq!(report.schema_version, 10);
    // No host timing leaks into the report (that would break the
    // cross-worker byte-identity below).
    assert_eq!(report.threads, 0);

    // Byte-identical at a different worker count: same points, same
    // rendered tables, same serialized report.
    args.workers = 4;
    let (points4, frontier4, report4) = run_fault_sweep(&args, None).expect("parallel sweep runs");
    assert_eq!(points, points4);
    assert_eq!(render_text(&points, &frontier), render_text(&points4, &frontier4));
    assert_eq!(report.to_json(), report4.to_json());
}

#[test]
fn unprotected_bit_errors_degrade_quality_and_secded_recovers_it() {
    let mut args = base_args();
    args.ber = 1e-4;
    let (points, _, report) = run_fault_sweep(&args, None).expect("faulty sweep runs");
    let unprotected = points[0].quality_degradation_pct();
    assert!(
        unprotected > 0.0,
        "1e-4 BER on unprotected FP32 weights must flip some top-1 decisions"
    );
    assert_eq!(report.quality_degradation_pct, unprotected);
    assert_eq!(report.ber, 1e-4);

    args.ecc = true;
    let (points_ecc, _, report_ecc) = run_fault_sweep(&args, None).expect("ECC sweep runs");
    let protected = points_ecc[0].quality_degradation_pct();
    assert!(
        protected < unprotected,
        "SEC-DED must recover quality: {protected}% vs {unprotected}% unprotected"
    );
    assert!(report_ecc.ecc_corrected > 0, "single-bit errors must be corrected");
}

#[test]
fn retention_sweep_frontier_is_monotone_in_both_axes() {
    let mut args = base_args();
    args.multipliers = vec![1.0, 8.0, 32.0, 64.0];
    let (points, frontier, report) = run_fault_sweep(&args, None).expect("retention sweep runs");
    assert_eq!(frontier.len(), 4);
    for w in frontier.windows(2) {
        assert!(
            w[1].top1_agreement <= w[0].top1_agreement,
            "frontier quality must be nonincreasing"
        );
        assert!(
            w[1].refresh_energy_nj <= w[0].refresh_energy_nj,
            "relaxing refresh must not cost refresh energy"
        );
    }
    // The sweep spans enough refresh windows that relaxing the schedule
    // saves real energy, and the retention tail costs real quality.
    assert!(frontier[0].refresh_energy_nj > 0.0);
    assert!(frontier[3].refresh_energy_nj < frontier[0].refresh_energy_nj);
    let worst = points
        .iter()
        .map(|p| p.quality_degradation_pct())
        .fold(0.0f64, f64::max);
    assert!(worst > 0.0, "64x refresh must hit retention failures");
    assert_eq!(report.refresh_multiplier, 64.0);
    assert_eq!(report.quality_degradation_pct, worst);
}
