//! Integration tests for the compiler → ISA → wire-format path.

use enmc::compiler::{
    estimate_candidate_program, lower_full_classification, lower_screening, MemoryLayout,
    TaskDescriptor, Tiling,
};
use enmc::isa::{Instruction, Program};

fn task() -> (TaskDescriptor, MemoryLayout) {
    let task = TaskDescriptor::paper_default(4096, 512, 2);
    let layout = MemoryLayout::for_task(&task);
    (task, layout)
}

#[test]
fn compiled_program_round_trips_the_wire_format() {
    let (task, layout) = task();
    let program = lower_screening(&task, &layout, 256).expect("compiles");
    for inst in program.iter() {
        let frame = inst.encode();
        assert!(frame.is_valid_width(), "{inst:?} exceeds 13 bits");
        assert_eq!(Instruction::decode(&frame).expect("decodes"), *inst);
    }
}

#[test]
fn compiled_program_round_trips_assembly() {
    let (task, layout) = task();
    let program = lower_screening(&task, &layout, 256).expect("compiles");
    let text = program.disassemble();
    let back = Program::parse(&text).expect("parses");
    assert_eq!(back, program);
}

#[test]
fn instruction_counts_match_tiling() {
    let (task, layout) = task();
    let tiling = Tiling::new(&task, 256).expect("tiles");
    let program = lower_screening(&task, &layout, 256).expect("compiles");
    let weight_loads = program
        .iter()
        .filter(|i| matches!(i, Instruction::Ldr { buffer, .. } if *buffer == enmc::isa::BufferId::WeightInt4))
        .count();
    assert_eq!(weight_loads, tiling.screen_tiles * task.batch);
}

#[test]
fn screening_wire_traffic_is_negligible_vs_data_traffic() {
    // The instruction stream must not meaningfully compete with weight
    // traffic on the channel (the design premise of the PRECHARGE hijack).
    let (task, layout) = task();
    let program = lower_screening(&task, &layout, 256).expect("compiles");
    let wire = program.wire_bytes();
    let data = task.screen_weight_bytes();
    assert!(wire * 10 < data, "wire {wire} vs data {data}");
}

#[test]
fn candidate_programs_cover_each_row_exactly() {
    let (task, layout) = task();
    let tiling = Tiling::new(&task, 256).expect("tiles");
    for cand in [0usize, 1, 4095] {
        let p = estimate_candidate_program(&task, &layout, 256, cand).expect("compiles");
        let loads = p.iter().filter(|i| matches!(i, Instruction::Ldr { .. })).count();
        assert_eq!(loads, tiling.tiles_per_row);
        let macs = p.iter().filter(|i| matches!(i, Instruction::MulAddFp32 { .. })).count();
        assert_eq!(macs, tiling.tiles_per_row);
    }
}

#[test]
fn naive_full_program_dwarfs_screening_program() {
    let (task, layout) = task();
    let screen = lower_screening(&task, &layout, 256).expect("compiles");
    let full = lower_full_classification(&task, &layout, 256, 512).expect("compiles");
    // The paper's premise: naive NMP must stream every FP32 row.
    assert!(full.len() > 10 * screen.len(), "{} vs {}", full.len(), screen.len());
}
