//! Golden tune-frontier regression: the `tune-frontier-v1` JSON of one
//! fixed budgeted search over the default small lattice is checked in at
//! `tests/golden/tune_frontier.json`. The fixture must stay byte-stable
//! — same frontier from exhaustive and guided search, at any worker
//! count — and an intentional change is re-blessed with
//! `ENMC_BLESS=1 cargo test --test tune_golden`.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::tune::{
    frontier_json, tune, Budget, SearchMode, TuneConfig, TuneResult, TuneSpace,
};

const GOLDEN: &str = include_str!("golden/tune_frontier.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/tune_frontier.json");

/// The fixed scenario the fixture was produced from: the default small
/// lattice under a 28.3 mm² DIMM-population budget (tight enough to
/// reject the priciest quarter of the lattice), so both the rejection
/// path and the frontier extraction are pinned.
fn golden_scenario() -> (ClassificationJob, TuneConfig) {
    let job =
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 };
    let cfg = TuneConfig {
        space: TuneSpace::small(),
        budget: Budget { max_area_mm2: Some(28.3), max_power_mw: None },
        seed: 7,
        workers: 1,
        mode: SearchMode::Exhaustive,
        ..TuneConfig::default()
    };
    (job, cfg)
}

/// Re-runs the golden scenario exactly as the CLI would and renders its
/// `tune-frontier-v1` fixture (the renderer ends with a newline so the
/// fixture is a POSIX file).
fn current_fixture(mode: SearchMode, workers: usize) -> (TuneResult, String) {
    let (job, mut cfg) = golden_scenario();
    cfg.mode = mode;
    cfg.workers = workers;
    let result = tune(&SystemModel::table3(), &job, &cfg)
        .expect("audited evaluations stay within the surrogate bound");
    let json = frontier_json("golden", result.space_size, &cfg.budget, &result.frontier);
    (result, json)
}

#[test]
fn golden_tune_frontier_is_reproduced_exactly() {
    let (_, json) = current_fixture(SearchMode::Exhaustive, 1);
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        return;
    }
    assert!(
        json == GOLDEN,
        "tune frontier drifted from tests/golden/tune_frontier.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test tune_golden\n--- current ---\n{}",
        json.len(),
        GOLDEN.len(),
        json
    );
}

#[test]
fn guided_search_renders_the_golden_fixture_too() {
    // The fixture deliberately excludes evaluated totals and per-point
    // dominance counts, so the cheaper guided strategy must land on the
    // identical bytes brute force does.
    let (ex, exhaustive) = current_fixture(SearchMode::Exhaustive, 1);
    let (gd, guided) = current_fixture(SearchMode::Guided, 1);
    assert_eq!(guided, exhaustive, "guided search must find the exhaustive frontier");
    assert!(
        gd.evaluated.len() <= ex.evaluated.len(),
        "guided search may not evaluate more designs than brute force"
    );
}

#[test]
fn golden_fixture_is_worker_invariant() {
    let (solo, json1) = current_fixture(SearchMode::Exhaustive, 1);
    let (pool, json4) = current_fixture(SearchMode::Exhaustive, 4);
    assert_eq!(json1, json4, "fixture bytes must not depend on the worker count");
    assert_eq!(solo, pool, "the whole result must be bit-identical at any worker count");
}

#[test]
fn golden_fixture_exercises_the_interesting_paths() {
    assert!(GOLDEN.starts_with("{\n  \"schema\": \"tune-frontier-v1\",\n"));
    assert!(GOLDEN.contains("\"workload\": \"golden\""));
    assert!(GOLDEN.contains("\"max_area_mm2\": 28.300000"), "budget must be pinned in the fixture");
    assert!(GOLDEN.ends_with("}\n"), "fixture is a POSIX file");
    assert!(
        !GOLDEN.contains("evaluated") && !GOLDEN.contains("dominates"),
        "strategy-dependent totals must stay out of the mode-diffed fixture"
    );

    // The fixture's claims match a fresh run of its scenario: the budget
    // actually rejected part of the lattice, evaluation actually
    // happened, and the frontier discarded dominated survivors.
    let (result, _) = current_fixture(SearchMode::Exhaustive, 1);
    assert_eq!(result.space_size, 32, "the default small lattice holds 32 designs");
    assert!(result.rejected > 0, "fixture must exercise budget rejection");
    assert!(!result.frontier.is_empty(), "a non-empty space always has a frontier");
    assert!(result.dominated > 0, "fixture must discard dominated designs");
    assert!(
        result.frontier.len() < result.evaluated.len(),
        "the frontier must be a strict subset of the evaluated designs"
    );
    for p in &result.frontier {
        assert!(
            p.design.cost.area_mm2 <= 28.3,
            "budget-violating design {} on the frontier",
            p.design.point.label()
        );
    }
}
