//! Golden surrogate regression: the schema-v10 `RunReport` of one fixed
//! fault-sweep scenario answered by the *surrogate* cost backend is
//! checked in at `tests/golden/surrogate_report.json`. It pins the v7
//! surrogate fields end to end — backend name, anchor count, audited
//! points, worst bound-normalized audit error — plus the energy join the
//! predictions feed. An intentional change is re-blessed with
//! `ENMC_BLESS=1 cargo test --test surrogate_golden`.

use enmc::cli::FaultShape;
use enmc::obs::report::RunReport;
use enmc::resilience::{run_fault_sweep, FaultSweepArgs};
use enmc::surrogate::{CostBackend, DECLARED_BOUND};

const GOLDEN: &str = include_str!("golden/surrogate_report.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/surrogate_report.json");

/// The fixed scenario the fixture was produced from: the same sweep as
/// the fault golden but with every energy join predicted by the
/// surrogate and audited (rate 1.0), so any drift in the DoE plan, the
/// fit, the prediction arithmetic, or the audit accounting moves bytes.
fn golden_args() -> FaultSweepArgs {
    FaultSweepArgs {
        shape: FaultShape::LstmWikitext2,
        ber: 1e-4,
        multipliers: vec![1.0, 32.0],
        weak_columns: 0.0,
        ecc: true,
        queries: 16,
        seed: 7,
        workers: 1,
        backend: CostBackend::Surrogate { audit_rate: 1.0 },
        memory: enmc::mem::MemTech::Ddr4_2666,
        coeffs_in: None,
        coeffs_out: None,
    }
}

/// Re-runs the golden scenario exactly as the CLI would and renders its
/// schema-v10 report (trailing newline so the fixture is a POSIX file).
fn current_report() -> String {
    let (_, _, report) = run_fault_sweep(&golden_args(), None).expect("golden sweep runs");
    format!("{}\n", report.to_json())
}

#[test]
fn golden_surrogate_report_is_reproduced_exactly() {
    let json = current_report();
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        return;
    }
    assert!(
        json == GOLDEN,
        "surrogate report drifted from tests/golden/surrogate_report.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test surrogate_golden\n--- current ---\n{}",
        json.len(),
        GOLDEN.len(),
        json
    );
}

#[test]
fn golden_fixture_parses_and_pins_the_surrogate_fields() {
    let report = RunReport::from_json(GOLDEN.trim_end()).expect("fixture parses");
    assert_eq!(report.schema_version, 10);
    assert_eq!(report.command, "fault-sweep");
    assert_eq!(report.cost_backend, "surrogate");
    assert!(report.fit_anchors > 0, "fixture must record the fit's anchor simulations");
    assert_eq!(report.audit_points, 2, "audit rate 1.0 audits both sweep points");
    assert!(
        report.audit_max_rel_err > 0.0 && report.audit_max_rel_err <= DECLARED_BOUND.rel,
        "audit error must be recorded and within the declared bound, got {}",
        report.audit_max_rel_err
    );
    assert_eq!(report.threads, 0, "no host timing in worker-invariant reports");
}
