//! Golden serving-report regression: the schema-v9 `RunReport` of one
//! fixed burst scenario is checked in at `tests/golden/serve_report.json`.
//! The report's byte output — headline numbers, v4 serving fields,
//! metrics snapshot, notes — must stay stable; an intentional change is
//! re-blessed with `ENMC_BLESS=1 cargo test --test serve_golden`.

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::obs::report::RunReport;
use enmc::obs::MetricsRegistry;
use enmc::par::SimConfig;
use enmc::serve::{simulate, ArrivalProcess, DegradeTier, ServeConfig, ServeOutcome};

const GOLDEN: &str = include_str!("golden/serve_report.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_report.json");

/// The fixed scenario the fixture was produced from: a burst overload on
/// a small job, tuned so the controller both sheds and walks the degrade
/// ladder (the interesting code paths) while p99 stays under the SLO.
fn golden_scenario() -> (ClassificationJob, ServeConfig) {
    let job =
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 };
    let cfg = ServeConfig {
        arrival: ArrivalProcess::Burst {
            calm_rate: 0.05,
            burst_rate: 50.0,
            calm_cycles: 20_000.0,
            burst_cycles: 10_000.0,
        },
        requests: 200,
        slo_cycles: 1_500,
        batch_max: 4,
        linger_cycles: 300,
        lanes: 1,
        tiers: vec![
            DegradeTier { candidates: 128, screen_shift: 0 },
            DegradeTier { candidates: 64, screen_shift: 1 },
            DegradeTier { candidates: 32, screen_shift: 2 },
        ],
        degrade_queue_depth: 4,
        upgrade_queue_depth: 1,
        shed_queue_depth: 12,
        seed: 3,
        offload: None,
    };
    (job, cfg)
}

/// Re-runs the golden scenario exactly as the CLI would and renders its
/// schema-v9 report (trailing newline so the fixture is a POSIX file).
fn current_report() -> (ServeOutcome, String) {
    let (job, cfg) = golden_scenario();
    let mut registry = MetricsRegistry::new();
    let out =
        simulate(&SystemModel::table3(), &job, &cfg, &SimConfig::sequential(), &mut registry, None);
    let json = format!("{}\n", out.report("golden", &cfg, &registry).to_json());
    (out, json)
}

#[test]
fn golden_serve_report_is_reproduced_exactly() {
    let (_, json) = current_report();
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        return;
    }
    assert!(
        json == GOLDEN,
        "serving report drifted from tests/golden/serve_report.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test serve_golden\n--- current ---\n{}",
        json.len(),
        GOLDEN.len(),
        json
    );
}

#[test]
fn golden_fixture_parses_and_exercises_the_interesting_paths() {
    let report = RunReport::from_json(GOLDEN.trim_end()).expect("fixture parses");
    assert_eq!(report.schema_version, 10);
    assert_eq!(report.command, "serve-sim");
    assert!(report.shed > 0, "fixture must shed");
    assert!(report.degrade_transitions > 0, "fixture must walk the degrade ladder");
    assert!(report.slo_attainment > 0.9, "fixture must mostly meet its SLO");
    assert!(report.p99_ns > 0.0);
    assert_eq!(report.protocol_violations, 0);

    // The fixture's claims match a fresh run of its scenario.
    let (out, _) = current_report();
    assert_eq!(report.shed, out.shed);
    assert_eq!(report.degrade_transitions, out.degrade_transitions);
    let slo_cycles = golden_scenario().1.slo_cycles as f64;
    assert!(
        out.latency.p99() <= slo_cycles,
        "p99 {} cycles must stay under the {} cycle SLO",
        out.latency.p99(),
        slo_cycles
    );
}
