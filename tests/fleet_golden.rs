//! Golden fleet-report regression: the schema-v9 `RunReport` of one
//! fixed two-tenant contention scenario is checked in at
//! `tests/golden/fleet_report.json`. The report's byte output — the v8
//! fleet fields, per-tenant rows, metrics snapshot, notes — must stay
//! stable; an intentional change is re-blessed with
//! `ENMC_BLESS=1 cargo test --test fleet_golden`.
//!
//! The fixture runs on the **surrogate** cost backend with the audit
//! lottery at 100%, so every calibration point is re-simulated
//! cycle-accurately and the fixture doubles as a pinned end-to-end audit
//! pass (`audit_points > 0`, within bound, or the run would have failed).

use enmc::arch::system::{ClassificationJob, SystemModel};
use enmc::fleet::{simulate_fleet, FleetConfig, FleetOutcome, PlacementPolicy, TenantConfig};
use enmc::obs::report::RunReport;
use enmc::obs::MetricsRegistry;
use enmc::par::SimConfig;
use enmc::serve::tier::DegradeTier;
use enmc::serve::ArrivalProcess;
use enmc::surrogate::{CostBackend, CostModel};

const GOLDEN: &str = include_str!("golden/fleet_report.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fleet_report.json");

/// The fixed scenario: two tenants contending for a 2-node fleet. Tenant
/// t0 (high priority, deep shed queue) must lose nothing; tenant t1
/// (low priority, shallow shed queue, heavier traffic) must shed — the
/// asymmetry the admission controller exists to produce.
fn golden_scenario() -> (ClassificationJob, FleetConfig) {
    let job =
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 };
    let tiers = vec![
        DegradeTier { candidates: 128, screen_shift: 0 },
        DegradeTier { candidates: 64, screen_shift: 1 },
    ];
    let mut t0 = TenantConfig::new(
        "t0",
        ArrivalProcess::Poisson { rate: 0.2 },
        48,
        30_000,
        tiers.clone(),
        11,
    );
    t0.shed_queue_depth = 64;
    let mut t1 = TenantConfig::new(
        "t1",
        ArrivalProcess::Burst {
            calm_rate: 0.05,
            burst_rate: 40.0,
            calm_cycles: 20_000.0,
            burst_cycles: 10_000.0,
        },
        96,
        60_000,
        tiers,
        12,
    );
    t1.shed_queue_depth = 6;
    let cfg = FleetConfig {
        nodes: 2,
        shards: 2,
        replicas: 1,
        placement: PlacementPolicy::PopularityAware,
        zipf_s: 1.0,
        batch_max: 3,
        linger_cycles: 500,
        lanes: 1,
        tenants: vec![t0, t1],
        seed: 7,
        ..Default::default()
    };
    (job, cfg)
}

/// Re-runs the golden scenario exactly as the CLI would — surrogate
/// backend, every prediction audited — and renders its schema-v9 report
/// (trailing newline so the fixture is a POSIX file).
fn current_report() -> (FleetOutcome, String) {
    let (job, cfg) = golden_scenario();
    let mut registry = MetricsRegistry::new();
    let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, cfg.seed);
    let out = simulate_fleet(
        &SystemModel::table3(),
        &job,
        &cfg,
        &SimConfig::sequential(),
        &mut registry,
        &mut cost,
    )
    .expect("every audited calibration point must stay within the surrogate bound");
    let json = format!("{}\n", out.report("golden", &cfg, &registry).to_json());
    (out, json)
}

#[test]
fn golden_fleet_report_is_reproduced_exactly() {
    let (_, json) = current_report();
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        return;
    }
    assert!(
        json == GOLDEN,
        "fleet report drifted from tests/golden/fleet_report.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test fleet_golden\n--- current ---\n{}",
        json.len(),
        GOLDEN.len(),
        json
    );
}

#[test]
fn golden_fixture_parses_and_pins_the_fleet_fields() {
    let report = RunReport::from_json(GOLDEN.trim_end()).expect("fixture parses");
    assert_eq!(report.schema_version, 10);
    assert_eq!(report.command, "fleet-sim");
    assert_eq!(report.nodes, 2);
    assert_eq!(report.placement, "popularity");
    assert_eq!(report.hot_shard_replicas, 1);
    assert!(report.network_share > 0.0, "a 2-node fleet must pay the interconnect");

    // The priority asymmetry: only the low-priority tenant sheds.
    assert_eq!(report.tenants.len(), 2);
    assert_eq!(report.tenants[0].name, "t0");
    assert_eq!(report.tenants[0].shed, 0, "high-priority tenant must lose nothing");
    assert!(report.tenants[1].shed > 0, "low-priority tenant must shed under contention");
    assert!(report.tenants[0].slo_attainment > 0.9, "t0 must mostly meet its SLO");
    for row in &report.tenants {
        assert!(row.p99_ns > 0.0, "{} p99", row.name);
        assert_eq!(row.admitted, row.completed, "{} queue must drain", row.name);
    }

    // The surrogate ran and the audit lottery exercised it end to end.
    assert_eq!(report.cost_backend, "surrogate");
    assert!(report.fit_anchors > 0, "surrogate must have fitted anchors");
    assert!(report.audit_points > 0, "the 100% audit lottery must have fired");
    assert!(report.audit_max_rel_err >= 0.0);
    assert_eq!(report.protocol_violations, 0);

    // The fixture's claims match a fresh run of its scenario.
    let (out, _) = current_report();
    assert_eq!(report.shed, out.tenants.iter().map(|t| t.shed).sum::<u64>());
    assert_eq!(
        report.degrade_transitions,
        out.tenants.iter().map(|t| t.degrade_transitions).sum::<u64>()
    );
    assert_eq!(report.audit_points, out.audit_points);
}
