//! Golden fault-sweep regression: the schema-v10 `RunReport` of one fixed
//! resilience scenario is checked in at `tests/golden/fault_report.json`.
//! The report's byte output — v5 fault fields, metrics snapshot, notes —
//! must stay stable; an intentional change is re-blessed with
//! `ENMC_BLESS=1 cargo test --test fault_golden`.

use enmc::cli::FaultShape;
use enmc::obs::report::RunReport;
use enmc::resilience::{run_fault_sweep, FaultSweepArgs};

const GOLDEN: &str = include_str!("golden/fault_report.json");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fault_report.json");

/// The fixed scenario the fixture was produced from: a light uniform BER
/// with SEC-DED on and one relaxed-refresh point, so the fixture pins
/// every interesting path at once — injection, correction, retention
/// failures, and the energy join.
fn golden_args() -> FaultSweepArgs {
    FaultSweepArgs {
        shape: FaultShape::LstmWikitext2,
        ber: 1e-4,
        multipliers: vec![1.0, 32.0],
        weak_columns: 0.0,
        ecc: true,
        queries: 16,
        seed: 7,
        workers: 1,
        backend: enmc::surrogate::CostBackend::CycleAccurate,
        memory: enmc::mem::MemTech::Ddr4_2666,
        coeffs_in: None,
        coeffs_out: None,
    }
}

/// Re-runs the golden scenario exactly as the CLI would and renders its
/// schema-v10 report (trailing newline so the fixture is a POSIX file).
fn current_report() -> String {
    let (_, _, report) = run_fault_sweep(&golden_args(), None).expect("golden sweep runs");
    format!("{}\n", report.to_json())
}

#[test]
fn golden_fault_report_is_reproduced_exactly() {
    let json = current_report();
    if std::env::var_os("ENMC_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden fixture");
        return;
    }
    assert!(
        json == GOLDEN,
        "fault report drifted from tests/golden/fault_report.json \
         ({} vs {} bytes); if the change is intentional, re-bless with \
         ENMC_BLESS=1 cargo test --test fault_golden\n--- current ---\n{}",
        json.len(),
        GOLDEN.len(),
        json
    );
}

#[test]
fn golden_fixture_parses_and_pins_the_fault_fields() {
    let report = RunReport::from_json(GOLDEN.trim_end()).expect("fixture parses");
    assert_eq!(report.schema_version, 10);
    assert_eq!(report.command, "fault-sweep");
    assert_eq!(report.workload, "lstm-wikitext2");
    assert_eq!(report.memory_tech, "ddr4-2666");
    assert_eq!(report.ber_scale, 1.0);
    assert_eq!(report.ber, 1e-4);
    assert_eq!(report.refresh_multiplier, 32.0);
    assert!(report.ecc_corrected > 0, "fixture must exercise SEC-DED correction");
    assert_eq!(report.threads, 0, "no host timing in worker-invariant reports");
    assert!(
        report.metrics.gauges.iter().any(|g| g.name.starts_with("fault.")),
        "fixture must carry the fault metrics snapshot"
    );
}
