//! Sequence-level decoding: run whole sentences through the approximate
//! classifier and measure the strictest BLEU proxy — the fraction of
//! sentences decoded *identically* to full classification — plus the
//! projected per-sentence latency on the ENMC DIMM vs the CPU.
//!
//! ```sh
//! cargo run --release --example sequence_decoding
//! ```

use enmc::arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc::model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc::model::trace::{generate_traces, score_traces};
use enmc::screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc::screen::screener::{Screener, ScreenerConfig};
use enmc::screen::train::fit_least_squares;
use enmc::tensor::quant::Precision;

fn main() -> Result<(), String> {
    let vocab = 5_000;
    let hidden = 128;
    let synth = SyntheticClassifier::generate(&SynthesisConfig {
        categories: vocab,
        hidden,
        clusters: 40,
        row_noise: 0.4,
        zipf_exponent: 1.0,
        bias_scale: 1.0,
        query_signal: 2.2,
        seed: 2021,
    })?;

    let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 11 };
    let mut screener = Screener::new(vocab, hidden, &cfg).map_err(|e| e.to_string())?;
    let train: Vec<_> =
        synth.sample_queries_seeded(192, 7).into_iter().map(|q| q.hidden).collect();
    fit_least_squares(&mut screener, synth.weights(), synth.bias(), &train, 1e-4);
    let candidates = vocab / 25; // 4% exact budget
    let mut clf = ApproxClassifier::new(
        synth.weights().clone(),
        synth.bias().clone(),
        screener,
        SelectionPolicy::TopM(candidates),
    )
    .map_err(|e| e.to_string())?;

    // 30 sentences × 16 decoding steps with topical locality.
    let sentences = 30;
    let steps = 16;
    let traces = generate_traces(&synth, sentences, steps, 0.7, 99);
    let report = score_traces(&synth, &traces, |h| clf.classify(h).logits);

    println!("decoded {sentences} sentences x {steps} steps with {candidates} exact candidates/step:");
    println!("  per-step word agreement  : {:.1}%", 100.0 * report.step_agreement);
    println!("  sentences decoded exactly: {:.1}%", 100.0 * report.exact_sentences);
    println!("  perplexity ratio         : {:.3}", report.perplexity_ratio);

    // Latency projection: one classification per decoding step.
    let sys = SystemModel::table3();
    let job = ClassificationJob {
        categories: vocab,
        hidden,
        reduced: clf.screener().reduced_dim(),
        batch: 1,
        candidates,
    };
    let cpu_step = sys.run(&job, Scheme::CpuFull).ns;
    let enmc_step = sys.run(&job, Scheme::Enmc).ns;
    println!("\nper-sentence classification latency ({steps} steps):");
    println!("  CPU full classification: {:>8.1} us", steps as f64 * cpu_step / 1e3);
    println!("  ENMC                   : {:>8.1} us", steps as f64 * enmc_step / 1e3);
    println!("  speedup                : {:.1}x", cpu_step / enmc_step);
    Ok(())
}
