//! A tour of the ENMC DIMM's software interface: compile a classification
//! task into the instruction set, inspect the PRECHARGE-frame encoding,
//! and simulate the rank-unit executing the job.
//!
//! ```sh
//! cargo run --release --example isa_tour
//! ```

use enmc::arch::config::EnmcConfig;
use enmc::arch::unit::{RankJob, RankUnit, UnitParams};
use enmc::compiler::{lower_screening, MemoryLayout, TaskDescriptor};
use enmc::isa::asm::disassemble;
use enmc::isa::Instruction;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The classification task one rank of the Transformer-W268K workload
    // sees: 268K categories partitioned over 64 ranks.
    let task = TaskDescriptor::paper_default(267_744 / 64, 512, 1);
    let layout = MemoryLayout::for_task(&task);
    println!("memory layout on the rank:");
    println!("  screening weights @ {:#010x}", layout.screen_weights);
    println!("  full classifier   @ {:#010x}", layout.classifier);
    println!("  features          @ {:#010x}", layout.features);
    println!("  outputs           @ {:#010x}", layout.outputs);

    // Compile the screening phase into the ENMC instruction stream.
    let program = lower_screening(&task, &layout, 256)?;
    let stats = program.stats();
    println!("\ncompiled screening program:");
    println!("  {} instructions ({} compute, {} transfer, {} control)",
        stats.total, stats.compute, stats.transfer, stats.control);
    println!("  {} carry DQ payloads; {} bytes on the wire",
        stats.with_data, program.wire_bytes());

    println!("\nfirst 12 instructions:");
    for inst in program.iter().take(12) {
        let frame = inst.encode();
        let data = frame
            .data
            .map(|d| format!(" + DQ {d:#x}"))
            .unwrap_or_default();
        println!("  {:<36} -> A0-A12 {:#06x}{}", disassemble(inst), frame.command, data);
    }

    // Round-trip through the wire format to prove losslessness.
    for inst in program.iter() {
        let decoded = Instruction::decode(&inst.encode())?;
        assert_eq!(decoded, *inst);
    }
    println!("\nall {} frames decode back to the same instructions", program.len());

    // Simulate the rank-unit executing this job (screening + ~2% exact
    // candidates), against the cycle-level DRAM model.
    let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
    let job = RankJob {
        categories: task.categories,
        hidden: task.hidden,
        reduced: task.reduced,
        batch: 1,
        candidates_per_item: vec![task.categories / 50],
    };
    let r = unit.simulate(&job);
    println!("\nrank-unit simulation:");
    println!("  {} DRAM cycles = {:.2} us", r.dram_cycles, r.ns / 1e3);
    println!("  screening traffic: {} KiB, exact traffic: {} KiB",
        r.screen_bytes / 1024, r.exact_bytes / 1024);
    println!("  row-hit rate {:.1}%, bus utilization {:.1}%",
        100.0 * r.dram.row_hit_rate(), 100.0 * r.dram.bus_utilization());
    Ok(())
}
