//! Recommendation scenario (the paper's Amazon-670K workload): multi-label
//! top-k product retrieval with the hardware FILTER path — a threshold
//! calibrated on a validation set instead of exact top-m search.
//!
//! ```sh
//! cargo run --release --example recommendation
//! ```

use enmc::model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc::screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc::screen::screener::{Screener, ScreenerConfig};
use enmc::screen::train::fit_least_squares;
use enmc::tensor::quant::Precision;
use enmc::tensor::select::{calibrate_threshold, top_k_indices};

fn main() -> Result<(), String> {
    // An Amazon-670K-like catalogue slice: many categories, flat
    // popularity, broad cluster structure.
    let catalogue = 8_000;
    let hidden = 160;
    let synth = SyntheticClassifier::generate(&SynthesisConfig {
        categories: catalogue,
        hidden,
        clusters: 96,
        row_noise: 0.5,
        zipf_exponent: 0.9,
        bias_scale: 1.0,
        query_signal: 1.9,
        seed: 670,
    })?;

    let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 5 };
    let mut screener = Screener::new(catalogue, hidden, &cfg).map_err(|e| e.to_string())?;
    let train: Vec<_> =
        synth.sample_queries_seeded(256, 42).into_iter().map(|q| q.hidden).collect();
    fit_least_squares(&mut screener, synth.weights(), synth.bias(), &train, 1e-4);

    // Calibrate the FILTER threshold on a held-out validation set so the
    // comparator array admits ~200 candidates per query (paper §4.2: "the
    // threshold value can be tuned on validation sets").
    let mut calib_screener = screener.clone();
    let validation: Vec<Vec<f32>> = synth
        .sample_queries_seeded(64, 4242)
        .iter()
        .map(|q| calib_screener.screen(&q.hidden).into_inner())
        .collect();
    let target_candidates = 200;
    let threshold = calibrate_threshold(&validation, target_candidates);
    println!("calibrated FILTER threshold: {threshold:.4} (target {target_candidates} candidates)");

    let mut clf = ApproxClassifier::new(
        synth.weights().clone(),
        synth.bias().clone(),
        screener,
        SelectionPolicy::Threshold(threshold),
    )
    .map_err(|e| e.to_string())?;

    // Serve 50 users: retrieve top-10 products, score against the exact
    // classifier's top-10.
    let users = synth.sample_queries_seeded(50, 999);
    let mut p_at_10 = 0.0;
    let mut candidate_total = 0usize;
    for user in &users {
        let exact = synth.full_logits(&user.hidden);
        let out = clf.classify(&user.hidden);
        candidate_total += out.candidates.len();
        let want: std::collections::HashSet<usize> =
            top_k_indices(exact.as_slice(), 10).into_iter().collect();
        let got = top_k_indices(out.logits.as_slice(), 10);
        p_at_10 += got.iter().filter(|i| want.contains(i)).count() as f64 / 10.0;
    }
    let n = users.len() as f64;
    println!("\nserved {} users:", users.len());
    println!("  precision@10 vs exact retrieval: {:.1}%", 100.0 * p_at_10 / n);
    println!(
        "  mean candidates admitted by FILTER: {:.0} of {} ({:.2}%)",
        candidate_total as f64 / n,
        catalogue,
        100.0 * candidate_total as f64 / n / catalogue as f64
    );
    println!(
        "  exact-compute reduction vs full classification: {:.0}x",
        catalogue as f64 / (candidate_total as f64 / n)
    );
    Ok(())
}
