//! Language-modeling scenario (the paper's Wikitext workloads): a greedy
//! decoding loop where every step runs extreme classification over the
//! vocabulary, comparing full vs approximate screening step by step.
//!
//! ```sh
//! cargo run --release --example language_model
//! ```

use enmc::model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc::screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc::screen::screener::{Screener, ScreenerConfig};
use enmc::screen::train::{train_sgd, TrainConfig};
use enmc::tensor::activation::neg_log_prob;
use enmc::tensor::quant::Precision;
use enmc::tensor::select::top_k_indices;

fn main() -> Result<(), String> {
    // A Wikitext-2-like vocabulary slice: 6K words, wide hidden state.
    let vocab = 6_000;
    let hidden = 192;
    let synth = SyntheticClassifier::generate(&SynthesisConfig {
        categories: vocab,
        hidden,
        clusters: 48,
        row_noise: 0.4,
        zipf_exponent: 1.0,
        bias_scale: 1.0,
        query_signal: 2.2,
        seed: 33,
    })?;

    // Distill the screener with the paper's SGD loop (Algorithm 1) this
    // time, rather than the closed-form fit.
    let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 7 };
    let mut screener = Screener::new(vocab, hidden, &cfg).map_err(|e| e.to_string())?;
    let train: Vec<_> =
        synth.sample_queries_seeded(256, 1234).into_iter().map(|q| q.hidden).collect();
    let report = train_sgd(
        &mut screener,
        synth.weights(),
        synth.bias(),
        &train,
        &TrainConfig { epochs: 8, batch_size: 16, learning_rate: 0.08, lr_decay: 0.85 },
    );
    println!("screener distillation (Algorithm 1):");
    for (i, loss) in report.epoch_losses.iter().enumerate() {
        println!("  epoch {i}: MSE {loss:.5}");
    }
    assert!(report.converged(), "distillation should converge");

    let mut clf = ApproxClassifier::new(
        synth.weights().clone(),
        synth.bias().clone(),
        screener,
        SelectionPolicy::TopM(300),
    )
    .map_err(|e| e.to_string())?;

    // Greedy "decoding": each step classifies a hidden state into the
    // vocabulary; we compare the chosen word and the target's perplexity.
    let steps = synth.sample_queries_seeded(40, 77);
    let mut agree = 0usize;
    let mut nlp_full = 0.0;
    let mut nlp_approx = 0.0;
    for step in &steps {
        let full = synth.full_logits(&step.hidden);
        let out = clf.classify(&step.hidden);
        let w_full = top_k_indices(full.as_slice(), 1)[0];
        let w_approx = top_k_indices(out.logits.as_slice(), 1)[0];
        if w_full == w_approx {
            agree += 1;
        }
        nlp_full += neg_log_prob(full.as_slice(), step.target);
        nlp_approx += neg_log_prob(out.logits.as_slice(), step.target);
    }
    let n = steps.len() as f64;
    println!("\ngreedy decoding over {} steps:", steps.len());
    println!("  word agreement (BLEU proxy): {:.1}%", 100.0 * agree as f64 / n);
    println!("  perplexity, full  : {:.2}", (nlp_full / n).exp());
    println!("  perplexity, approx: {:.2}", (nlp_approx / n).exp());
    println!(
        "  candidates computed exactly per step: {} of {} ({:.1}%)",
        300,
        vocab,
        100.0 * 300.0 / vocab as f64
    );
    Ok(())
}
