//! Quickstart: build an approximate-screening classifier, check that its
//! output matches full classification, and project the hardware speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use enmc::arch::system::Scheme;
use enmc::pipeline::{Pipeline, PipelineConfig};

fn main() -> Result<(), String> {
    // 1. Build: synthesize an extreme classifier (8K categories), distill
    //    the screening module from it, and wrap both behind one API.
    let config = PipelineConfig {
        categories: 8_192,
        hidden: 128,
        candidates: 160, // ~2% of categories computed exactly
        train_queries: 128,
        seed: 2021,
        ..Default::default()
    };
    let mut pipeline = Pipeline::build(&config)?;
    println!(
        "built pipeline: {} categories, hidden {}, screener k={} at {}",
        config.categories,
        config.hidden,
        pipeline.classifier().screener().reduced_dim(),
        pipeline.classifier().screener().precision(),
    );

    // 2. Quality: classify 100 fresh queries approximately and compare
    //    with exact full classification on the same queries.
    let quality = pipeline.evaluate_quality(100);
    println!("\nquality vs full classification over {} queries:", quality.queries);
    println!("  top-1 agreement : {:.1}%", 100.0 * quality.top1_agreement);
    println!("  precision@10    : {:.1}%", 100.0 * quality.precision_at_k);
    println!("  perplexity ratio: {:.3} (1.0 = lossless)", quality.perplexity_ratio());

    // 3. Performance: simulate the same job on the CPU baseline and on
    //    the ENMC DIMM (cycle-level DRAM + rank-unit model).
    let cpu = pipeline.simulate(Scheme::CpuFull, 1);
    let cpu_screened = pipeline.simulate(Scheme::CpuScreened, 1);
    let enmc = pipeline.simulate_enmc();
    println!("\nprojected latency per query batch:");
    println!("  CPU, full classification : {:>10.1} us", cpu.ns / 1e3);
    println!("  CPU + screening          : {:>10.1} us", cpu_screened.ns / 1e3);
    println!("  ENMC DIMM                : {:>10.1} us", enmc.ns / 1e3);
    println!("\nspeedups over CPU-full:");
    println!("  screening alone: {:.1}x", enmc_speedup(&cpu, &cpu_screened));
    println!("  ENMC co-design : {:.1}x", enmc_speedup(&cpu, &enmc));
    if let Some(e) = &enmc.energy {
        println!(
            "\nENMC energy: {:.2} uJ (static {:.0}%, access {:.0}%, logic {:.0}%)",
            e.total_nj() / 1e3,
            100.0 * e.dram_static_nj / e.total_nj(),
            100.0 * e.dram_access_nj / e.total_nj(),
            100.0 * e.logic_nj / e.total_nj()
        );
    }
    Ok(())
}

fn enmc_speedup(
    baseline: &enmc::arch::system::SchemeResult,
    fast: &enmc::arch::system::SchemeResult,
) -> f64 {
    fast.speedup_over(baseline)
}
