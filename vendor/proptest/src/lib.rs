//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's property tests use, on top of the vendored
//! deterministic `rand`. Cases are generated from a fixed seed (test
//! function name × case index), so failures reproduce exactly across
//! runs and machines. No shrinking: a failing case panics with the
//! generated inputs visible in the assertion message.
//!
//! The number of cases per property defaults to [`DEFAULT_CASES`] and can
//! be overridden per block with `ProptestConfig::with_cases` or globally
//! with the `PROPTEST_CASES` environment variable (the variable wins).
//!
//! `<file>.proptest-regressions` files written by upstream proptest are
//! honoured: every persisted `cc <hex>` entry is replayed as an extra
//! case *before* the novel ones, exactly as upstream does. This stub's
//! PRNG stream differs from upstream's, so the hex seed cannot reproduce
//! the original inputs bit-for-bit; instead each entry is hashed into a
//! deterministic extra-case seed, which keeps the file load-bearing (a
//! stale or malformed file fails loudly) without pretending to replay the
//! exact upstream case. Tests that need the literal shrunken inputs back
//! should pin them in a plain `#[test]` next to the property.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Cases per property when the block does not configure its own count.
pub const DEFAULT_CASES: u32 = 32;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

/// The generator handed to strategies; a thin deterministic PRNG.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator for `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name keeps streams distinct between properties.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ 0x70e5_7e57))
    }

    /// A generator replaying one persisted regression seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// Loads the regression seeds for property `name` declared in
/// `source_file` (the `file!()` of the `proptest!` invocation).
///
/// Looks for `<source_file stem>.proptest-regressions` — the path upstream
/// proptest persists failures to — relative to the test binary's working
/// directory (the package root under cargo, which matches `file!()` for
/// the workspace-root package). A missing file is fine; a present file
/// with an entry that is not `cc <hex>` panics, so a typo cannot silently
/// disable a checked-in regression.
pub fn regression_seeds(source_file: &str, name: &str) -> Vec<u64> {
    let Some(stem) = source_file.strip_suffix(".rs") else {
        return Vec::new();
    };
    let path = format!("{stem}.proptest-regressions");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some("cc"), Some(hex), None)
                if !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit()) =>
            {
                // Hash (property name, persisted seed) into the replay
                // seed; distinct entries become distinct extra cases.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes().chain(hex.bytes()) {
                    h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
                }
                seeds.push(h);
            }
            _ => panic!(
                "{path}:{}: malformed proptest regression entry {raw:?} \
                 (expected `cc <hex seed>`); fix or regenerate the file",
                lineno + 1
            ),
        }
    }
    seeds
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var, else the config.
pub fn resolve_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
        .max(1)
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::TestRng;
    use rand::{FromRandom, Rng, SampleRange};

    /// Maximum rejections [`Strategy::prop_filter`] tolerates per value.
    const MAX_FILTER_TRIES: usize = 10_000;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, regenerating until one passes.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason, pred }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe view of a strategy (for [`BoxedStrategy`]).
    pub trait DynStrategy {
        /// The generated type.
        type Value;

        /// Generates one value through the erased strategy.
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().dyn_generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_TRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter gave up: {}", self.reason);
        }
    }

    /// Uniform draw over a half-open range.
    impl<T> Strategy for core::ops::Range<T>
    where
        T: Clone,
        core::ops::Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.clone().sample_from(rng)
        }
    }

    /// Full-domain draw (rand's standard distribution).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: FromRandom> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random()
        }
    }

    /// The strategy behind `any::<T>()`.
    pub fn any<T: FromRandom>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Uniformly picks one of several boxed strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.random_range(0..self.0.len());
            self.0[i].generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.random_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` macro and typical tests need.

    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Declares deterministic property tests.
///
/// Supports the subset of upstream syntax the workspace uses: an optional
/// leading `#![proptest_config(<expr>)]`, then `#[test]` functions whose
/// arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Persisted regressions replay before any novel cases.
                for seed in $crate::regression_seeds(file!(), stringify!($name)) {
                    let mut rng = $crate::TestRng::from_seed(seed);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
                let cases = $crate::resolve_cases(&$cfg);
                for case in 0..cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniformly picks one arm's strategy per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ( $($arm:expr),+ $(,)? ) => {
        $crate::strategy::Union(vec![ $( $crate::strategy::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0u8..8, 1..9)) {
            prop_assert!((1..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 8));
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![
            Just(Shape::Dot),
            (0u8..4).prop_map(Shape::Line),
        ]) {
            match s {
                Shape::Dot => {}
                Shape::Line(w) => prop_assert!(w < 4),
            }
        }

        #[test]
        fn tuples_and_any(pair in (0u8..4, any::<u64>())) {
            prop_assert!(pair.0 < 4);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x", 0);
        let mut b = crate::TestRng::for_case("x", 0);
        let sa: u64 = rand::Rng::random(&mut a);
        let sb: u64 = rand::Rng::random(&mut b);
        assert_eq!(sa, sb);
        let mut c = crate::TestRng::for_case("y", 0);
        let sc: u64 = rand::Rng::random(&mut c);
        assert_ne!(sa, sc);
    }

    #[test]
    fn regression_files_parse_and_hash_deterministically() {
        let stem = std::env::temp_dir().join(format!("proptest_stub_ok_{}", std::process::id()));
        let src = format!("{}.rs", stem.display());
        let path = format!("{}.proptest-regressions", stem.display());
        std::fs::write(&path, "# header comment\n\ncc deadbeef # shrinks to x = 1\ncc 0123abc\n")
            .unwrap();
        let a = crate::regression_seeds(&src, "prop_a");
        let b = crate::regression_seeds(&src, "prop_a");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(a, b, "replay seeds must be deterministic");
        assert_eq!(a.len(), 2, "one seed per cc entry");
        assert_ne!(a[0], a[1], "entries hash to distinct seeds");
        assert!(crate::regression_seeds("no/such/file.rs", "p").is_empty());
    }

    #[test]
    #[should_panic(expected = "malformed proptest regression entry")]
    fn malformed_regression_entries_panic() {
        let stem = std::env::temp_dir().join(format!("proptest_stub_bad_{}", std::process::id()));
        let src = format!("{}.rs", stem.display());
        let path = format!("{}.proptest-regressions", stem.display());
        std::fs::write(&path, "cc not-hex-at-all\n").unwrap();
        let result = std::panic::catch_unwind(|| crate::regression_seeds(&src, "p"));
        std::fs::remove_file(&path).unwrap();
        if let Err(payload) = result {
            // Re-raise the expected panic (with its message) after cleanup.
            std::panic::resume_unwind(payload);
        }
    }

    #[test]
    fn filter_retries_until_accepted() {
        let strat = (0u8..10).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::TestRng::for_case("filter", 1);
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
