//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use — `Criterion`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warmup followed by `sample_size` timed iterations and prints the
//! mean wall time (plus derived throughput when declared). No statistics
//! engine, HTML reports, or regression baselines.

use std::time::Instant;

/// Re-exported for drop-in compatibility with benches importing it from
/// criterion rather than `std::hint`.
pub use std::hint::black_box;

/// Declared work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A label of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives one benchmark's iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: u64,
    total_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `samples` calls of `f` after one warmup call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total_ns += start.elapsed().as_secs_f64() * 1e9;
        self.iters += self.samples;
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{label:<40} (no iterations)");
        return;
    }
    let mean_ns = b.total_ns / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {:.2} GiB/s", n as f64 / mean_ns * 1e9 / (1u64 << 30) as f64),
        Throughput::Elements(n) => format!("  {:.2} Melem/s", n as f64 / mean_ns * 1e3),
    });
    println!("{label:<40} {:>12.1} ns/iter{}", mean_ns, rate.unwrap_or_default());
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, ..Default::default() };
        f(&mut b);
        report(&id.label, &b, None);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the group's timed iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1) as u64);
        self
    }

    fn samples(&self) -> u64 {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher { samples: self.samples(), ..Default::default() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let mut b = Bencher { samples: self.samples(), ..Default::default() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        c.bench_function("counter", |b| {
            b.iter(|| calls += 1);
        });
        // one warmup + five timed iterations
        assert_eq!(calls, 6);
    }

    #[test]
    fn groups_apply_throughput_and_sample_size() {
        let mut c = Criterion::default().sample_size(4);
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &p| {
            b.iter(|| calls += p as u64);
        });
        g.finish();
        assert_eq!(calls, 3 * 7);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("matvec", 128).label, "matvec/128");
        assert_eq!(BenchmarkId::from_parameter(9).label, "9");
    }
}
