//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on its
//! config and report types but never serializes through serde at runtime
//! (the in-tree `enmc-obs` JSON codec does that work). These derives
//! therefore only need to implement the vendored marker traits. The
//! expansion is done with the bare `proc_macro` API — no syn/quote — by
//! scanning the token stream for the type name and generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(name, generic_params)` from a `struct`/`enum` definition.
///
/// Returns the identifier following the `struct`/`enum` keyword and the
/// names of its generic type parameters (lifetimes and const generics make
/// the scan bail out — the impl is then skipped, which is fine for marker
/// traits).
fn parse_item(input: TokenStream) -> Option<(String, Vec<String>)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match tokens.next()? {
                    TokenTree::Ident(n) => n.to_string(),
                    _ => return None,
                };
                // Optional `<...>` generics immediately after the name.
                let mut generics = Vec::new();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        tokens.next();
                        let mut depth = 1usize;
                        let mut expect_param = true;
                        for tt in tokens.by_ref() {
                            match tt {
                                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                TokenTree::Punct(p) if p.as_char() == '>' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                    expect_param = true;
                                }
                                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                                    return None; // lifetimes: skip the impl
                                }
                                TokenTree::Ident(id) if depth == 1 && expect_param => {
                                    let s = id.to_string();
                                    if s == "const" {
                                        return None; // const generics: skip
                                    }
                                    generics.push(s);
                                    expect_param = false;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                return Some((name, generics));
            }
        }
        // Skip attribute contents and doc comments wholesale.
        if let TokenTree::Group(g) = &tt {
            if g.delimiter() == Delimiter::Bracket {
                continue;
            }
        }
    }
    None
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, generics)) = parse_item(input) else {
        return TokenStream::new();
    };
    let code = if generics.is_empty() {
        format!("impl ::serde::{trait_name} for {name} {{}}")
    } else {
        let params = generics.join(", ");
        let bounds = generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("impl<{params}> ::serde::{trait_name} for {name}<{params}> where {bounds} {{}}")
    };
    code.parse().unwrap_or_default()
}

/// Derives the vendored `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Derives the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
