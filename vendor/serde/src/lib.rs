//! Offline stand-in for `serde`.
//!
//! The workspace's types derive `Serialize` / `Deserialize` to advertise
//! that they are plain data, but all real serialization goes through the
//! in-tree `enmc-obs` JSON codec. With crates.io unreachable in this
//! environment, this stub supplies marker traits (implemented broadly for
//! std types so derived bounds on fields always hold) and re-exports the
//! stub derive macros.

/// Marker for serializable plain-data types.
pub trait Serialize {}

/// Marker for deserializable plain-data types.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}
impl<T: Serialize> Serialize for [T] {}
impl<'a, T: Serialize + ?Sized> Serialize for &'a T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
