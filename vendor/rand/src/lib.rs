//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the slice of the rand 0.9 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::random`] / [`Rng::random_range`] methods. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the synthetic-workload generators require.
//! The bit streams differ from upstream `rand`; nothing in this
//! workspace depends on upstream streams.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64: fill the full seed width from one word.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their full domain (or `[0, 1)` for
/// floats), mirroring rand's `StandardUniform` distribution.
pub trait FromRandom {
    /// Draws one value from `rng`.
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_random_int {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRandom for u128 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means 2^64.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let mut m = (rng.next_u64() as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        m = (rng.next_u64() as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start.wrapping_add((m >> 64) as u64 as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = FromRandom::from_random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws one value of type `T` (full domain; `[0, 1)` for floats).
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..4096 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..512 {
            let u: u32 = rng.random_range(0..6);
            seen[u as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bins hit: {seen:?}");
        for _ in 0..512 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn full_domain_integers_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: u64 = rng.random();
        let b: u64 = rng.random();
        assert_ne!(a, b);
        let _: bool = rng.random();
        let _: u8 = rng.random();
    }
}
