//! Cost accounting and the bandwidth-bound CPU speedup model.
//!
//! The algorithm-level speedups of Fig. 11/12 are reported relative to full
//! classification on the CPU baseline. Extreme classification on CPU is
//! bandwidth-bound (Fig. 5b), so execution time is modelled as
//! `max(bytes/BW, flops/peak)` — in practice the byte term dominates for
//! every kernel here. The same accounting feeds the architecture simulator.

/// Operation and byte counts of one classification strategy for one query
/// batch.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ClassificationCost {
    /// Multiply-accumulate operations at full (FP32) precision.
    pub fp32_macs: u64,
    /// Multiply-accumulate operations at reduced (integer) precision.
    pub int_macs: u64,
    /// Bytes read from memory (weights + activations).
    pub bytes_read: u64,
    /// Bytes written to memory (outputs, spills).
    pub bytes_written: u64,
}

impl ClassificationCost {
    /// Cost of a full classification: `l × d` FP32 MACs and streaming the
    /// whole weight matrix plus bias.
    pub fn full(l: usize, d: usize, batch: usize) -> Self {
        let macs = l as u64 * d as u64 * batch as u64;
        ClassificationCost {
            fp32_macs: macs,
            int_macs: 0,
            // Weights are streamed once per batch (they do not fit in
            // cache); outputs written per query.
            bytes_read: l as u64 * d as u64 * 4 + l as u64 * 4 + (batch * d) as u64 * 4,
            bytes_written: (l * batch) as u64 * 4,
        }
    }

    /// Element-wise sum of two costs.
    pub fn add(&self, other: &ClassificationCost) -> ClassificationCost {
        ClassificationCost {
            fp32_macs: self.fp32_macs + other.fp32_macs,
            int_macs: self.int_macs + other.int_macs,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total MACs regardless of precision.
    pub fn total_macs(&self) -> u64 {
        self.fp32_macs + self.int_macs
    }
}

/// Bandwidth/compute model of the CPU baseline (Xeon 8280, §6.2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuCostModel {
    /// Sustained memory bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Peak FP32 MACs/second.
    pub peak_fp32_macs: f64,
    /// Peak integer MACs/second (VNNI-style, higher than FP32).
    pub peak_int_macs: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        // 128 GB/s ideal, ~76% sustained on streaming kernels; AVX-512:
        // 28 cores × 2.7 GHz × 32 FP32 MAC/cycle; int8 ~2× that.
        CpuCostModel {
            bandwidth: 128.0e9 * 0.76,
            peak_fp32_macs: 28.0 * 2.7e9 * 32.0,
            peak_int_macs: 28.0 * 2.7e9 * 64.0,
        }
    }
}

impl CpuCostModel {
    /// Execution time of a cost on this CPU: the max of the bandwidth term
    /// and the compute term (roofline).
    pub fn seconds(&self, cost: &ClassificationCost) -> f64 {
        let mem = cost.total_bytes() as f64 / self.bandwidth;
        let compute = cost.fp32_macs as f64 / self.peak_fp32_macs
            + cost.int_macs as f64 / self.peak_int_macs;
        mem.max(compute)
    }

    /// Speedup of `approx` relative to `baseline` (both on this CPU).
    pub fn speedup(&self, baseline: &ClassificationCost, approx: &ClassificationCost) -> f64 {
        self.seconds(baseline) / self.seconds(approx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cost_scales_with_shape() {
        let a = ClassificationCost::full(1000, 512, 1);
        let b = ClassificationCost::full(2000, 512, 1);
        assert_eq!(b.fp32_macs, 2 * a.fp32_macs);
        assert!(b.bytes_read > a.bytes_read);
    }

    #[test]
    fn add_is_elementwise() {
        let a = ClassificationCost { fp32_macs: 1, int_macs: 2, bytes_read: 3, bytes_written: 4 };
        let s = a.add(&a);
        assert_eq!(s.fp32_macs, 2);
        assert_eq!(s.int_macs, 4);
        assert_eq!(s.total_bytes(), 14);
        assert_eq!(s.total_macs(), 6);
    }

    #[test]
    fn full_classification_is_bandwidth_bound() {
        let model = CpuCostModel::default();
        let cost = ClassificationCost::full(267_744, 512, 1);
        let mem = cost.total_bytes() as f64 / model.bandwidth;
        assert!((model.seconds(&cost) - mem).abs() / mem < 1e-9);
    }

    #[test]
    fn speedup_matches_byte_ratio_when_memory_bound() {
        let model = CpuCostModel::default();
        let full = ClassificationCost::full(100_000, 512, 1);
        let cheap = ClassificationCost {
            fp32_macs: 0,
            int_macs: full.fp32_macs / 4,
            bytes_read: full.bytes_read / 32,
            bytes_written: full.bytes_written,
        };
        let s = model.speedup(&full, &cheap);
        let byte_ratio = full.total_bytes() as f64 / cheap.total_bytes() as f64;
        assert!((s - byte_ratio).abs() / byte_ratio < 0.05, "{s} vs {byte_ratio}");
    }
}
