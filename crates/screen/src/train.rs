//! Learning the screening module (paper §4.3, Algorithm 1).
//!
//! The screener is distilled from the frozen full classifier by minimizing
//! the MSE between full and approximate logits over batched context vectors
//! (Eq. 4):
//!
//! ```text
//! L = (1/s) Σ_s ‖(W h + b) − (W̃ P h + b̃)‖²
//! ```
//!
//! Only `W̃` and `b̃` are updated; `W`, `b` and `P` stay fixed. We provide
//! the paper's SGD loop ([`train_sgd`]) and a closed-form ridge
//! least-squares fit ([`fit_least_squares`]) that solves the same objective
//! directly — useful for large benchmark sweeps where thousands of SGD
//! epochs would dominate runtime. Both converge to the same optimum on
//! well-conditioned data (see the crate's integration tests).

use crate::screener::Screener;
use enmc_tensor::{Matrix, Vector};

/// Hyper-parameters of the SGD distillation loop.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size `s` in Eq. 4.
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 10, batch_size: 8, learning_rate: 0.05, lr_decay: 0.9 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainReport {
    /// Mean MSE loss at the end of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainReport {
    /// Final epoch loss (`f64::NAN` if no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }

    /// `true` if the loss decreased from first to last epoch.
    pub fn converged(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(a), Some(b)) => b < a,
            _ => false,
        }
    }
}

/// Runs Algorithm 1: SGD over the distillation MSE.
///
/// `samples` are the context vectors `h_i`; the training targets
/// `z_i = W h_i + b` are computed once up front from the frozen classifier.
///
/// # Panics
///
/// Panics if `samples` is empty, shapes are inconsistent, or
/// `config.batch_size == 0`.
pub fn train_sgd(
    screener: &mut Screener,
    classifier: &Matrix,
    classifier_bias: &Vector,
    samples: &[Vector],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "need at least one training sample");
    assert!(config.batch_size > 0, "batch size must be nonzero");
    assert_eq!(classifier.rows(), screener.categories(), "category mismatch");
    assert_eq!(classifier.cols(), screener.hidden_dim(), "hidden-dim mismatch");

    // Precompute targets and projections (P is fixed during distillation).
    let targets: Vec<Vector> =
        samples.iter().map(|h| classifier.matvec_bias(h, classifier_bias)).collect();
    let projected: Vec<Vector> = samples.iter().map(|h| screener.projection().project(h)).collect();

    let l = screener.categories();
    let mut lr = config.learning_rate;
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for _epoch in 0..config.epochs {
        let mut epoch_loss = 0.0_f64;
        let mut count = 0usize;
        for batch in projected.chunks(config.batch_size).zip(targets.chunks(config.batch_size)) {
            let (phs, zs) = batch;
            // Accumulate the batch gradient.
            let mut grad_b = Vector::zeros(l);
            let mut residuals: Vec<Vector> = Vec::with_capacity(phs.len());
            for (ph, z) in phs.iter().zip(zs) {
                let mut pred = screener.weights().matvec(ph);
                pred.add_assign(screener.bias());
                // residual r = pred − target; dL/dW̃ = (2/s) r phᵀ.
                let r: Vector = pred
                    .as_slice()
                    .iter()
                    .zip(z.as_slice())
                    .map(|(p, t)| p - t)
                    .collect();
                epoch_loss += r.as_slice().iter().map(|&x| (x as f64).powi(2)).sum::<f64>()
                    / l as f64;
                count += 1;
                grad_b.add_assign(&r);
                residuals.push(r);
            }
            let s = phs.len() as f32;
            let step = -2.0 * lr / s;
            for (r, ph) in residuals.iter().zip(phs) {
                screener.weights_mut().rank_one_update(step, r, ph);
            }
            screener.bias_mut().axpy(step, &grad_b);
        }
        epoch_losses.push(epoch_loss / count.max(1) as f64);
        lr *= config.lr_decay;
    }
    TrainReport { epoch_losses }
}

/// Solves the distillation objective in closed form (ridge least squares).
///
/// Writing `y = P h`, the optimum of Eq. 4 satisfies
/// `W̃ = Z Yᵀ (Y Yᵀ + λI)⁻¹` where `Y` stacks projected samples and `Z`
/// stacks targets; since `Z = W H + b 1ᵀ` this reduces to `k × k` solves
/// that avoid touching `l × d` more than once. The bias is fit as the mean
/// residual.
///
/// # Panics
///
/// Panics if `samples` is empty or shapes are inconsistent.
pub fn fit_least_squares(
    screener: &mut Screener,
    classifier: &Matrix,
    classifier_bias: &Vector,
    samples: &[Vector],
    ridge: f32,
) -> f64 {
    assert!(!samples.is_empty(), "need at least one sample");
    assert_eq!(classifier.rows(), screener.categories(), "category mismatch");
    assert_eq!(classifier.cols(), screener.hidden_dim(), "hidden-dim mismatch");
    let k = screener.reduced_dim();
    let n = samples.len();

    // Projected samples Y (n × k) and Gram matrix G = Σ y yᵀ + λI (k × k).
    let ys: Vec<Vector> = samples.iter().map(|h| screener.projection().project(h)).collect();
    let mut gram = Matrix::zeros(k, k);
    for y in &ys {
        gram.rank_one_update(1.0, y, y);
    }
    for i in 0..k {
        let v = gram.get(i, i) + ridge;
        gram.set(i, i, v);
    }
    let gram_inv = invert_spd(&gram);

    // A = Σ h yᵀ  (d × k): cross-correlation of inputs and projections.
    let d = screener.hidden_dim();
    let mut a = Matrix::zeros(d, k);
    for (h, y) in samples.iter().zip(&ys) {
        a.rank_one_update(1.0, h, y);
    }
    // W̃ = W · A · G⁻¹  (l×d · d×k · k×k) — never materializes l×n.
    let ag = a.matmul(&gram_inv);
    let wt = classifier.matmul(&ag);
    *screener.weights_mut() = wt;

    // Bias: mean residual between targets and W̃ y, plus classifier bias.
    let l = screener.categories();
    let mut bias_acc = Vector::zeros(l);
    for (h, y) in samples.iter().zip(&ys) {
        let target = classifier.matvec(h);
        let pred = screener.weights().matvec(y);
        for i in 0..l {
            bias_acc[i] += target[i] - pred[i];
        }
    }
    bias_acc.scale(1.0 / n as f32);
    bias_acc.add_assign(classifier_bias);
    *screener.bias_mut() = bias_acc;

    // Report the final MSE over the fitting set.
    let mut loss = 0.0_f64;
    for h in samples {
        let target = classifier.matvec_bias(h, classifier_bias);
        let pred = screener.screen_fp32(h);
        loss += pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| ((p - t) as f64).powi(2))
            .sum::<f64>()
            / l as f64;
    }
    loss / n as f64
}

/// Inverts a symmetric positive-definite matrix via Cholesky decomposition.
///
/// # Panics
///
/// Panics if the matrix is not SPD (ridge regularization in the caller
/// guarantees it is).
fn invert_spd(m: &Matrix) -> Matrix {
    let n = m.rows();
    assert_eq!(n, m.cols(), "invert_spd: must be square");
    // Cholesky: m = L Lᵀ.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = m.get(i, j);
            for p in 0..j {
                sum -= l.get(i, p) * l.get(j, p);
            }
            if i == j {
                assert!(sum > 0.0, "matrix not positive definite");
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    // Invert by solving L Lᵀ X = I column by column.
    let mut inv = Matrix::zeros(n, n);
    for col in 0..n {
        // Forward solve L v = e_col.
        let mut v = vec![0.0_f32; n];
        for i in 0..n {
            let mut sum = if i == col { 1.0 } else { 0.0 };
            for p in 0..i {
                sum -= l.get(i, p) * v[p];
            }
            v[i] = sum / l.get(i, i);
        }
        // Backward solve Lᵀ x = v.
        let mut x = vec![0.0_f32; n];
        for i in (0..n).rev() {
            let mut sum = v[i];
            for p in i + 1..n {
                sum -= l.get(p, i) * x[p];
            }
            x[i] = sum / l.get(i, i);
        }
        for i in 0..n {
            inv.set(i, col, x[i]);
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screener::ScreenerConfig;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::quant::Precision;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, scale: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for v in m.as_mut_slice() {
            *v = standard_normal(rng) * scale;
        }
        m
    }

    fn random_samples(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vector> {
        (0..n).map(|_| (0..d).map(|_| standard_normal(rng)).collect()).collect()
    }

    fn setup(l: usize, d: usize, scale: f64) -> (Screener, Matrix, Vector, Vec<Vector>) {
        let mut rng = StdRng::seed_from_u64(17);
        let w = random_matrix(&mut rng, l, d, 1.0 / (d as f32).sqrt());
        let b = Vector::zeros(l);
        let samples = random_samples(&mut rng, 64, d);
        let cfg = ScreenerConfig { scale, precision: Precision::Fp32, per_row_scales: false, seed: 3 };
        let s = Screener::new(l, d, &cfg).unwrap();
        (s, w, b, samples)
    }

    #[test]
    fn sgd_loss_decreases() {
        let (mut s, w, b, samples) = setup(32, 24, 0.5);
        let report = train_sgd(&mut s, &w, &b, &samples, &TrainConfig::default());
        assert!(report.converged(), "losses: {:?}", report.epoch_losses);
        assert!(report.final_loss() < report.epoch_losses[0] * 0.8);
    }

    #[test]
    fn least_squares_beats_or_matches_sgd() {
        let (mut s_sgd, w, b, samples) = setup(32, 24, 0.5);
        let report = train_sgd(&mut s_sgd, &w, &b, &samples, &TrainConfig::default());
        let (mut s_ls, ..) = setup(32, 24, 0.5);
        let ls_loss = fit_least_squares(&mut s_ls, &w, &b, &samples, 1e-3);
        assert!(
            ls_loss <= report.final_loss() * 1.5 + 1e-6,
            "ls {ls_loss} vs sgd {}",
            report.final_loss()
        );
    }

    #[test]
    fn least_squares_loss_shrinks_with_capacity() {
        // The sparse ternary projection at k == d is not guaranteed
        // invertible (rows can collide), but more capacity must explain
        // more target variance: loss(k=d) ≪ loss(k=d/4) ≪ Var(z).
        let (mut s_small, w, b, samples) = setup(16, 32, 0.25);
        let loss_small = fit_least_squares(&mut s_small, &w, &b, &samples, 1e-5);
        let (mut s_big, ..) = setup(16, 32, 1.0);
        let loss_big = fit_least_squares(&mut s_big, &w, &b, &samples, 1e-5);
        assert!(loss_big < loss_small, "big {loss_big} vs small {loss_small}");
        // Targets have roughly unit variance by construction; a full-width
        // screener should explain the vast majority of it.
        assert!(loss_big < 0.15, "loss {loss_big}");
    }

    #[test]
    fn training_learns_bias() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = 8;
        let d = 8;
        let w = Matrix::zeros(l, d); // classifier is pure bias
        let b: Vector = (0..l).map(|i| i as f32).collect();
        let samples = random_samples(&mut rng, 32, d);
        let cfg = ScreenerConfig { scale: 0.5, precision: Precision::Fp32, per_row_scales: false, seed: 1 };
        let mut s = Screener::new(l, d, &cfg).unwrap();
        let config = TrainConfig { epochs: 60, learning_rate: 0.2, ..Default::default() };
        train_sgd(&mut s, &w, &b, &samples, &config);
        for i in 0..l {
            assert!((s.bias()[i] - i as f32).abs() < 0.25, "bias[{i}] = {}", s.bias()[i]);
        }
    }

    #[test]
    fn invert_spd_identity() {
        let mut m = Matrix::zeros(4, 4);
        for i in 0..4 {
            m.set(i, i, 2.0);
        }
        let inv = invert_spd(&m);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 0.5 } else { 0.0 };
                assert!((inv.get(i, j) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn invert_spd_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = random_matrix(&mut rng, 6, 6, 1.0);
        // SPD: A Aᵀ + I.
        let mut spd = a.matmul(&a.transpose());
        for i in 0..6 {
            spd.set(i, i, spd.get(i, i) + 1.0);
        }
        let inv = invert_spd(&spd);
        let prod = spd.matmul(&inv);
        for i in 0..6 {
            for j in 0..6 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod.get(i, j) - expect).abs() < 1e-3, "({i},{j}) {}", prod.get(i, j));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one training sample")]
    fn sgd_rejects_empty_samples() {
        let (mut s, w, b, _) = setup(4, 4, 0.5);
        train_sgd(&mut s, &w, &b, &[], &TrainConfig::default());
    }
}
