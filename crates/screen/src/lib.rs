// Numeric kernels index multiple arrays in lockstep; iterator
// rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

//! Approximate screening for extreme classification — the paper's core
//! algorithmic contribution (§4) plus the two approximation baselines it is
//! compared against (§6.1).
//!
//! The inference pipeline (paper Fig. 6):
//!
//! 1. **Screen** — project the hidden vector `h` to `k` dimensions with the
//!    sparse random matrix `P`, multiply by the learned low-dimensional
//!    classifier `W̃` (quantized to INT4 on hardware) to get approximate
//!    logits `z̃ = W̃ P h + b̃`.
//! 2. **Filter** — select candidates by threshold or top-m search.
//! 3. **Candidates-only classification** — compute exact logits
//!    `w_i · h + b_i` only for the selected rows of the full classifier.
//! 4. **Mix** — final output uses accurate values for candidates and the
//!    approximate values everywhere else, then softmax.
//!
//! Modules:
//!
//! * [`screener`] — the screening module (`P`, `W̃`, `b̃`) and its
//!   quantized inference path;
//! * [`train`] — Algorithm 1 (SGD on the MSE distillation loss) and a
//!   closed-form least-squares fit used as a fast alternative;
//! * [`infer`] — the end-to-end approximate classification pipeline with
//!   cost accounting;
//! * [`cost`] — operation/byte accounting and the bandwidth-bound CPU
//!   speedup model used for the Fig. 11/12 x-axes;
//! * [`svd`] — the SVD-softmax baseline (Shim et al., NeurIPS'17);
//! * [`fgd`] — the FGD baseline (Zhang et al., NeurIPS'18): graph-based
//!   nearest-neighbour decoding;
//! * [`mach`] — the MACH related-work point (Medini et al., NeurIPS'19):
//!   count-min-sketch classification, included so the paper's accuracy
//!   criticism of it can be measured.

pub mod adaptive;
pub mod beam;
pub mod cost;
pub mod fgd;
pub mod hierarchical;
pub mod infer;
pub mod mach;
pub mod screener;
pub mod svd;
pub mod train;

pub use cost::{ClassificationCost, CpuCostModel};
pub use infer::{ApproxClassifier, ApproxOutput, SelectionPolicy};
pub use screener::{Screener, ScreenerConfig};
pub use train::{fit_least_squares, train_sgd, TrainConfig, TrainReport};
