//! The screening module: `z̃ = W̃ P h + b̃` (paper Eq. 3).

use enmc_tensor::quant::{Precision, QuantMatrix, QuantMatrixPerRow, QuantVector};
use enmc_tensor::{Matrix, SparseProjection, TensorError, Vector};

/// Configuration of a screening module.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScreenerConfig {
    /// Parameter-reduction scale: `k = round(scale · d)`. The paper
    /// chooses 0.25 (Fig. 12a).
    pub scale: f64,
    /// Precision the screener runs at during inference. The paper chooses
    /// INT4 (Fig. 12b).
    pub precision: Precision,
    /// Use one quantization scale per category row instead of one per
    /// tensor (costs `4·l` extra stream bytes; preserves outlier rows).
    pub per_row_scales: bool,
    /// Seed for the sparse random projection.
    pub seed: u64,
}

impl Default for ScreenerConfig {
    fn default() -> Self {
        ScreenerConfig {
            scale: 0.25,
            precision: Precision::Int4,
            per_row_scales: false,
            seed: 0x5eed,
        }
    }
}

impl ScreenerConfig {
    /// Reduced dimension for a hidden size `d`.
    pub fn reduced_dim(&self, d: usize) -> usize {
        ((d as f64 * self.scale).round() as usize).max(1)
    }
}

/// A trained screening module.
///
/// Holds the fixed sparse projection `P`, the learned reduced classifier
/// `W̃ ∈ ℝ^{l×k}` and bias `b̃ ∈ ℝˡ`, plus the quantized image of `W̃`
/// that the Screener hardware streams (built once after training).
#[derive(Debug, Clone)]
pub struct Screener {
    projection: SparseProjection,
    weights: Matrix,
    bias: Vector,
    precision: Precision,
    per_row_scales: bool,
    quant_weights: Option<QuantMatrix>,
    quant_weights_per_row: Option<QuantMatrixPerRow>,
}

impl Screener {
    /// Creates an *untrained* screener (zero weights) for `l` categories
    /// and hidden dimension `d` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if any dimension is zero.
    pub fn new(l: usize, d: usize, config: &ScreenerConfig) -> Result<Self, TensorError> {
        if l == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("screener dims must be nonzero"));
        }
        let k = config.reduced_dim(d);
        let projection = SparseProjection::new(k, d, config.seed)?;
        Ok(Screener {
            projection,
            weights: Matrix::zeros(l, k),
            bias: Vector::zeros(l),
            precision: config.precision,
            per_row_scales: config.per_row_scales,
            quant_weights: None,
            quant_weights_per_row: None,
        })
    }

    /// The sparse random projection `P`.
    pub fn projection(&self) -> &SparseProjection {
        &self.projection
    }

    /// The reduced classifier weights `W̃` (`l × k`, FP32 master copy).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access for the trainer.
    pub(crate) fn weights_mut(&mut self) -> &mut Matrix {
        self.quant_weights = None; // invalidate the quantized images
        self.quant_weights_per_row = None;
        &mut self.weights
    }

    /// The screener bias `b̃`.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// Mutable access for the trainer.
    pub(crate) fn bias_mut(&mut self) -> &mut Vector {
        &mut self.bias
    }

    /// Number of categories `l`.
    pub fn categories(&self) -> usize {
        self.weights.rows()
    }

    /// Reduced dimension `k`.
    pub fn reduced_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Hidden dimension `d`.
    pub fn hidden_dim(&self) -> usize {
        self.projection.d()
    }

    /// Inference precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Quantizes the trained weights for deployment. Called automatically
    /// by [`Screener::screen`] when needed; idempotent.
    ///
    /// # Errors
    ///
    /// Propagates quantization errors (never occurs for non-empty FP32
    /// weights at integer precisions).
    pub fn freeze(&mut self) -> Result<(), TensorError> {
        if self.precision == Precision::Fp32 {
            return Ok(());
        }
        if self.per_row_scales {
            if self.quant_weights_per_row.is_none() {
                self.quant_weights_per_row =
                    Some(QuantMatrixPerRow::quantize(&self.weights, self.precision)?);
            }
        } else if self.quant_weights.is_none() {
            self.quant_weights = Some(QuantMatrix::quantize(&self.weights, self.precision)?);
        }
        Ok(())
    }

    /// Computes approximate logits `z̃ = W̃ P h + b̃` at the configured
    /// precision (quantizing the projected activation on the fly, as the
    /// hardware does when loading the feature buffer).
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != d`.
    pub fn screen(&mut self, h: &Vector) -> Vector {
        self.freeze().expect("freeze cannot fail on trained weights");
        self.screen_ref(h)
    }

    /// [`Screener::screen`] through a shared reference, for callers that
    /// fan queries out across threads. Requires the weights to be frozen
    /// already ([`Screener::freeze`]); produces bit-identical logits to
    /// [`Screener::screen`].
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != d`, or if the screener uses an integer
    /// precision and [`Screener::freeze`] has not been called.
    pub fn screen_ref(&self, h: &Vector) -> Vector {
        let ph = self.projection.project(h);
        let mut z = match self.precision {
            Precision::Fp32 => self.weights.matvec(&ph),
            p => {
                let qh = QuantVector::quantize(&ph, p).expect("nonempty activation");
                if self.per_row_scales {
                    self.quant_weights_per_row
                        .as_ref()
                        .expect("screen_ref requires a frozen screener")
                        .matvec_quant(&qh)
                } else {
                    self.quant_weights
                        .as_ref()
                        .expect("screen_ref requires a frozen screener")
                        .matvec_quant(&qh)
                }
            }
        };
        z.add_assign(&self.bias);
        z
    }

    /// FP32 screening used during training (no quantization, no freeze).
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != d`.
    pub fn screen_fp32(&self, h: &Vector) -> Vector {
        let ph = self.projection.project(h);
        let mut z = self.weights.matvec(&ph);
        z.add_assign(&self.bias);
        z
    }

    /// The frozen per-tensor quantized weight image, if one has been built
    /// (`None` before [`Screener::freeze`], at FP32, or with per-row scales).
    /// This is the exact DRAM-resident operand the fault subsystem corrupts.
    pub fn quant_weights(&self) -> Option<&QuantMatrix> {
        self.quant_weights.as_ref()
    }

    /// Replaces the frozen quantized weight image — the hook by which the
    /// fault subsystem substitutes a bit-corrupted copy of `W̃` without
    /// touching the FP32 master weights (which model the *host* copy, not
    /// the DIMM-resident stream).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the screener runs at
    /// FP32 or uses per-row scales (those streams are not per-tensor
    /// images), or [`TensorError::ShapeMismatch`] if shape or precision
    /// differ from the trained weights.
    pub fn set_quant_weights(&mut self, q: QuantMatrix) -> Result<(), TensorError> {
        if self.precision == Precision::Fp32 {
            return Err(TensorError::InvalidArgument(
                "set_quant_weights: FP32 screeners have no quantized image",
            ));
        }
        if self.per_row_scales {
            return Err(TensorError::InvalidArgument(
                "set_quant_weights: per-row-scale screeners are not supported",
            ));
        }
        if q.precision() != self.precision {
            return Err(TensorError::InvalidArgument(
                "set_quant_weights: precision mismatch",
            ));
        }
        if q.rows() != self.categories() || q.cols() != self.reduced_dim() {
            return Err(TensorError::ShapeMismatch {
                op: "set_quant_weights",
                expected: (self.categories(), self.reduced_dim()),
                found: (q.rows(), q.cols()),
            });
        }
        self.quant_weights = Some(q);
        Ok(())
    }

    /// Bytes of screening weights streamed per query (quantized `W̃` plus
    /// FP32 bias, plus per-row scales when enabled) — the Screener's DRAM
    /// traffic.
    pub fn weight_bytes(&self) -> u64 {
        let wt = self.precision.nbytes(self.categories() * self.reduced_dim()) as u64;
        let scales = if self.per_row_scales { self.categories() as u64 * 4 } else { 0 };
        wt + self.categories() as u64 * 4 + scales
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_dims() {
        let cfg = ScreenerConfig::default();
        assert!(Screener::new(0, 8, &cfg).is_err());
        assert!(Screener::new(8, 0, &cfg).is_err());
    }

    #[test]
    fn reduced_dim_follows_scale() {
        let cfg = ScreenerConfig { scale: 0.25, ..Default::default() };
        let s = Screener::new(100, 512, &cfg).unwrap();
        assert_eq!(s.reduced_dim(), 128);
        assert_eq!(s.hidden_dim(), 512);
        assert_eq!(s.categories(), 100);
    }

    #[test]
    fn untrained_screener_outputs_bias() {
        let cfg = ScreenerConfig { precision: Precision::Fp32, ..Default::default() };
        let mut s = Screener::new(4, 16, &cfg).unwrap();
        s.bias_mut().as_mut_slice()[2] = 3.0;
        let z = s.screen(&Vector::zeros(16));
        assert_eq!(z.as_slice(), &[0.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn quantized_screen_tracks_fp32_screen() {
        let cfg = ScreenerConfig { precision: Precision::Int8, ..Default::default() };
        let mut s = Screener::new(16, 32, &cfg).unwrap();
        // Give the screener smooth nonzero weights.
        for r in 0..16 {
            for (c, w) in s.weights_mut().row_mut(r).iter_mut().enumerate() {
                *w = ((r * 7 + c) as f32 * 0.13).sin() * 0.5;
            }
        }
        let h: Vector = (0..32).map(|i| (i as f32 * 0.21).cos()).collect();
        let q = s.screen(&h);
        let f = s.screen_fp32(&h);
        let err: f32 = q
            .as_slice()
            .iter()
            .zip(f.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 0.05, "max err {err}");
    }

    #[test]
    fn weight_mutation_invalidates_quantized_image() {
        let cfg = ScreenerConfig { precision: Precision::Int4, ..Default::default() };
        let mut s = Screener::new(4, 8, &cfg).unwrap();
        for w in s.weights_mut().row_mut(0) {
            *w = 1.0;
        }
        let h = Vector::from(vec![1.0; 8]);
        let before = s.screen(&h);
        for w in s.weights_mut().row_mut(0) {
            *w = -1.0;
        }
        let after = s.screen(&h);
        assert_ne!(before, after);
    }

    #[test]
    fn per_row_scales_improve_outlier_rows() {
        // Rows with wildly different magnitudes: per-row scales keep the
        // small rows' screening logits meaningful.
        let build = |per_row: bool| {
            let cfg = ScreenerConfig {
                scale: 0.5,
                precision: Precision::Int4,
                per_row_scales: per_row,
                seed: 7,
            };
            let mut s = Screener::new(8, 16, &cfg).unwrap();
            for r in 0..8 {
                let mag = if r == 7 { 50.0 } else { 0.05 };
                for (c, w) in s.weights_mut().row_mut(r).iter_mut().enumerate() {
                    *w = mag * ((r * 16 + c) as f32 * 0.31).sin();
                }
            }
            s
        };
        let h: Vector = (0..16).map(|i| (i as f32 * 0.17).cos()).collect();
        let mut tensor_wide = build(false);
        let mut per_row = build(true);
        let reference = tensor_wide.screen_fp32(&h);
        let zt = tensor_wide.screen(&h);
        let zr = per_row.screen(&h);
        let err = |z: &Vector, r: usize| (z[r] - reference[r]).abs();
        // The small rows collapse to zero under the tensor-wide scale but
        // survive per-row.
        let small_rows_better = (0..7)
            .filter(|&r| err(&zr, r) < err(&zt, r))
            .count();
        assert!(small_rows_better >= 5, "only {small_rows_better} rows improved");
    }

    #[test]
    fn set_quant_weights_substitutes_the_streamed_image() {
        use enmc_tensor::quant::QuantMatrix;
        let cfg = ScreenerConfig { precision: Precision::Int4, ..Default::default() };
        let mut s = Screener::new(4, 8, &cfg).unwrap();
        for r in 0..4 {
            for (c, w) in s.weights_mut().row_mut(r).iter_mut().enumerate() {
                *w = ((r * 8 + c) as f32 * 0.4).sin();
            }
        }
        s.freeze().unwrap();
        let h: Vector = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let before = s.screen_ref(&h);

        let q = s.quant_weights().expect("frozen image").clone();
        let mut codes = q.codes().to_vec();
        codes[0] = -8; // a bit-flipped sign would produce exactly this
        let corrupted =
            QuantMatrix::from_parts(q.rows(), q.cols(), codes, q.scale(), q.precision()).unwrap();
        s.set_quant_weights(corrupted).unwrap();
        let after = s.screen_ref(&h);
        assert_ne!(before, after, "row 0 logit must move");
        // Only row 0 was corrupted.
        assert_eq!(&before.as_slice()[1..], &after.as_slice()[1..]);
    }

    #[test]
    fn set_quant_weights_validates_shape_precision_and_mode() {
        use enmc_tensor::quant::QuantMatrix;
        let cfg = ScreenerConfig { precision: Precision::Int4, ..Default::default() };
        let mut s = Screener::new(4, 8, &cfg).unwrap();
        s.freeze().unwrap();
        let k = s.reduced_dim();
        let wrong_shape =
            QuantMatrix::from_parts(3, k, vec![0; 3 * k], 1.0, Precision::Int4).unwrap();
        assert!(s.set_quant_weights(wrong_shape).is_err());
        let wrong_precision =
            QuantMatrix::from_parts(4, k, vec![0; 4 * k], 1.0, Precision::Int8).unwrap();
        assert!(s.set_quant_weights(wrong_precision).is_err());

        let fp = ScreenerConfig { precision: Precision::Fp32, ..Default::default() };
        let mut s = Screener::new(4, 8, &fp).unwrap();
        let img = QuantMatrix::from_parts(4, 2, vec![0; 8], 1.0, Precision::Int4).unwrap();
        assert!(s.set_quant_weights(img.clone()).is_err());

        let pr = ScreenerConfig { per_row_scales: true, ..Default::default() };
        let mut s = Screener::new(4, 8, &pr).unwrap();
        assert!(s.set_quant_weights(img).is_err());
    }

    #[test]
    fn per_row_weight_bytes_include_scales() {
        let cfg = ScreenerConfig {
            scale: 0.25,
            precision: Precision::Int4,
            per_row_scales: true,
            seed: 0,
        };
        let s = Screener::new(1000, 512, &cfg).unwrap();
        // codes + bias + per-row scales.
        assert_eq!(s.weight_bytes(), 64_000 + 4_000 + 4_000);
    }

    #[test]
    fn weight_bytes_accounts_precision() {
        let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 0 };
        let s = Screener::new(1000, 512, &cfg).unwrap();
        // 1000 * 128 elements at 4 bits = 64_000 bytes + 4000 bias bytes.
        assert_eq!(s.weight_bytes(), 64_000 + 4_000);
    }
}
