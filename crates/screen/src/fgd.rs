//! FGD baseline (Zhang et al., NeurIPS'18 — the paper's reference \[48\]): fast
//! graph-based decoding of softmax layers.
//!
//! FGD treats top-k classification as maximum-inner-product search and
//! navigates a small-world graph over the classifier rows: starting from a
//! few entry points, it greedily expands the neighbours of the best scored
//! nodes, computing exact inner products only for visited nodes. Quality is
//! controlled by the search beam (`ef`), and the cost is proportional to
//! the number of distance evaluations — the classic quality/speedup knob
//! the paper sweeps in Fig. 11.
//!
//! The graph here is a single-layer navigable small-world graph: each node
//! links to its `degree` nearest neighbours (by inner product of the
//! normalized rows) drawn from a bounded candidate pool, plus reverse
//! edges. Logits for unvisited categories fall back to a constant floor
//! (FGD produces top-k only; the floor mimics its "rest are irrelevant"
//! semantics when we compute perplexity proxies).

use crate::cost::ClassificationCost;
use enmc_tensor::matrix::dot;
use enmc_tensor::{Matrix, TensorError, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Build-time parameters for the FGD graph.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct FgdConfig {
    /// Out-degree of each node.
    pub degree: usize,
    /// Candidate-pool size per node during construction (caps build cost
    /// at `l · pool · d`).
    pub pool: usize,
    /// Number of entry points (the highest-bias / most popular rows).
    pub entry_points: usize,
    /// Uniformly random long-range links added per node; these give the
    /// graph its small-world navigability across clusters.
    pub long_links: usize,
    /// RNG seed for pool sampling.
    pub seed: u64,
}

impl Default for FgdConfig {
    fn default() -> Self {
        FgdConfig { degree: 16, pool: 512, entry_points: 8, long_links: 4, seed: 0xf6d }
    }
}

/// A graph-decoding classifier over a fixed weight matrix.
#[derive(Debug, Clone)]
pub struct FgdIndex {
    weights: Matrix,
    bias: Vector,
    /// Adjacency: `degree`-bounded neighbour lists.
    edges: Vec<Vec<u32>>,
    entries: Vec<usize>,
}

impl FgdIndex {
    /// Builds the navigable graph over `weights`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for empty inputs or a zero
    /// degree.
    pub fn build(weights: Matrix, bias: Vector, config: &FgdConfig) -> Result<Self, TensorError> {
        let (l, d) = weights.shape();
        if l == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("empty classifier"));
        }
        if config.degree == 0 || config.pool == 0 || config.entry_points == 0 {
            return Err(TensorError::InvalidArgument("degree/pool/entries must be nonzero"));
        }
        if bias.len() != l {
            return Err(TensorError::ShapeMismatch {
                op: "FgdIndex::build",
                expected: (l, 1),
                found: (bias.len(), 1),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut edges: Vec<Vec<u32>> = vec![Vec::new(); l];
        let pool = config.pool.min(l);
        for i in 0..l {
            // Sample a candidate pool and keep the top-degree by inner
            // product similarity of rows.
            let mut best: Vec<(f32, u32)> = Vec::with_capacity(pool);
            let wi = weights.row(i);
            for _ in 0..pool {
                let j = rng.random_range(0..l);
                if j == i {
                    continue;
                }
                best.push((dot(wi, weights.row(j)), j as u32));
            }
            best.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite similarity"));
            best.dedup_by_key(|e| e.1);
            edges[i] = best.into_iter().take(config.degree).map(|(_, j)| j).collect();
        }
        // Long-range random links make the graph small-world so search can
        // hop between clusters.
        for (i, e) in edges.iter_mut().enumerate() {
            for _ in 0..config.long_links {
                let j = rng.random_range(0..l) as u32;
                if j as usize != i && !e.contains(&j) {
                    e.push(j);
                }
            }
        }
        // Reverse edges (bounded to 2×degree) for navigability.
        let forward = edges.clone();
        for (i, nbrs) in forward.iter().enumerate() {
            for &j in nbrs {
                let e = &mut edges[j as usize];
                if e.len() < 2 * config.degree && !e.contains(&(i as u32)) {
                    e.push(i as u32);
                }
            }
        }
        // Entry points: highest-bias categories (popularity proxy), spread
        // over the id space to break ties when biases are uniform.
        let mut order: Vec<usize> = (0..l).collect();
        order.sort_by(|&a, &b| {
            bias[b]
                .partial_cmp(&bias[a])
                .expect("finite bias")
                .then((a % 101).cmp(&(b % 101)))
        });
        let entries: Vec<usize> = order
            .iter()
            .step_by((l / config.entry_points).max(1))
            .take(config.entry_points)
            .copied()
            .collect();
        Ok(FgdIndex { weights, bias, edges, entries })
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.weights.rows()
    }

    /// Greedy beam search for the top-`k` categories with beam width `ef`.
    ///
    /// Returns `(logits, refined_indices, cost)`. Logits of unvisited
    /// categories are set to `floor` (the minimum visited score minus a
    /// margin), since graph decoding never scores them.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from the hidden dimension.
    pub fn classify(&self, h: &Vector, k: usize, ef: usize) -> (Vector, Vec<usize>, ClassificationCost) {
        let (l, d) = self.weights.shape();
        let ef = ef.max(k).max(1);
        let score = |i: usize| dot(self.weights.row(i), h.as_slice()) + self.bias[i];

        let mut visited: HashSet<usize> = HashSet::new();
        // Max-heap of frontier candidates by score.
        let mut frontier: BinaryHeap<(ordered_f32, usize)> = BinaryHeap::new();
        // Min-heap of the best `ef` results.
        let mut results: BinaryHeap<Reverse<(ordered_f32, usize)>> = BinaryHeap::new();
        let mut evals = 0u64;

        for &e in &self.entries {
            if visited.insert(e) {
                let s = score(e);
                evals += 1;
                frontier.push((ordered_f32(s), e));
                results.push(Reverse((ordered_f32(s), e)));
            }
        }
        while let Some((s, node)) = frontier.pop() {
            // Stop when the best frontier score cannot improve the beam.
            if results.len() >= ef {
                if let Some(&Reverse((worst, _))) = results.peek() {
                    if s.0 < worst.0 {
                        break;
                    }
                }
            }
            for &nb in &self.edges[node] {
                let nb = nb as usize;
                if !visited.insert(nb) {
                    continue;
                }
                let sn = score(nb);
                evals += 1;
                let beats = results.len() < ef
                    || results.peek().is_some_and(|&Reverse((w, _))| sn > w.0);
                if beats {
                    frontier.push((ordered_f32(sn), nb));
                    results.push(Reverse((ordered_f32(sn), nb)));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }

        let mut scored: Vec<(f32, usize)> =
            results.into_iter().map(|Reverse((s, i))| (s.0, i)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
        let floor = scored.last().map(|&(s, _)| s - 10.0).unwrap_or(-10.0);
        let mut logits = Vector::from(vec![floor; l]);
        for &(s, i) in &scored {
            logits[i] = s;
        }
        let top: Vec<usize> = scored.iter().take(k).map(|&(_, i)| i).collect();

        let cost = ClassificationCost {
            fp32_macs: evals * d as u64,
            int_macs: 0,
            // Visited rows are gathered from DRAM (random access, charged a
            // full cache line per d-vector) + adjacency lists.
            bytes_read: evals * (d as u64 * 4) + evals * 64,
            bytes_written: (ef * 4) as u64,
        };
        (logits, top, cost)
    }
}

/// Total-order f32 (NaN treated as −∞) for heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrderedF32(f32);

#[allow(non_camel_case_types)]
type ordered_f32 = OrderedF32;

#[allow(non_snake_case)]
fn ordered_f32(v: f32) -> OrderedF32 {
    OrderedF32(if v.is_nan() { f32::NEG_INFINITY } else { v })
}

impl Eq for OrderedF32 {}
impl PartialOrd for OrderedF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN mapped to -inf")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::select::top_k_indices;

    fn clustered_classifier(l: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let clusters = 8;
        let mut centres = Matrix::zeros(clusters, d);
        for v in centres.as_mut_slice() {
            *v = standard_normal(&mut rng);
        }
        let mut w = Matrix::zeros(l, d);
        for i in 0..l {
            let c = i % clusters;
            let centre: Vec<f32> = centres.row(c).to_vec();
            for (x, ctr) in w.row_mut(i).iter_mut().zip(&centre) {
                *x = ctr + standard_normal(&mut rng) * 0.3;
            }
        }
        w
    }

    #[test]
    fn build_validates_inputs() {
        let cfg = FgdConfig::default();
        assert!(FgdIndex::build(Matrix::zeros(0, 4), Vector::zeros(0), &cfg).is_err());
        let bad = FgdConfig { degree: 0, ..cfg };
        assert!(FgdIndex::build(Matrix::zeros(4, 4), Vector::zeros(4), &bad).is_err());
        assert!(FgdIndex::build(Matrix::zeros(4, 4), Vector::zeros(5), &cfg).is_err());
    }

    #[test]
    fn finds_true_top1_with_wide_beam() {
        let w = clustered_classifier(400, 16, 1);
        let idx = FgdIndex::build(w.clone(), Vector::zeros(400), &FgdConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0;
        let trials = 30;
        for _ in 0..trials {
            let h: Vector = (0..16).map(|_| standard_normal(&mut rng)).collect();
            let exact_top = top_k_indices(w.matvec(&h).as_slice(), 1)[0];
            let (_, top, _) = idx.classify(&h, 1, 64);
            if top.first() == Some(&exact_top) {
                hits += 1;
            }
        }
        assert!(hits as f64 / trials as f64 > 0.7, "hit rate {}", hits as f64 / trials as f64);
    }

    #[test]
    fn wider_beam_costs_more_and_finds_more() {
        let w = clustered_classifier(400, 16, 3);
        let idx = FgdIndex::build(w.clone(), Vector::zeros(400), &FgdConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let h: Vector = (0..16).map(|_| standard_normal(&mut rng)).collect();
        let (_, _, c_small) = idx.classify(&h, 1, 4);
        let (_, _, c_big) = idx.classify(&h, 1, 128);
        assert!(c_big.fp32_macs > c_small.fp32_macs);
        // Both are far below brute force (400·16 MACs).
        assert!(c_big.fp32_macs < 400 * 16);
    }

    #[test]
    fn visited_scores_are_exact() {
        let w = clustered_classifier(200, 8, 5);
        let bias: Vector = (0..200).map(|i| (i % 7) as f32 * 0.01).collect();
        let idx = FgdIndex::build(w.clone(), bias.clone(), &FgdConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let h: Vector = (0..8).map(|_| standard_normal(&mut rng)).collect();
        let (logits, top, _) = idx.classify(&h, 5, 32);
        let exact = w.matvec_bias(&h, &bias);
        for &i in &top {
            assert!((logits[i] - exact[i]).abs() < 1e-5, "node {i}");
        }
    }

    #[test]
    fn unvisited_fall_to_floor() {
        let w = clustered_classifier(300, 8, 7);
        let idx = FgdIndex::build(w, Vector::zeros(300), &FgdConfig::default()).unwrap();
        let h = Vector::from(vec![0.5; 8]);
        let (logits, top, _) = idx.classify(&h, 2, 8);
        let min_top = top.iter().map(|&i| logits[i]).fold(f32::INFINITY, f32::min);
        let floor = logits.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(floor < min_top);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = clustered_classifier(100, 8, 8);
        let cfg = FgdConfig::default();
        let a = FgdIndex::build(w.clone(), Vector::zeros(100), &cfg).unwrap();
        let b = FgdIndex::build(w, Vector::zeros(100), &cfg).unwrap();
        let h = Vector::from(vec![0.3; 8]);
        assert_eq!(a.classify(&h, 3, 16).1, b.classify(&h, 3, 16).1);
    }
}
