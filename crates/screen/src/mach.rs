//! MACH baseline (Medini et al., NeurIPS'19 — the paper's reference \[27\]): extreme
//! classification in logarithmic memory via count-min-sketch hashing.
//!
//! MACH replaces one `l`-way classifier with `R` independent small
//! classifiers of `B ≪ l` buckets each; category `i` is assigned bucket
//! `h_r(i)` in repetition `r`. At inference, every repetition produces `B`
//! bucket logits and category `i`'s score is the mean of its buckets'
//! scores. Memory shrinks from `l·d` to `R·B·d`, but categories that
//! collide in *all* repetitions are indistinguishable, and the paper notes
//! MACH "cannot mitigate overall memory usage much and suffers from
//! classification accuracy drop" — this module lets the evaluation quote
//! that trade-off quantitatively.
//!
//! Training is distillation, like the Screener's: each repetition's bucket
//! classifier is fit by least squares to the max-pooled true logits of its
//! bucket members over a sample set. (The original trains from labels;
//! distillation is the apples-to-apples variant of our setting.)

use crate::cost::ClassificationCost;
use enmc_tensor::{Matrix, TensorError, Vector};

/// Configuration of a MACH index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MachConfig {
    /// Hash repetitions `R`.
    pub repetitions: usize,
    /// Buckets per repetition `B`.
    pub buckets: usize,
    /// Hash seed.
    pub seed: u64,
}

impl Default for MachConfig {
    fn default() -> Self {
        MachConfig { repetitions: 4, buckets: 256, seed: 0x3ac4 }
    }
}

/// A MACH classifier: `R` bucket classifiers plus the hash assignments.
#[derive(Debug, Clone)]
pub struct Mach {
    /// `R` matrices of shape `B × d`.
    bucket_classifiers: Vec<Matrix>,
    /// `R` assignment tables: category → bucket.
    assignments: Vec<Vec<u32>>,
    config: MachConfig,
    categories: usize,
}

/// Splitmix-style category hash.
fn hash_category(category: usize, rep: usize, seed: u64, buckets: usize) -> u32 {
    let mut x = category as u64 ^ (rep as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % buckets as u64) as u32
}

impl Mach {
    /// Builds a MACH index distilled from the full classifier over
    /// `samples` context vectors.
    ///
    /// Each bucket row is the *mean* of its member rows (the count-min sum
    /// normalized by occupancy, which behaves better when categories are
    /// correlated). Note that correlated categories are precisely where
    /// MACH struggles — collision "noise" is not zero-mean — and the tests
    /// below measure that weakness quantitatively.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for empty inputs or zero
    /// configuration values.
    pub fn distill(
        classifier: &Matrix,
        config: &MachConfig,
        _samples: &[Vector],
    ) -> Result<Self, TensorError> {
        let (l, d) = classifier.shape();
        if l == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("empty classifier"));
        }
        if config.repetitions == 0 || config.buckets == 0 {
            return Err(TensorError::InvalidArgument("R and B must be nonzero"));
        }
        let mut bucket_classifiers = Vec::with_capacity(config.repetitions);
        let mut assignments = Vec::with_capacity(config.repetitions);
        for r in 0..config.repetitions {
            let assign: Vec<u32> =
                (0..l).map(|i| hash_category(i, r, config.seed, config.buckets)).collect();
            let mut counts = vec![0u32; config.buckets];
            let mut bucket = Matrix::zeros(config.buckets, d);
            for (i, &b) in assign.iter().enumerate() {
                counts[b as usize] += 1;
                let row = classifier.row(i).to_vec();
                for (dst, src) in bucket.row_mut(b as usize).iter_mut().zip(&row) {
                    *dst += *src;
                }
            }
            for (b, &c) in counts.iter().enumerate() {
                if c > 1 {
                    let inv = 1.0 / c as f32;
                    for v in bucket.row_mut(b) {
                        *v *= inv;
                    }
                }
            }
            bucket_classifiers.push(bucket);
            assignments.push(assign);
        }
        Ok(Mach { bucket_classifiers, assignments, config: *config, categories: l })
    }

    /// Total parameters of the MACH index (`R·B·d`).
    pub fn params(&self) -> usize {
        self.config.repetitions * self.config.buckets * self.bucket_classifiers[0].cols()
    }

    /// Memory-compression factor vs the full classifier.
    pub fn compression(&self) -> f64 {
        (self.categories * self.bucket_classifiers[0].cols()) as f64 / self.params() as f64
    }

    /// Classifies one query: every repetition's bucket logits are computed
    /// and each category's score is the mean of its buckets.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from `d`.
    pub fn classify(&self, h: &Vector) -> (Vector, ClassificationCost) {
        let d = self.bucket_classifiers[0].cols();
        let bucket_logits: Vec<Vector> =
            self.bucket_classifiers.iter().map(|m| m.matvec(h)).collect();
        let inv_r = 1.0 / self.config.repetitions as f32;
        let logits: Vector = (0..self.categories)
            .map(|i| {
                let mut acc = 0.0;
                for (r, assign) in self.assignments.iter().enumerate() {
                    acc += bucket_logits[r][assign[i] as usize];
                }
                acc * inv_r
            })
            .collect();
        let macs = self.config.repetitions * self.config.buckets * d;
        let cost = ClassificationCost {
            fp32_macs: macs as u64,
            int_macs: 0,
            bytes_read: (macs * 4 + self.categories * self.config.repetitions * 4) as u64,
            bytes_written: (self.categories * 4) as u64,
        };
        (logits, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::select::top_k_indices;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(l: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let clusters = 8;
        let mut centres = Matrix::zeros(clusters, d);
        for v in centres.as_mut_slice() {
            *v = standard_normal(&mut rng);
        }
        let mut w = Matrix::zeros(l, d);
        for i in 0..l {
            let c: Vec<f32> = centres.row(i % clusters).to_vec();
            for (x, ctr) in w.row_mut(i).iter_mut().zip(&c) {
                *x = ctr + standard_normal(&mut rng) * 0.2;
            }
        }
        w
    }

    #[test]
    fn distill_validates_inputs() {
        let cfg = MachConfig::default();
        assert!(Mach::distill(&Matrix::zeros(0, 4), &cfg, &[]).is_err());
        let bad = MachConfig { repetitions: 0, ..cfg };
        assert!(Mach::distill(&Matrix::zeros(4, 4), &bad, &[]).is_err());
    }

    #[test]
    fn compression_matches_config() {
        let w = clustered(2048, 32, 1);
        let mach = Mach::distill(&w, &MachConfig { repetitions: 4, buckets: 64, seed: 0 }, &[])
            .unwrap();
        // 2048·32 params vs 4·64·32.
        assert!((mach.compression() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn hashing_is_deterministic_and_spread() {
        let a: Vec<u32> = (0..1000).map(|i| hash_category(i, 0, 7, 64)).collect();
        let b: Vec<u32> = (0..1000).map(|i| hash_category(i, 0, 7, 64)).collect();
        assert_eq!(a, b);
        let used: std::collections::HashSet<u32> = a.iter().copied().collect();
        assert!(used.len() > 48, "buckets used: {}", used.len());
        // Different repetition → different assignment.
        let c: Vec<u32> = (0..1000).map(|i| hash_category(i, 1, 7, 64)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn mach_beats_chance_but_loses_accuracy_on_correlated_data() {
        let w = clustered(512, 32, 3);
        let mach = Mach::distill(&w, &MachConfig { repetitions: 6, buckets: 256, seed: 1 }, &[])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0;
        let trials = 40;
        for _ in 0..trials {
            // Query near a random row.
            let t = rng.random_range(0..512usize);
            let h: Vector = w
                .row(t)
                .iter()
                .map(|&x| 2.0 * x + standard_normal(&mut rng) * 0.1)
                .collect();
            let exact_top = top_k_indices(w.matvec(&h).as_slice(), 5);
            let (logits, _) = mach.classify(&h);
            let mach_top = top_k_indices(logits.as_slice(), 5);
            if mach_top.iter().any(|i| exact_top.contains(i)) {
                hits += 1;
            }
        }
        // Far above the ~5% chance level, far below AS's ~100% — the
        // accuracy drop the paper attributes to MACH.
        let rate = hits as f64 / trials as f64;
        assert!((0.25..0.95).contains(&rate), "{hits}/{trials}");
    }

    #[test]
    fn fewer_buckets_hurt_quality() {
        // The paper's criticism: aggressive compression costs accuracy.
        let w = clustered(512, 32, 5);
        let small =
            Mach::distill(&w, &MachConfig { repetitions: 2, buckets: 16, seed: 1 }, &[]).unwrap();
        let big =
            Mach::distill(&w, &MachConfig { repetitions: 6, buckets: 256, seed: 1 }, &[]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut agree = [0usize; 2];
        let trials = 30;
        for _ in 0..trials {
            let h: Vector = (0..32).map(|_| standard_normal(&mut rng)).collect();
            let exact = top_k_indices(w.matvec(&h).as_slice(), 1)[0];
            for (j, m) in [&small, &big].iter().enumerate() {
                let (logits, _) = m.classify(&h);
                if top_k_indices(logits.as_slice(), 1)[0] == exact {
                    agree[j] += 1;
                }
            }
        }
        assert!(agree[1] > agree[0], "big {} vs small {}", agree[1], agree[0]);
    }

    #[test]
    fn cost_scales_with_r_and_b() {
        let w = clustered(512, 32, 7);
        let a = Mach::distill(&w, &MachConfig { repetitions: 2, buckets: 64, seed: 0 }, &[])
            .unwrap();
        let b = Mach::distill(&w, &MachConfig { repetitions: 4, buckets: 128, seed: 0 }, &[])
            .unwrap();
        let h = Vector::zeros(32);
        let (_, ca) = a.classify(&h);
        let (_, cb) = b.classify(&h);
        assert_eq!(cb.fp32_macs, 4 * ca.fp32_macs);
    }
}
