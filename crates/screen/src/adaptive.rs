//! Online threshold adaptation.
//!
//! The FILTER threshold is calibrated offline on a validation set (paper
//! §4.2), but query distributions drift in production: a fixed threshold
//! then admits too many candidates (hurting latency) or too few (hurting
//! quality). [`ThresholdController`] closes the loop the way the hardware
//! naturally can — the `CandidateCount` status register already reports
//! each query's admitted count (paper Table 1's QUERY path), so the host
//! nudges the threshold register between queries with a multiplicative-
//! style integral controller.

/// Proportional-integral threshold controller targeting a candidate count.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdController {
    threshold: f32,
    target: usize,
    /// Step size per unit of relative error.
    gain: f32,
    /// Integral state (smoothed relative error).
    integral: f32,
}

impl ThresholdController {
    /// Creates a controller starting from `initial` threshold, aiming at
    /// `target` candidates per query.
    ///
    /// # Panics
    ///
    /// Panics if `target == 0` or `gain` is not finite and positive.
    pub fn new(initial: f32, target: usize, gain: f32) -> Self {
        assert!(target > 0, "target candidate count must be positive");
        assert!(gain.is_finite() && gain > 0.0, "gain must be positive");
        ThresholdController { threshold: initial, target, gain, integral: 0.0 }
    }

    /// Current threshold to program into the FILTER register.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The candidate budget being tracked.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Feeds back one query's observed candidate count and updates the
    /// threshold: too many candidates raises it, too few lowers it.
    pub fn observe(&mut self, observed: usize) {
        // Relative error in log space keeps the update scale-free.
        let ratio = (observed.max(1) as f32 / self.target as f32).ln();
        self.integral = 0.9 * self.integral + 0.1 * ratio;
        let step = self.gain * (ratio + 0.5 * self.integral);
        self.threshold += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::SelectionPolicy;
    use crate::screener::{Screener, ScreenerConfig};
    use crate::train::fit_least_squares;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::quant::Precision;
    use enmc_tensor::{Matrix, Vector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validated() {
        let _ = ThresholdController::new(0.0, 1, 0.1);
    }

    #[test]
    #[should_panic(expected = "target candidate count")]
    fn zero_target_rejected() {
        ThresholdController::new(0.0, 0, 0.1);
    }

    #[test]
    fn raises_threshold_when_over_budget() {
        let mut c = ThresholdController::new(0.0, 10, 0.1);
        c.observe(100);
        assert!(c.threshold() > 0.0);
    }

    #[test]
    fn lowers_threshold_when_under_budget() {
        let mut c = ThresholdController::new(0.0, 100, 0.1);
        c.observe(3);
        assert!(c.threshold() < 0.0);
    }

    /// Full loop: against a live screener, the controller converges to the
    /// target admitted count within a few dozen queries.
    #[test]
    fn converges_on_a_live_screener() {
        let mut rng = StdRng::seed_from_u64(7);
        let (l, d) = (2000, 64);
        let mut w = Matrix::zeros(l, d);
        for v in w.as_mut_slice() {
            *v = standard_normal(&mut rng) / (d as f32).sqrt();
        }
        let b = Vector::zeros(l);
        let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 2 };
        let mut screener = Screener::new(l, d, &cfg).expect("dims");
        let train: Vec<Vector> = (0..64)
            .map(|_| (0..d).map(|_| standard_normal(&mut rng)).collect())
            .collect();
        fit_least_squares(&mut screener, &w, &b, &train, 1e-4);

        let target = 60usize;
        let mut ctl = ThresholdController::new(0.0, target, 0.08);
        let mut last_counts = Vec::new();
        for q in 0..120 {
            let h: Vector = (0..d).map(|_| standard_normal(&mut rng)).collect();
            let approx = screener.screen(&h);
            let admitted = SelectionPolicy::Threshold(ctl.threshold())
                .select(approx.as_slice())
                .len();
            ctl.observe(admitted);
            if q >= 90 {
                last_counts.push(admitted);
            }
        }
        let mean: f64 =
            last_counts.iter().map(|&c| c as f64).sum::<f64>() / last_counts.len() as f64;
        assert!(
            (mean - target as f64).abs() < target as f64 * 0.5,
            "converged to {mean}, target {target}"
        );
    }

    #[test]
    fn stable_once_converged() {
        // If observations equal the target, the threshold settles.
        let mut c = ThresholdController::new(1.0, 50, 0.1);
        for _ in 0..50 {
            c.observe(50);
        }
        let before = c.threshold();
        c.observe(50);
        assert!((c.threshold() - before).abs() < 1e-3);
    }
}
