//! End-to-end approximate classification (paper §4.2, Fig. 6).
//!
//! [`ApproxClassifier`] owns the full classifier and a trained
//! [`Screener`]; each query runs screen → filter → candidates-only exact
//! computation → mix, and reports both the mixed logits and the cost
//! accounting used for speedup figures.

use crate::cost::ClassificationCost;
use crate::screener::Screener;
use enmc_tensor::select::{threshold_filter, top_k_indices};
use enmc_tensor::{Matrix, TensorError, Vector};

/// How candidates are selected from the approximate logits (paper §4.2:
/// "top-m searching or thresholding, where the threshold value can be tuned
/// on validation sets").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SelectionPolicy {
    /// Select exactly the `m` highest approximate logits.
    TopM(usize),
    /// Select every approximate logit above the threshold (the hardware
    /// FILTER instruction path).
    Threshold(f32),
}

impl SelectionPolicy {
    /// Applies the policy to approximate logits.
    pub fn select(&self, approx: &[f32]) -> Vec<usize> {
        match *self {
            SelectionPolicy::TopM(m) => top_k_indices(approx, m),
            SelectionPolicy::Threshold(t) => {
                threshold_filter(approx, t).into_iter().map(|c| c.index).collect()
            }
        }
    }
}

/// Output of one approximate classification.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxOutput {
    /// Mixed logits: exact for candidates, approximate elsewhere.
    pub logits: Vector,
    /// The candidate indices that received exact computation.
    pub candidates: Vec<usize>,
    /// Cost of this query (screening + candidates-only).
    pub cost: ClassificationCost,
}

/// A full classifier paired with its trained screening module.
#[derive(Debug, Clone)]
pub struct ApproxClassifier {
    weights: Matrix,
    bias: Vector,
    screener: Screener,
    policy: SelectionPolicy,
}

impl ApproxClassifier {
    /// Bundles a trained screener with its classifier.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the screener was built for
    /// different `(l, d)`.
    pub fn new(
        weights: Matrix,
        bias: Vector,
        screener: Screener,
        policy: SelectionPolicy,
    ) -> Result<Self, TensorError> {
        if screener.categories() != weights.rows() || screener.hidden_dim() != weights.cols() {
            return Err(TensorError::ShapeMismatch {
                op: "ApproxClassifier::new",
                expected: (weights.rows(), weights.cols()),
                found: (screener.categories(), screener.hidden_dim()),
            });
        }
        if bias.len() != weights.rows() {
            return Err(TensorError::ShapeMismatch {
                op: "ApproxClassifier::new",
                expected: (weights.rows(), 1),
                found: (bias.len(), 1),
            });
        }
        Ok(ApproxClassifier { weights, bias, screener, policy })
    }

    /// The candidate selection policy.
    pub fn policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// Replaces the selection policy (e.g. after threshold calibration).
    pub fn set_policy(&mut self, policy: SelectionPolicy) {
        self.policy = policy;
    }

    /// The full classifier weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The full classifier bias.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// The screening module.
    pub fn screener(&self) -> &Screener {
        &self.screener
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.weights.rows()
    }

    /// Exact full classification (the reference and the CPU baseline).
    pub fn full_logits(&self, h: &Vector) -> Vector {
        self.weights.matvec_bias(h, &self.bias)
    }

    /// Cost of one full classification at batch size 1.
    pub fn full_cost(&self) -> ClassificationCost {
        ClassificationCost::full(self.weights.rows(), self.weights.cols(), 1)
    }

    /// Runs the approximate pipeline for a batch of queries.
    ///
    /// Screening weights are streamed once for the whole batch (the
    /// hardware's weight-reuse path), so the per-query cost of the
    /// screening phase is amortized: the returned outputs carry the
    /// amortized accounting.
    ///
    /// # Panics
    ///
    /// Panics if any query's length differs from the hidden dimension or
    /// the batch is empty.
    pub fn classify_batch(&mut self, batch: &[Vector]) -> Vec<ApproxOutput> {
        self.freeze();
        self.classify_batch_ref(batch)
    }

    /// [`ApproxClassifier::classify_batch`] through a shared reference;
    /// requires [`ApproxClassifier::freeze`] first. Bit-identical to the
    /// `&mut self` path, and safe to call from several threads at once on
    /// disjoint batch shards.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, any query's length differs from the
    /// hidden dimension, or the classifier is not frozen.
    pub fn classify_batch_ref(&self, batch: &[Vector]) -> Vec<ApproxOutput> {
        assert!(!batch.is_empty(), "batch must be non-empty");
        let n = batch.len() as u64;
        let mut outs: Vec<ApproxOutput> =
            batch.iter().map(|h| self.classify_ref(h)).collect();
        // Amortize the weight-stream bytes and integer MACs' storage
        // traffic: the stream is read once per batch, not once per query.
        let stream_bytes = self.screener.weight_bytes();
        for out in &mut outs {
            out.cost.bytes_read =
                out.cost.bytes_read - stream_bytes + stream_bytes.div_ceil(n);
        }
        outs
    }

    /// Quantizes the screener weights for deployment so the classifier can
    /// serve queries through a shared reference
    /// ([`ApproxClassifier::classify_ref`]). Idempotent; called implicitly
    /// by the `&mut self` classification entry points.
    pub fn freeze(&mut self) {
        self.screener.freeze().expect("freeze cannot fail on trained weights");
    }

    /// Runs the approximate pipeline for one query.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from the hidden dimension.
    pub fn classify(&mut self, h: &Vector) -> ApproxOutput {
        self.freeze();
        self.classify_ref(h)
    }

    /// [`ApproxClassifier::classify`] through a shared reference; requires
    /// [`ApproxClassifier::freeze`] first.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from the hidden dimension or the
    /// classifier is not frozen.
    pub fn classify_ref(&self, h: &Vector) -> ApproxOutput {
        self.classify_ref_with(h, self.policy)
    }

    /// [`ApproxClassifier::classify_ref`] under an explicit selection
    /// policy, ignoring the configured one. This is the serving degrade
    /// path: one frozen classifier shared across threads can answer
    /// queries at different `(K, screening-level)` tiers concurrently,
    /// with no `&mut self` policy swap racing between them.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from the hidden dimension or the
    /// classifier is not frozen.
    pub fn classify_ref_with(&self, h: &Vector, policy: SelectionPolicy) -> ApproxOutput {
        let l = self.weights.rows();
        let d = self.weights.cols();
        let k = self.screener.reduced_dim();

        // (1) screening at the configured precision.
        let approx = self.screener.screen_ref(h);

        // (2) candidate selection.
        let candidates = policy.select(approx.as_slice());

        // (3) candidates-only exact computation.
        let exact = self.weights.matvec_rows(&candidates, h, &self.bias);

        // (4) mix.
        let mut logits = approx;
        for (idx, val) in exact {
            logits[idx] = val;
        }

        let m = candidates.len();
        let cost = ClassificationCost {
            // Projection (k·d MACs at FP32 on CPU; the sparse P has ~d·k/3
            // nonzeros but we charge the dense cost conservatively), plus
            // candidate rows at FP32.
            fp32_macs: (k * d + m * d) as u64,
            int_macs: (l * k) as u64,
            bytes_read: self.screener.weight_bytes() + (m * d * 4) as u64 + (d * 4) as u64,
            bytes_written: (l * 4) as u64,
        };
        ApproxOutput { logits, candidates, cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::screener::ScreenerConfig;
    use crate::train::fit_least_squares;
    use enmc_tensor::dist::standard_normal;
    use enmc_tensor::quant::Precision;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a *low-rank* classifier (rank 8 factors + small noise) — the
    /// structure real extreme classifiers have and screening exploits.
    fn build(l: usize, d: usize, policy: SelectionPolicy) -> (ApproxClassifier, Vec<Vector>) {
        let mut rng = StdRng::seed_from_u64(31);
        let rank = 8;
        let mut u = Matrix::zeros(l, rank);
        let mut v = Matrix::zeros(rank, d);
        for x in u.as_mut_slice() {
            *x = standard_normal(&mut rng);
        }
        for x in v.as_mut_slice() {
            *x = standard_normal(&mut rng) / (d as f32).sqrt();
        }
        let mut w = u.matmul(&v);
        for x in w.as_mut_slice() {
            *x += standard_normal(&mut rng) * 0.02 / (d as f32).sqrt();
        }
        let b = Vector::zeros(l);
        // Queries concentrate near classifier rows (in-distribution data):
        // h = 2·ŵ_t + noise, like a trained front-end would produce.
        let samples: Vec<Vector> = (0..64)
            .map(|_| {
                let t = rng.random_range(0..l);
                let row = w.row(t);
                let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
                row.iter()
                    .map(|&x| 2.0 * x / norm + standard_normal(&mut rng) / (d as f32).sqrt())
                    .collect()
            })
            .collect();
        let cfg = ScreenerConfig { scale: 0.5, precision: Precision::Fp32, per_row_scales: false, seed: 2 };
        let mut s = Screener::new(l, d, &cfg).unwrap();
        fit_least_squares(&mut s, &w, &b, &samples, 1e-3);
        let clf = ApproxClassifier::new(w, b, s, policy).unwrap();
        (clf, samples)
    }

    #[test]
    fn new_rejects_shape_mismatch() {
        let cfg = ScreenerConfig::default();
        let s = Screener::new(10, 8, &cfg).unwrap();
        let err =
            ApproxClassifier::new(Matrix::zeros(12, 8), Vector::zeros(12), s, SelectionPolicy::TopM(1));
        assert!(err.is_err());
    }

    #[test]
    fn candidates_get_exact_logits() {
        let (mut clf, samples) = build(64, 16, SelectionPolicy::TopM(8));
        let h = &samples[0];
        let full = clf.full_logits(h);
        let out = clf.classify(h);
        assert_eq!(out.candidates.len(), 8);
        for &c in &out.candidates {
            assert!(
                (out.logits[c] - full[c]).abs() < 1e-5,
                "candidate {c}: {} vs {}",
                out.logits[c],
                full[c]
            );
        }
    }

    #[test]
    fn top1_agrees_with_full_when_screener_good() {
        // k = 16 comfortably covers the rank-8 classifier structure.
        let (mut clf, samples) = build(64, 32, SelectionPolicy::TopM(8));
        let mut agree = 0;
        for h in &samples {
            let full = clf.full_logits(h);
            let out = clf.classify(h);
            let t_full = top_k_indices(full.as_slice(), 1)[0];
            let t_out = top_k_indices(out.logits.as_slice(), 1)[0];
            if t_full == t_out {
                agree += 1;
            }
        }
        let rate = agree as f64 / samples.len() as f64;
        assert!(rate > 0.85, "top-1 agreement {rate}");
    }

    #[test]
    fn classify_ref_with_overrides_policy_without_mutation() {
        let (mut clf, samples) = build(64, 16, SelectionPolicy::TopM(8));
        clf.freeze();
        let h = &samples[0];
        // An explicit policy matching the configured one is bit-identical
        // to the default path.
        let via_default = clf.classify_ref(h);
        let via_explicit = clf.classify_ref_with(h, SelectionPolicy::TopM(8));
        assert_eq!(via_default.candidates, via_explicit.candidates);
        assert_eq!(via_default.logits.as_slice(), via_explicit.logits.as_slice());
        // A degraded tier narrows the candidate set; the configured
        // policy is untouched.
        let degraded = clf.classify_ref_with(h, SelectionPolicy::TopM(2));
        assert_eq!(degraded.candidates.len(), 2);
        assert_eq!(clf.policy(), SelectionPolicy::TopM(8));
        assert!(degraded.cost.bytes_read < via_default.cost.bytes_read);
    }

    #[test]
    fn threshold_policy_uses_filter() {
        let (mut clf, samples) = build(64, 16, SelectionPolicy::Threshold(f32::INFINITY));
        let out = clf.classify(&samples[0]);
        assert!(out.candidates.is_empty());
        clf.set_policy(SelectionPolicy::Threshold(f32::NEG_INFINITY));
        let out = clf.classify(&samples[0]);
        assert_eq!(out.candidates.len(), 64);
    }

    #[test]
    fn cost_is_far_below_full() {
        // Paper-like configuration: scale 0.25 + INT4 screening weights.
        let mut rng = StdRng::seed_from_u64(77);
        let (l, d) = (2048, 128);
        let mut w = Matrix::zeros(l, d);
        for v in w.as_mut_slice() {
            *v = standard_normal(&mut rng) / (d as f32).sqrt();
        }
        let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 5 };
        let s = Screener::new(l, d, &cfg).unwrap();
        let mut clf =
            ApproxClassifier::new(w, Vector::zeros(l), s, SelectionPolicy::TopM(16)).unwrap();
        let h = Vector::from(vec![0.1; d]);
        let out = clf.classify(&h);
        let full = clf.full_cost();
        assert!(out.cost.total_bytes() * 8 < full.total_bytes(), "{out:?}");
        assert!(out.cost.fp32_macs * 8 < full.fp32_macs);
    }

    #[test]
    fn batch_amortizes_the_weight_stream() {
        let (mut clf, samples) = build(64, 32, SelectionPolicy::TopM(8));
        let single = clf.classify(&samples[0]).cost;
        let batch = clf.classify_batch(&samples[..4]);
        assert_eq!(batch.len(), 4);
        // Per-query bytes must drop when the stream is shared.
        assert!(batch[0].cost.bytes_read < single.bytes_read);
        // And the results themselves are identical to one-at-a-time runs.
        let again = clf.classify(&samples[0]);
        assert_eq!(batch[0].logits, again.logits);
        assert_eq!(batch[0].candidates, again.candidates);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_batch_rejected() {
        let (mut clf, _) = build(64, 32, SelectionPolicy::TopM(8));
        clf.classify_batch(&[]);
    }

    #[test]
    fn classify_ref_matches_classify() {
        let (mut clf, samples) = build(64, 32, SelectionPolicy::TopM(8));
        let expected: Vec<ApproxOutput> = samples.iter().map(|h| clf.classify(h)).collect();
        clf.freeze();
        let shared = &clf;
        let got: Vec<ApproxOutput> = samples.iter().map(|h| shared.classify_ref(h)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn classify_ref_requires_freeze() {
        let cfg = ScreenerConfig { precision: Precision::Int4, ..Default::default() };
        let s = Screener::new(16, 8, &cfg).unwrap();
        let clf = ApproxClassifier::new(
            Matrix::zeros(16, 8),
            Vector::zeros(16),
            s,
            SelectionPolicy::TopM(2),
        )
        .unwrap();
        clf.classify_ref(&Vector::zeros(8));
    }

    #[test]
    fn policy_select_topm_and_threshold() {
        let scores = [1.0, 5.0, 3.0];
        assert_eq!(SelectionPolicy::TopM(2).select(&scores), vec![1, 2]);
        assert_eq!(SelectionPolicy::Threshold(2.0).select(&scores), vec![1, 2]);
    }
}
