//! Two-level hierarchical softmax baseline.
//!
//! The oldest efficient-classification trick (Goodman'01, Morin &
//! Bengio'05, and the "class-based" softmax the paper's related work
//! brackets under approximation methods \[5, 37, 48\]): categories are
//! grouped into `√l`-ish clusters; inference scores the cluster layer
//! first (`C·d` MACs), then only the members of the top clusters
//! (`(l/C)·d` per cluster). Cost per query is `O(√l·d)` instead of
//! `O(l·d)`, but categories in unvisited clusters get no score — the same
//! truncation weakness as FGD, plus sensitivity to the clustering.
//!
//! Cluster assignments are learned offline here by k-means on the
//! classifier rows (the standard practice when the tree is not frequency
//! based); cluster scores use the centroid row.

use crate::cost::ClassificationCost;
use enmc_tensor::matrix::dot;
use enmc_tensor::select::top_k_indices;
use enmc_tensor::{Matrix, TensorError, Vector};

/// A two-level hierarchical classifier over a fixed weight matrix.
#[derive(Debug, Clone)]
pub struct Hierarchical {
    weights: Matrix,
    bias: Vector,
    /// Cluster centroids (`clusters × d`).
    centroids: Matrix,
    /// Members of each cluster.
    members: Vec<Vec<u32>>,
}

impl Hierarchical {
    /// Builds the hierarchy with `clusters` groups via `iterations` rounds
    /// of k-means on the classifier rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if inputs are empty or
    /// `clusters` exceeds the category count.
    pub fn build(
        weights: Matrix,
        bias: Vector,
        clusters: usize,
        iterations: usize,
    ) -> Result<Self, TensorError> {
        let (l, d) = weights.shape();
        if l == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("empty classifier"));
        }
        if clusters == 0 || clusters > l {
            return Err(TensorError::InvalidArgument("cluster count out of range"));
        }
        if bias.len() != l {
            return Err(TensorError::ShapeMismatch {
                op: "Hierarchical::build",
                expected: (l, 1),
                found: (bias.len(), 1),
            });
        }
        // k-means init: evenly strided rows.
        let mut centroids = Matrix::zeros(clusters, d);
        for c in 0..clusters {
            let src = weights.row(c * l / clusters).to_vec();
            centroids.row_mut(c).copy_from_slice(&src);
        }
        let mut assign = vec![0u32; l];
        for _ in 0..iterations.max(1) {
            // Assign.
            for i in 0..l {
                let row = weights.row(i);
                let mut best = 0usize;
                let mut best_d = f32::INFINITY;
                for c in 0..clusters {
                    let cent = centroids.row(c);
                    let dist: f32 =
                        row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_d {
                        best_d = dist;
                        best = c;
                    }
                }
                assign[i] = best as u32;
            }
            // Update.
            let mut counts = vec![0u32; clusters];
            let mut sums = Matrix::zeros(clusters, d);
            for i in 0..l {
                let c = assign[i] as usize;
                counts[c] += 1;
                let row = weights.row(i).to_vec();
                for (s, v) in sums.row_mut(c).iter_mut().zip(&row) {
                    *s += *v;
                }
            }
            for c in 0..clusters {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    let row = sums.row(c).to_vec();
                    for (dst, v) in centroids.row_mut(c).iter_mut().zip(&row) {
                        *dst = v * inv;
                    }
                }
            }
        }
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); clusters];
        for (i, &c) in assign.iter().enumerate() {
            members[c as usize].push(i as u32);
        }
        Ok(Hierarchical { weights, bias, centroids, members })
    }

    /// Number of clusters.
    pub fn clusters(&self) -> usize {
        self.centroids.rows()
    }

    /// Classifies one query by visiting the `top_clusters` best clusters.
    ///
    /// Returns `(logits, scored_indices, cost)`; unvisited categories get
    /// a floor value (truncation, as in FGD).
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from `d`.
    pub fn classify(
        &self,
        h: &Vector,
        top_clusters: usize,
    ) -> (Vector, Vec<usize>, ClassificationCost) {
        let (l, d) = self.weights.shape();
        let c = self.centroids.rows();
        let cluster_scores = self.centroids.matvec(h);
        let chosen = top_k_indices(cluster_scores.as_slice(), top_clusters.max(1));
        let mut scored = Vec::new();
        let mut best_min = f32::INFINITY;
        let mut logits = vec![f32::NAN; l];
        for &cl in &chosen {
            for &i in &self.members[cl] {
                let i = i as usize;
                let z = dot(self.weights.row(i), h.as_slice()) + self.bias[i];
                logits[i] = z;
                best_min = best_min.min(z);
                scored.push(i);
            }
        }
        let floor = if best_min.is_finite() { best_min - 10.0 } else { -10.0 };
        for v in &mut logits {
            if v.is_nan() {
                *v = floor;
            }
        }
        let visited = scored.len();
        let cost = ClassificationCost {
            fp32_macs: ((c + visited) * d) as u64,
            int_macs: 0,
            bytes_read: ((c + visited) * d * 4) as u64,
            bytes_written: (l * 4) as u64,
        };
        (Vector::from(logits), scored, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::dist::standard_normal;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(l: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let groups = 10;
        let mut centres = Matrix::zeros(groups, d);
        for v in centres.as_mut_slice() {
            *v = standard_normal(&mut rng);
        }
        let mut w = Matrix::zeros(l, d);
        for i in 0..l {
            let c: Vec<f32> = centres.row(i % groups).to_vec();
            for (x, ctr) in w.row_mut(i).iter_mut().zip(&c) {
                *x = ctr + standard_normal(&mut rng) * 0.25;
            }
        }
        w
    }

    #[test]
    fn build_validates_inputs() {
        assert!(Hierarchical::build(Matrix::zeros(0, 4), Vector::zeros(0), 2, 3).is_err());
        assert!(Hierarchical::build(Matrix::zeros(4, 4), Vector::zeros(4), 0, 3).is_err());
        assert!(Hierarchical::build(Matrix::zeros(4, 4), Vector::zeros(4), 9, 3).is_err());
        assert!(Hierarchical::build(Matrix::zeros(4, 4), Vector::zeros(5), 2, 3).is_err());
    }

    #[test]
    fn members_partition_the_categories() {
        let w = clustered(300, 16, 1);
        let h = Hierarchical::build(w, Vector::zeros(300), 12, 4).unwrap();
        let total: usize = (0..h.clusters()).map(|c| h.members[c].len()).sum();
        assert_eq!(total, 300);
        let mut seen = std::collections::HashSet::new();
        for c in 0..h.clusters() {
            for &i in &h.members[c] {
                assert!(seen.insert(i), "category {i} in two clusters");
            }
        }
    }

    #[test]
    fn kmeans_recovers_planted_clusters() {
        // With 10 planted groups and 10 k-means clusters, most categories
        // of a group should land together.
        let w = clustered(400, 16, 2);
        let h = Hierarchical::build(w, Vector::zeros(400), 10, 8).unwrap();
        // Purity proxy: the largest cluster should be about l/10 = 40, not
        // everything in one bucket or fully fragmented.
        let sizes: Vec<usize> = (0..10).map(|c| h.members[c].len()).collect();
        let max = *sizes.iter().max().expect("nonempty");
        assert!((20..=120).contains(&max), "sizes {sizes:?}");
    }

    #[test]
    fn visited_logits_are_exact() {
        let w = clustered(200, 12, 3);
        let bias: Vector = (0..200).map(|i| (i % 3) as f32 * 0.1).collect();
        let hier = Hierarchical::build(w.clone(), bias.clone(), 8, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let h: Vector = (0..12).map(|_| standard_normal(&mut rng)).collect();
        let (logits, scored, _) = hier.classify(&h, 3);
        let exact = w.matvec_bias(&h, &bias);
        for &i in &scored {
            assert!((logits[i] - exact[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn finds_top1_when_clusters_align() {
        // Seeds chosen so the planted groups are well separated and k-means
        // recovers them; the assertion is about screening quality once the
        // clustering aligns, not about k-means luck on a hard draw.
        let w = clustered(400, 16, 2);
        let hier = Hierarchical::build(w.clone(), Vector::zeros(400), 10, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        let trials = 40;
        for _ in 0..trials {
            let t = rng.random_range(0..400usize);
            let h: Vector = w
                .row(t)
                .iter()
                .map(|&x| 2.0 * x + standard_normal(&mut rng) * 0.1)
                .collect();
            let exact_top = top_k_indices(w.matvec(&h).as_slice(), 1)[0];
            let (logits, ..) = hier.classify(&h, 2);
            if top_k_indices(logits.as_slice(), 1)[0] == exact_top {
                hits += 1;
            }
        }
        assert!(hits as f64 / trials as f64 > 0.8, "{hits}/{trials}");
    }

    #[test]
    fn cost_scales_with_visited_clusters() {
        let w = clustered(400, 16, 7);
        let hier = Hierarchical::build(w, Vector::zeros(400), 10, 5).unwrap();
        let h = Vector::from(vec![0.2; 16]);
        let (_, _, c1) = hier.classify(&h, 1);
        let (_, _, c4) = hier.classify(&h, 4);
        assert!(c4.fp32_macs > c1.fp32_macs);
        // Both far below brute force.
        assert!(c4.fp32_macs < 400 * 16);
    }
}
