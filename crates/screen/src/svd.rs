//! SVD-softmax baseline (Shim et al., NeurIPS'17 — the paper's reference \[37\]).
//!
//! SVD-softmax factorizes the classifier `W = U Σ Vᵀ` offline and at
//! inference:
//!
//! 1. transforms the hidden vector once: `h̃ = Vᵀ h` (`d²` MACs);
//! 2. computes a *preview* for every category using only the first `r`
//!    columns of `B = U Σ` (the "preview window", `l·r` MACs) — the
//!    singular-value ordering makes the leading columns most informative;
//! 3. refines the top-`N` preview scores with the full `d`-wide product.
//!
//! Unlike approximate screening the preview runs at FP32 and the preview
//! window must be wide enough to respect the classifier's spectrum — the
//! paper measures its computation overhead at ~4× that of screening.
//!
//! The SVD itself is computed from the eigendecomposition of the `d × d`
//! Gram matrix `WᵀW` (cyclic Jacobi), avoiding any `l × l` work.

use crate::cost::ClassificationCost;
use enmc_tensor::select::top_k_indices;
use enmc_tensor::{Matrix, TensorError, Vector};

/// The offline-factorized SVD-softmax classifier.
#[derive(Debug, Clone)]
pub struct SvdSoftmax {
    /// `B = U Σ`, `l × d`, columns ordered by decreasing singular value.
    b: Matrix,
    /// `V`, `d × d`, columns are right singular vectors (same order).
    v: Matrix,
    bias: Vector,
    /// Preview window width `r`.
    window: usize,
    /// Refinement count `N`.
    refine: usize,
}

impl SvdSoftmax {
    /// Factorizes `weights` with preview window `window` and top-`refine`
    /// full-precision refinement.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `window` is zero or
    /// exceeds `d`, or the matrix is empty.
    pub fn new(
        weights: &Matrix,
        bias: Vector,
        window: usize,
        refine: usize,
    ) -> Result<Self, TensorError> {
        let (l, d) = weights.shape();
        if l == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("empty classifier"));
        }
        if window == 0 || window > d {
            return Err(TensorError::InvalidArgument("preview window out of range"));
        }
        if bias.len() != l {
            return Err(TensorError::ShapeMismatch {
                op: "SvdSoftmax::new",
                expected: (l, 1),
                found: (bias.len(), 1),
            });
        }
        // Gram matrix G = WᵀW (d × d), eigendecomposition via Jacobi.
        let gram = gram_matrix(weights);
        let (mut eigvals, mut v) = jacobi_eigen(&gram, 64);
        // Sort by decreasing eigenvalue and reorder V's columns.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigvals[b].partial_cmp(&eigvals[a]).expect("finite eigenvalues"));
        let sorted_vals: Vec<f32> = order.iter().map(|&i| eigvals[i]).collect();
        let mut sorted_v = Matrix::zeros(d, d);
        for (new_c, &old_c) in order.iter().enumerate() {
            for r in 0..d {
                sorted_v.set(r, new_c, v.get(r, old_c));
            }
        }
        eigvals = sorted_vals;
        v = sorted_v;
        let _ = &eigvals; // singular values are implicit in B = W·V
        // B = W V  (l × d).
        let b = weights.matmul(&v);
        Ok(SvdSoftmax { b, v, bias, window, refine })
    }

    /// Preview window width `r`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Refinement count `N`.
    pub fn refine(&self) -> usize {
        self.refine
    }

    /// Number of categories.
    pub fn categories(&self) -> usize {
        self.b.rows()
    }

    /// Runs SVD-softmax for one query: returns mixed logits (refined for
    /// the top-N preview candidates, preview elsewhere), the refined
    /// indices, and the cost.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from `d`.
    pub fn classify(&self, h: &Vector) -> (Vector, Vec<usize>, ClassificationCost) {
        self.classify_refined(h, self.refine)
    }

    /// [`SvdSoftmax::classify`] with an explicit refinement count, so one
    /// factorization can serve a whole quality/speedup sweep.
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` differs from `d`.
    pub fn classify_refined(
        &self,
        h: &Vector,
        refine: usize,
    ) -> (Vector, Vec<usize>, ClassificationCost) {
        let (l, d) = self.b.shape();
        let r = self.window;
        // h̃ = Vᵀ h.
        let ht = self.v.matvec_t(h);
        let hts = ht.as_slice();
        // Preview: first r columns of B.
        let mut logits: Vector = (0..l)
            .map(|i| {
                let row = self.b.row(i);
                let mut acc = self.bias[i];
                for c in 0..r {
                    acc += row[c] * hts[c];
                }
                acc
            })
            .collect();
        // Refine top-N with the full width.
        let cands = top_k_indices(logits.as_slice(), refine);
        for &i in &cands {
            let row = self.b.row(i);
            let mut acc = self.bias[i];
            for c in 0..d {
                acc += row[c] * hts[c];
            }
            logits[i] = acc;
        }
        let cost = ClassificationCost {
            fp32_macs: (d * d + l * r + refine * d) as u64,
            int_macs: 0,
            // Preview columns of B streamed at FP32 + V + refined rows.
            bytes_read: (l * r * 4 + d * d * 4 + refine * d * 4 + l * 4) as u64,
            bytes_written: (l * 4) as u64,
        };
        (logits, cands, cost)
    }
}

/// `WᵀW` without materializing the transpose.
fn gram_matrix(w: &Matrix) -> Matrix {
    let (l, d) = w.shape();
    let mut g = Matrix::zeros(d, d);
    for r in 0..l {
        let row = w.row(r);
        for i in 0..d {
            let wi = row[i];
            if wi == 0.0 {
                continue;
            }
            let grow = g.row_mut(i);
            for j in 0..d {
                grow[j] += wi * row[j];
            }
        }
    }
    g
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
///
/// Returns `(eigenvalues, V)` with `A = V diag(λ) Vᵀ`. `sweeps` bounds the
/// number of full cyclic sweeps; convergence is checked against the
/// off-diagonal norm.
fn jacobi_eigen(a: &Matrix, sweeps: usize) -> (Vec<f32>, Matrix) {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi: square matrix required");
    let mut m = a.clone();
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v.set(i, i, 1.0);
    }
    for _ in 0..sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0_f64;
        for i in 0..n {
            for j in i + 1..n {
                off += (m.get(i, j) as f64).powi(2);
            }
        }
        if off.sqrt() < 1e-9 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = 0.5 * (aqq - app) as f64 / apq as f64;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                let (c, s) = (c as f32, s as f32);
                // Rotate rows/cols p and q.
                for i in 0..n {
                    let mip = m.get(i, p);
                    let miq = m.get(i, q);
                    m.set(i, p, c * mip - s * miq);
                    m.set(i, q, s * mip + c * miq);
                }
                for i in 0..n {
                    let mpi = m.get(p, i);
                    let mqi = m.get(q, i);
                    m.set(p, i, c * mpi - s * mqi);
                    m.set(q, i, s * mpi + c * mqi);
                }
                for i in 0..n {
                    let vip = v.get(i, p);
                    let viq = v.get(i, q);
                    v.set(i, p, c * vip - s * viq);
                    v.set(i, q, s * vip + c * viq);
                }
            }
        }
    }
    let eig = (0..n).map(|i| m.get(i, i)).collect();
    (eig, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::dist::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_classifier(l: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Matrix::zeros(l, d);
        for v in w.as_mut_slice() {
            *v = standard_normal(&mut rng) / (d as f32).sqrt();
        }
        w
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[&[2.0, 1.0][..], &[1.0, 2.0][..]]);
        let (mut eig, _) = jacobi_eigen(&a, 32);
        eig.sort_by(|x, y| y.partial_cmp(x).unwrap());
        assert!((eig[0] - 3.0).abs() < 1e-4);
        assert!((eig[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let w = random_classifier(8, 8, 1);
        let mut sym = w.matmul(&w.transpose());
        for i in 0..8 {
            sym.set(i, i, sym.get(i, i) + 0.5);
        }
        let (eig, v) = jacobi_eigen(&sym, 64);
        // Reconstruct V diag(eig) Vᵀ.
        let mut lam = Matrix::zeros(8, 8);
        for i in 0..8 {
            lam.set(i, i, eig[i]);
        }
        let rec = v.matmul(&lam).matmul(&v.transpose());
        for i in 0..8 {
            for j in 0..8 {
                assert!((rec.get(i, j) - sym.get(i, j)).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn new_validates_window() {
        let w = random_classifier(16, 8, 2);
        assert!(SvdSoftmax::new(&w, Vector::zeros(16), 0, 4).is_err());
        assert!(SvdSoftmax::new(&w, Vector::zeros(16), 9, 4).is_err());
        assert!(SvdSoftmax::new(&w, Vector::zeros(15), 4, 4).is_err());
    }

    #[test]
    fn full_window_is_exact() {
        // window == d means the preview is the exact product (orthogonal V).
        let w = random_classifier(32, 8, 3);
        let svd = SvdSoftmax::new(&w, Vector::zeros(32), 8, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let h: Vector = (0..8).map(|_| standard_normal(&mut rng)).collect();
        let (logits, ..) = svd.classify(&h);
        let exact = w.matvec(&h);
        for (a, b) in logits.as_slice().iter().zip(exact.as_slice()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn refined_candidates_are_exact() {
        let w = random_classifier(64, 16, 5);
        let svd = SvdSoftmax::new(&w, Vector::zeros(64), 4, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let h: Vector = (0..16).map(|_| standard_normal(&mut rng)).collect();
        let (logits, cands, _) = svd.classify(&h);
        let exact = w.matvec(&h);
        assert_eq!(cands.len(), 8);
        for &c in &cands {
            assert!((logits[c] - exact[c]).abs() < 1e-3);
        }
    }

    #[test]
    fn preview_identifies_top1_often() {
        // On a low-rank-ish classifier the preview should surface the true
        // argmax into the refined set most of the time.
        let base = random_classifier(16, 16, 7);
        let mix = random_classifier(128, 16, 8);
        let w = mix.matmul(&base); // effective rank ≤ 16, shaped 128×16
        let svd = SvdSoftmax::new(&w, Vector::zeros(128), 8, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut hit = 0;
        let trials = 40;
        for _ in 0..trials {
            let h: Vector = (0..16).map(|_| standard_normal(&mut rng)).collect();
            let exact = w.matvec(&h);
            let top = top_k_indices(exact.as_slice(), 1)[0];
            let (_, cands, _) = svd.classify(&h);
            if cands.contains(&top) {
                hit += 1;
            }
        }
        assert!(hit as f64 / trials as f64 > 0.8, "hit rate {}", hit as f64 / trials as f64);
    }

    #[test]
    fn cost_grows_with_window() {
        let w = random_classifier(64, 16, 10);
        let narrow = SvdSoftmax::new(&w, Vector::zeros(64), 2, 4).unwrap();
        let wide = SvdSoftmax::new(&w, Vector::zeros(64), 8, 4).unwrap();
        let h = Vector::zeros(16);
        let (_, _, c1) = narrow.classify(&h);
        let (_, _, c2) = wide.classify(&h);
        assert!(c2.fp32_macs > c1.fp32_macs);
        assert!(c2.bytes_read > c1.bytes_read);
    }
}
