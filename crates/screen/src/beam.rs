//! Beam-search decoding over an approximate classifier.
//!
//! The paper motivates screening with translation: "we only use the top-K
//! values of softmax-normalized probabilities to select the translated
//! words, where K is the beam search size" (§3.1). This module implements
//! that consumer — a beam decoder that, at every step, expands each
//! hypothesis with the top-K probabilities from a classification — so
//! beam-level fidelity (do the approximate and exact decoders keep the
//! same beams?) can be measured directly.
//!
//! The "front-end" is abstract: a callback maps (hypothesis last token,
//! step) → hidden state. Tests and harnesses drive it with the synthetic
//! trace generator.

use enmc_tensor::activation::softmax;
use enmc_tensor::select::top_k_indices;
use enmc_tensor::Vector;

/// One beam hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypothesis {
    /// Emitted token sequence.
    pub tokens: Vec<usize>,
    /// Accumulated log-probability.
    pub log_prob: f64,
}

impl Hypothesis {
    fn empty() -> Self {
        Hypothesis { tokens: Vec::new(), log_prob: 0.0 }
    }
}

/// Runs beam search for `steps` steps with width `beam`.
///
/// `classify` maps a hidden state to logits over the vocabulary;
/// `front_end` maps (previous token, step index) to the next hidden state
/// (`None` as the previous token for step 0).
///
/// Returns hypotheses sorted by descending log-probability.
///
/// # Panics
///
/// Panics if `beam == 0` or `steps == 0`.
pub fn beam_search<C, F>(
    beam: usize,
    steps: usize,
    mut classify: C,
    mut front_end: F,
) -> Vec<Hypothesis>
where
    C: FnMut(&Vector) -> Vector,
    F: FnMut(Option<usize>, usize) -> Vector,
{
    assert!(beam > 0, "beam width must be positive");
    assert!(steps > 0, "need at least one step");
    let mut beams = vec![Hypothesis::empty()];
    for step in 0..steps {
        let mut expanded: Vec<Hypothesis> = Vec::with_capacity(beams.len() * beam);
        for hyp in &beams {
            let hidden = front_end(hyp.tokens.last().copied(), step);
            let logits = classify(&hidden);
            let probs = softmax(logits.as_slice());
            for &tok in &top_k_indices(&probs, beam) {
                let mut tokens = hyp.tokens.clone();
                tokens.push(tok);
                expanded.push(Hypothesis {
                    tokens,
                    log_prob: hyp.log_prob + (probs[tok].max(1e-30) as f64).ln(),
                });
            }
        }
        expanded.sort_by(|a, b| {
            b.log_prob.partial_cmp(&a.log_prob).expect("finite log probs")
        });
        expanded.truncate(beam);
        beams = expanded;
    }
    beams
}

/// Fraction of positions where two decoders' best hypotheses agree.
pub fn sequence_agreement(a: &Hypothesis, b: &Hypothesis) -> f64 {
    if a.tokens.is_empty() && b.tokens.is_empty() {
        return 1.0;
    }
    let n = a.tokens.len().max(b.tokens.len());
    let same = a.tokens.iter().zip(&b.tokens).filter(|(x, y)| x == y).count();
    same as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::Matrix;

    /// A toy deterministic "language": logits favour (prev_token + 1) mod l.
    fn successor_world(l: usize) -> (impl FnMut(&Vector) -> Vector, impl FnMut(Option<usize>, usize) -> Vector)
    {
        let w = {
            let mut m = Matrix::zeros(l, l);
            for i in 0..l {
                m.set(i, i, 4.0); // logit bump for the encoded favourite
            }
            m
        };
        let classify = move |h: &Vector| w.matvec(h);
        let front_end = move |prev: Option<usize>, _step: usize| {
            let favourite = prev.map(|p| (p + 1) % l).unwrap_or(0);
            let mut h = vec![0.1_f32; l];
            h[favourite] = 1.0;
            Vector::from(h)
        };
        (classify, front_end)
    }

    #[test]
    fn greedy_beam_follows_the_successor_chain() {
        let (classify, front_end) = successor_world(10);
        let beams = beam_search(1, 5, classify, front_end);
        assert_eq!(beams.len(), 1);
        assert_eq!(beams[0].tokens, vec![0, 1, 2, 3, 4]);
        assert!(beams[0].log_prob < 0.0);
    }

    #[test]
    fn wider_beams_keep_more_hypotheses() {
        let (classify, front_end) = successor_world(10);
        let beams = beam_search(4, 3, classify, front_end);
        assert_eq!(beams.len(), 4);
        // Best hypothesis first, log-probs non-increasing.
        for pair in beams.windows(2) {
            assert!(pair[0].log_prob >= pair[1].log_prob);
        }
        // The greedy chain must be the top beam.
        assert_eq!(beams[0].tokens, vec![0, 1, 2]);
    }

    #[test]
    fn beam_scores_accumulate_logs() {
        let (classify, front_end) = successor_world(5);
        let one = beam_search(1, 1, classify, front_end);
        let (classify, front_end) = successor_world(5);
        let two = beam_search(1, 2, classify, front_end);
        assert!(two[0].log_prob < one[0].log_prob, "longer sequences less probable");
    }

    #[test]
    fn agreement_metric() {
        let a = Hypothesis { tokens: vec![1, 2, 3, 4], log_prob: 0.0 };
        let b = Hypothesis { tokens: vec![1, 2, 9, 4], log_prob: 0.0 };
        assert!((sequence_agreement(&a, &b) - 0.75).abs() < 1e-12);
        let empty = Hypothesis::empty();
        assert_eq!(sequence_agreement(&empty, &empty), 1.0);
    }

    #[test]
    fn approximate_decoder_tracks_exact_decoder() {
        // Exact vs "slightly noisy" classifier: the beams should still
        // agree at most positions.
        let (exact_classify, front_end) = successor_world(20);
        let exact = beam_search(2, 8, exact_classify, front_end);
        let (mut noisy_classify, front_end) = {
            let (c, f) = successor_world(20);
            (c, f)
        };
        let noisy = beam_search(
            2,
            8,
            move |h| {
                let mut z = noisy_classify(h);
                for (i, v) in z.as_mut_slice().iter_mut().enumerate() {
                    *v += ((i * 2654435761) % 97) as f32 * 1e-4; // tiny bias
                }
                z
            },
            front_end,
        );
        assert!(sequence_agreement(&exact[0], &noisy[0]) > 0.8);
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_beam_rejected() {
        let (c, f) = successor_world(4);
        beam_search(0, 1, c, f);
    }
}
