//! Performance attribution and regression observability.
//!
//! Three pieces, layered on [`enmc_obs`]:
//!
//! * [`cost`] — top-down cost attribution: a deterministic tree that
//!   splits a run's simulated cycles by pipeline phase (screen / gather /
//!   activation, compute vs memory stall) and its energy by component
//!   (per-channel DRAM access, DRAM static, logic), flattened into
//!   [`enmc_obs::BreakdownRow`]s for the run report. Every leaf is a
//!   `counter × constant` product over deterministic counters, so the
//!   tree is bit-identical for any host thread count and the leaves sum
//!   *exactly* to the reported totals by construction.
//! * [`selfprof`] — a host-side self-profiler: scoped span aggregation
//!   with inclusive/exclusive wall-time rollups. Wall times are
//!   nondeterministic by nature; keep this output behind a flag when a
//!   consumer wants byte-stable stdout.
//! * [`bench`] — the bench-trajectory harness: stable `BENCH_<name>.json`
//!   records (deterministic simulation metrics plus median-of-N host
//!   wall times) and a differ that gates deterministic metrics at zero
//!   tolerance while holding wall clocks only to a noise threshold.

pub mod bench;
pub mod cost;
pub mod selfprof;

pub use bench::{BenchRecord, DiffReport, DiffRow, MetricKind, Verdict};
pub use cost::{attribute, CostAttribution, CostNode};
pub use selfprof::SelfProfiler;
