//! Host-side self-profiler: scoped span aggregation.
//!
//! A [`SelfProfiler`] tracks a stack of named spans over host wall time
//! and aggregates them into per-name rollups with *inclusive* (span
//! start to end) and *exclusive* (inclusive minus child spans) time.
//! Nested calls to the same name accumulate into one rollup entry.
//!
//! Wall time is nondeterministic; report it separately from the
//! deterministic cost trees (the `enmc profile` command only prints this
//! rollup behind `--self-profile` so its default output stays
//! byte-stable).

use std::collections::BTreeMap;
use std::time::Instant;

/// Aggregate timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStat {
    /// Times the span was entered.
    pub calls: u64,
    /// Total nanoseconds between enter and exit.
    pub inclusive_ns: f64,
    /// Inclusive time minus time spent in child spans.
    pub exclusive_ns: f64,
}

/// One in-flight stack frame.
struct Frame {
    name: String,
    start: Instant,
    child_ns: f64,
}

/// Scoped span aggregator over host wall time.
#[derive(Default)]
pub struct SelfProfiler {
    stack: Vec<Frame>,
    rollup: BTreeMap<String, SpanStat>,
}

impl SelfProfiler {
    /// An empty profiler.
    pub fn new() -> SelfProfiler {
        SelfProfiler::default()
    }

    /// Enters a span.
    pub fn begin(&mut self, name: &str) {
        self.stack.push(Frame { name: name.to_string(), start: Instant::now(), child_ns: 0.0 });
    }

    /// Exits the innermost span, which must be named `name`.
    ///
    /// # Panics
    ///
    /// Panics if no span is open or the innermost open span has a
    /// different name (unbalanced instrumentation is a bug worth
    /// failing loudly on).
    pub fn end(&mut self, name: &str) {
        let frame = self.stack.pop().unwrap_or_else(|| panic!("end('{name}') with no open span"));
        assert_eq!(
            frame.name, name,
            "unbalanced spans: end('{name}') while '{}' is innermost",
            frame.name
        );
        let ns = frame.start.elapsed().as_nanos() as f64;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += ns;
        }
        let stat = self.rollup.entry(frame.name).or_default();
        stat.calls += 1;
        stat.inclusive_ns += ns;
        stat.exclusive_ns += ns - frame.child_ns;
    }

    /// Runs `f` inside a span named `name`.
    pub fn scope<T>(&mut self, name: &str, f: impl FnOnce(&mut SelfProfiler) -> T) -> T {
        self.begin(name);
        let out = f(self);
        self.end(name);
        out
    }

    /// Number of spans still open.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }

    /// The rollup, sorted by exclusive time descending (ties by name so
    /// the order is total).
    pub fn rollup(&self) -> Vec<(String, SpanStat)> {
        let mut rows: Vec<(String, SpanStat)> =
            self.rollup.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_by(|a, b| {
            b.1.exclusive_ns.total_cmp(&a.1.exclusive_ns).then_with(|| a.0.cmp(&b.0))
        });
        rows
    }

    /// Renders the rollup as an aligned text table.
    pub fn render(&self) -> String {
        let rows = self.rollup();
        let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
        let mut out = format!(
            "{:<width$}  {:>6}  {:>14}  {:>14}\n",
            "span", "calls", "exclusive_us", "inclusive_us"
        );
        for (name, stat) in &rows {
            out.push_str(&format!(
                "{name:<width$}  {:>6}  {:>14.1}  {:>14.1}\n",
                stat.calls,
                stat.exclusive_ns / 1e3,
                stat.inclusive_ns / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_split_exclusive_time() {
        let mut p = SelfProfiler::new();
        p.begin("outer");
        p.begin("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.end("inner");
        p.end("outer");
        let rows = p.rollup();
        assert_eq!(rows.len(), 2);
        let get = |n: &str| rows.iter().find(|(k, _)| k == n).map(|(_, s)| *s).unwrap();
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Outer's exclusive time excludes the inner sleep.
        assert!(outer.exclusive_ns <= outer.inclusive_ns);
        assert!(inner.inclusive_ns <= outer.inclusive_ns);
        assert!(outer.exclusive_ns < inner.inclusive_ns + outer.inclusive_ns);
        assert!((outer.exclusive_ns - (outer.inclusive_ns - inner.inclusive_ns)).abs() < 1.0);
    }

    #[test]
    fn repeated_spans_accumulate() {
        let mut p = SelfProfiler::new();
        for _ in 0..3 {
            p.scope("work", |_| {});
        }
        let rows = p.rollup();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.calls, 3);
        assert_eq!(p.open_spans(), 0);
    }

    #[test]
    fn scope_returns_value_and_balances() {
        let mut p = SelfProfiler::new();
        let v = p.scope("outer", |p| p.scope("inner", |_| 42));
        assert_eq!(v, 42);
        assert_eq!(p.open_spans(), 0);
    }

    #[test]
    fn rollup_sorts_by_exclusive_descending() {
        let mut p = SelfProfiler::new();
        p.scope("fast", |_| {});
        p.scope("slow", |_| std::thread::sleep(std::time::Duration::from_millis(3)));
        let rows = p.rollup();
        assert_eq!(rows[0].0, "slow");
    }

    #[test]
    fn render_lists_every_span() {
        let mut p = SelfProfiler::new();
        p.scope("alpha", |p| p.scope("beta", |_| {}));
        let text = p.render();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.starts_with("span"));
    }

    #[test]
    #[should_panic(expected = "unbalanced spans")]
    fn mismatched_end_panics() {
        let mut p = SelfProfiler::new();
        p.begin("a");
        p.end("b");
    }

    #[test]
    #[should_panic(expected = "no open span")]
    fn end_without_begin_panics() {
        SelfProfiler::new().end("ghost");
    }
}
