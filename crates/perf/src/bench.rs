//! Bench-trajectory records and the regression differ.
//!
//! Bench binaries emit one stable `BENCH_<name>.json` per run: a
//! [`BenchRecord`] holding *deterministic* metrics (simulated cycles,
//! energy, quality — bit-identical across hosts and thread counts) and
//! *wall* metrics (median-of-N host timings, noisy by nature). [`diff`]
//! compares two records with the matching policies: deterministic
//! metrics are gated at **zero tolerance** — any drift, in either
//! direction, fails so the trajectory is always acknowledged — while
//! wall metrics only fail when the new median regresses past a noise
//! threshold.

use enmc_obs::json::Value;

/// Version stamp of the `BENCH_<name>.json` format.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Which comparison policy a metric uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Bit-stable simulation output; compared at zero tolerance.
    Deterministic,
    /// Host wall time; compared against a noise tolerance.
    Wall,
}

/// A recorded wall-time metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WallStat {
    /// Median of the recorded samples, nanoseconds.
    pub median_ns: f64,
    /// How many samples the median was taken over.
    pub samples: u64,
}

/// One bench run's stable record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Bench name (the `<name>` in `BENCH_<name>.json`).
    pub name: String,
    /// Format version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Deterministic metrics, kept sorted by name.
    pub deterministic: Vec<(String, f64)>,
    /// Wall metrics, kept sorted by name.
    pub wall: Vec<(String, WallStat)>,
}

/// Median of `samples` (midpoint average for even counts).
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

impl BenchRecord {
    /// An empty record named `name`.
    pub fn new(name: &str) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            schema: BENCH_SCHEMA_VERSION,
            deterministic: Vec::new(),
            wall: Vec::new(),
        }
    }

    /// Records (or overwrites) a deterministic metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        upsert(&mut self.deterministic, name, value);
    }

    /// Records (or overwrites) a wall metric as the median of
    /// `samples_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `samples_ns` is empty.
    pub fn wall_metric(&mut self, name: &str, samples_ns: &[f64]) {
        let stat = WallStat { median_ns: median(samples_ns), samples: samples_ns.len() as u64 };
        upsert(&mut self.wall, name, stat);
    }

    /// Serializes to the stable JSON format (sorted keys, compact).
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.fract() == 0.0 && v.abs() < 9.0e15 {
                Value::Int(v as i64)
            } else {
                Value::Num(v)
            }
        };
        let deterministic = Value::Obj(
            self.deterministic.iter().map(|(k, v)| (k.clone(), num(*v))).collect(),
        );
        let wall = Value::Obj(
            self.wall
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Value::Obj(vec![
                            ("median_ns".to_string(), num(s.median_ns)),
                            ("samples".to_string(), Value::Int(s.samples as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("schema".to_string(), Value::Int(self.schema as i64)),
            ("deterministic".to_string(), deterministic),
            ("wall".to_string(), wall),
        ])
        .to_json()
    }

    /// Parses a record produced by [`BenchRecord::to_json`].
    pub fn parse(text: &str) -> Result<BenchRecord, String> {
        let v = Value::parse(text).map_err(|e| format!("bench record: {e}"))?;
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("bench record: missing 'name'")?
            .to_string();
        let schema = v
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("bench record: missing 'schema'")? as u32;
        let mut deterministic = Vec::new();
        for (k, m) in v
            .get("deterministic")
            .and_then(Value::as_obj)
            .ok_or("bench record: missing 'deterministic'")?
        {
            let val =
                m.as_f64().ok_or_else(|| format!("bench record: metric '{k}' not a number"))?;
            deterministic.push((k.clone(), val));
        }
        let mut wall = Vec::new();
        for (k, m) in
            v.get("wall").and_then(Value::as_obj).ok_or("bench record: missing 'wall'")?
        {
            let median_ns = m
                .get("median_ns")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("bench record: wall '{k}' missing median_ns"))?;
            let samples = m
                .get("samples")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("bench record: wall '{k}' missing samples"))?;
            wall.push((k.clone(), WallStat { median_ns, samples }));
        }
        deterministic.sort_by(|a, b| a.0.cmp(&b.0));
        wall.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(BenchRecord { name, schema, deterministic, wall })
    }
}

fn upsert<T>(rows: &mut Vec<(String, T)>, name: &str, value: T) {
    match rows.binary_search_by(|(k, _)| k.as_str().cmp(name)) {
        Ok(i) => rows[i].1 = value,
        Err(i) => rows.insert(i, (name.to_string(), value)),
    }
}

/// Per-metric comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Equal (deterministic) or within tolerance (wall).
    Unchanged,
    /// Lower than before.
    Improved,
    /// Higher than before.
    Regressed,
    /// Present only in the new record.
    Added,
    /// Present only in the old record.
    Removed,
}

/// One row of a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Metric name.
    pub metric: String,
    /// Comparison policy applied.
    pub kind: MetricKind,
    /// Old value (median for wall metrics); `None` when [`Verdict::Added`].
    pub old: Option<f64>,
    /// New value; `None` when [`Verdict::Removed`].
    pub new: Option<f64>,
    /// Outcome label.
    pub verdict: Verdict,
    /// Whether this row fails the gate.
    pub fails: bool,
}

/// Result of diffing two bench records.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// All compared metrics, deterministic first, each set in name order.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// True when any row fails the gate.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.fails)
    }

    /// Renders the diff as one line per metric plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            let kind = match row.kind {
                MetricKind::Deterministic => "det ",
                MetricKind::Wall => "wall",
            };
            let status = if row.fails { "FAIL" } else { " ok " };
            let delta = match (row.old, row.new) {
                (Some(o), Some(n)) if o != 0.0 => {
                    format!("{o} -> {n} ({:+.3}%)", (n - o) / o * 100.0)
                }
                (Some(o), Some(n)) => format!("{o} -> {n}"),
                (Some(o), None) => format!("{o} -> (removed)"),
                (None, Some(n)) => format!("(added) -> {n}"),
                (None, None) => String::new(),
            };
            let verdict = match row.verdict {
                Verdict::Unchanged => "unchanged",
                Verdict::Improved => "improved",
                Verdict::Regressed => "regressed",
                Verdict::Added => "added",
                Verdict::Removed => "removed",
            };
            out.push_str(&format!("[{status}] {kind} {}: {delta} {verdict}\n", row.metric));
        }
        out.push_str(if self.failed() { "verdict: FAIL\n" } else { "verdict: PASS\n" });
        out
    }

    /// One line per *failing* metric, each naming the old value, the new
    /// value, and the percentage delta — so the last lines of a CI log
    /// say what regressed and by how much without scrolling back through
    /// the full table. Empty when the gate passes.
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for row in self.rows.iter().filter(|r| r.fails) {
            let detail = match (row.old, row.new) {
                (Some(o), Some(n)) if o != 0.0 => {
                    format!("old {o}, new {n}, delta {:+.3}%", (n - o) / o * 100.0)
                }
                (Some(o), Some(n)) => format!("old {o}, new {n} (old is zero, no delta)"),
                (Some(o), None) => format!("old {o}, metric removed in new record"),
                (None, Some(n)) => format!("metric absent in old record, new {n}"),
                (None, None) => unreachable!("a diff row always has at least one side"),
            };
            out.push_str(&format!("bench-diff failure: {}: {detail}\n", row.metric));
        }
        out
    }
}

/// Compares two records.
///
/// Deterministic metrics fail on **any** difference — improvements too,
/// so a better number still forces the baseline to be refreshed — and on
/// any metric added or removed. Wall metrics fail only when
/// `new > old × (1 + wall_tolerance)`; additions and removals of wall
/// metrics are reported but do not gate.
///
/// Returns an error when the records' schema versions differ.
pub fn diff(old: &BenchRecord, new: &BenchRecord, wall_tolerance: f64) -> Result<DiffReport, String> {
    if old.schema != new.schema {
        return Err(format!(
            "schema mismatch: old is v{}, new is v{}",
            old.schema, new.schema
        ));
    }
    let mut rows = Vec::new();

    for (name, old_v, new_v) in join(&old.deterministic, &new.deterministic) {
        let (verdict, fails) = match (old_v, new_v) {
            (Some(o), Some(n)) if o == n => (Verdict::Unchanged, false),
            (Some(o), Some(n)) if n < o => (Verdict::Improved, true),
            (Some(_), Some(_)) => (Verdict::Regressed, true),
            (None, Some(_)) => (Verdict::Added, true),
            (Some(_), None) => (Verdict::Removed, true),
            (None, None) => unreachable!("join yields at least one side"),
        };
        rows.push(DiffRow {
            metric: name,
            kind: MetricKind::Deterministic,
            old: old_v,
            new: new_v,
            verdict,
            fails,
        });
    }

    let old_wall: Vec<(String, f64)> =
        old.wall.iter().map(|(k, s)| (k.clone(), s.median_ns)).collect();
    let new_wall: Vec<(String, f64)> =
        new.wall.iter().map(|(k, s)| (k.clone(), s.median_ns)).collect();
    for (name, old_v, new_v) in join(&old_wall, &new_wall) {
        let (verdict, fails) = match (old_v, new_v) {
            (Some(o), Some(n)) if n > o * (1.0 + wall_tolerance) => (Verdict::Regressed, true),
            (Some(o), Some(n)) if n < o * (1.0 - wall_tolerance) => (Verdict::Improved, false),
            (Some(_), Some(_)) => (Verdict::Unchanged, false),
            (None, Some(_)) => (Verdict::Added, false),
            (Some(_), None) => (Verdict::Removed, false),
            (None, None) => unreachable!("join yields at least one side"),
        };
        rows.push(DiffRow {
            metric: name,
            kind: MetricKind::Wall,
            old: old_v,
            new: new_v,
            verdict,
            fails,
        });
    }

    Ok(DiffReport { rows })
}

/// Full outer join of two name-sorted metric lists, in name order.
fn join(old: &[(String, f64)], new: &[(String, f64)]) -> Vec<(String, Option<f64>, Option<f64>)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some((ko, vo)), Some((kn, vn))) => match ko.cmp(kn) {
                std::cmp::Ordering::Equal => {
                    out.push((ko.clone(), Some(*vo), Some(*vn)));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    out.push((ko.clone(), Some(*vo), None));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((kn.clone(), None, Some(*vn)));
                    j += 1;
                }
            },
            (Some((ko, vo)), None) => {
                out.push((ko.clone(), Some(*vo), None));
                i += 1;
            }
            (None, Some((kn, vn))) => {
                out.push((kn.clone(), None, Some(*vn)));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        let mut r = BenchRecord::new("fig13");
        r.metric("sim_cycles", 123_456.0);
        r.metric("energy_nj", 789.25);
        r.metric("quality_pct", 99.5);
        r.wall_metric("run_ns", &[1_000.0, 1_200.0, 900.0]);
        r
    }

    #[test]
    fn median_handles_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "median of no samples")]
    fn median_of_nothing_panics() {
        median(&[]);
    }

    #[test]
    fn record_round_trips_through_json() {
        let r = record();
        let back = BenchRecord::parse(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.wall[0].1, WallStat { median_ns: 1_000.0, samples: 3 });
    }

    #[test]
    fn json_is_byte_stable() {
        assert_eq!(record().to_json(), record().to_json());
        let mut reordered = BenchRecord::new("fig13");
        reordered.metric("quality_pct", 99.5);
        reordered.metric("energy_nj", 789.25);
        reordered.metric("sim_cycles", 123_456.0);
        reordered.wall_metric("run_ns", &[1_000.0, 1_200.0, 900.0]);
        // Insertion order does not leak into the serialized form.
        assert_eq!(reordered.to_json(), record().to_json());
    }

    #[test]
    fn self_diff_passes() {
        let r = record();
        let d = diff(&r, &r, 0.2).unwrap();
        assert!(!d.failed());
        assert!(d.render().contains("verdict: PASS"));
    }

    #[test]
    fn deterministic_drift_fails_both_directions() {
        let old = record();
        let mut worse = record();
        worse.metric("sim_cycles", 123_457.0);
        let d = diff(&old, &worse, 0.2).unwrap();
        assert!(d.failed());
        assert!(d.render().contains("regressed"));

        let mut better = record();
        better.metric("sim_cycles", 123_000.0);
        let d = diff(&old, &better, 0.2).unwrap();
        assert!(d.failed(), "improvements still force a baseline refresh");
        assert!(d.render().contains("improved"));
    }

    #[test]
    fn failure_summary_names_values_and_percentage_delta() {
        let old = record();
        let mut worse = record();
        worse.metric("sim_cycles", 135_801.6); // +10% on 123456
        let d = diff(&old, &worse, 0.2).unwrap();
        let summary = d.failure_summary();
        assert_eq!(
            summary,
            "bench-diff failure: sim_cycles: old 123456, new 135801.6, delta +10.000%\n"
        );
        // Only failing rows appear; a clean gate has nothing to say.
        assert_eq!(diff(&old, &old, 0.2).unwrap().failure_summary(), "");
        // One-sided rows still name the value that exists.
        let mut extra = record();
        extra.metric("extra", 1.0);
        let added = diff(&old, &extra, 0.2).unwrap().failure_summary();
        assert!(added.contains("extra: metric absent in old record, new 1"), "{added}");
        let removed = diff(&extra, &old, 0.2).unwrap().failure_summary();
        assert!(removed.contains("extra: old 1, metric removed in new record"), "{removed}");
    }

    #[test]
    fn added_or_removed_deterministic_metric_fails() {
        let old = record();
        let mut new = record();
        new.metric("extra", 1.0);
        assert!(diff(&old, &new, 0.2).unwrap().failed());
        assert!(diff(&new, &old, 0.2).unwrap().failed());
    }

    #[test]
    fn wall_noise_within_tolerance_passes() {
        let old = record();
        let mut new = record();
        new.wall_metric("run_ns", &[1_100.0]); // +10% on a 20% tolerance
        let d = diff(&old, &new, 0.2).unwrap();
        assert!(!d.failed());
    }

    #[test]
    fn wall_regression_past_tolerance_fails() {
        let old = record();
        let mut new = record();
        new.wall_metric("run_ns", &[1_300.0]); // +30% on a 20% tolerance
        let d = diff(&old, &new, 0.2).unwrap();
        assert!(d.failed());
        let row = d.rows.iter().find(|r| r.metric == "run_ns").unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
    }

    #[test]
    fn wall_metric_churn_does_not_gate() {
        let old = record();
        let mut new = record();
        new.wall_metric("other_ns", &[5.0]);
        let d = diff(&old, &new, 0.2).unwrap();
        assert!(!d.failed());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let old = record();
        let mut new = record();
        new.schema = 99;
        assert!(diff(&old, &new, 0.2).is_err());
    }

    #[test]
    fn parse_rejects_malformed_records() {
        assert!(BenchRecord::parse("{}").is_err());
        assert!(BenchRecord::parse("not json").is_err());
        assert!(BenchRecord::parse(
            r#"{"name":"x","schema":1,"deterministic":{"a":"oops"},"wall":{}}"#
        )
        .is_err());
    }
}
