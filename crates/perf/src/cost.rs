//! Top-down cost attribution.
//!
//! [`attribute`] turns the deterministic counters of a sharded run — the
//! merged [`UnitReport`] plus the per-shard [`DramStats`] in rank order —
//! into two trees:
//!
//! * **cycles**, rooted at the straggler's `dram_cycles` and partitioned
//!   by the phase boundaries (`screen_done_cycle`, `exec_done_cycle`)
//!   into screen / gather / activation, each split into compute vs
//!   memory-stall time using the per-shard average busy cycles;
//! * **energy**, in nanojoules: DRAM access per channel (ACT / RD / WR /
//!   ECC), DRAM static (active background, power-down background,
//!   refresh) summed shard by shard, and logic (screener INT array,
//!   executor FP32 array + SFU, always-on buffers and controllers).
//!
//! Every leaf is an integer counter times a model constant, accumulated
//! in rank order, so the tree is bit-identical for any worker count. The
//! roots are *defined* as the sum of their leaves — consumers that copy
//! the root into a report total get the "leaves sum exactly to the
//! total" invariant for free.

use enmc_arch::{LogicEnergyModel, UnitReport};
use enmc_dram::energy::EnergyModel;
use enmc_dram::DramStats;
use enmc_obs::BreakdownRow;

/// One node of a cost tree. Interior nodes carry the sum of their
/// children; leaves carry a single attributed quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct CostNode {
    /// Path component (joined with `/` when flattened).
    pub name: String,
    /// Attributed simulated cycles (0 in the energy tree).
    pub cycles: u64,
    /// Attributed energy in nanojoules (0.0 in the cycles tree).
    pub nj: f64,
    /// Sub-costs; empty for a leaf.
    pub children: Vec<CostNode>,
}

impl CostNode {
    /// A leaf carrying `cycles` and `nj`.
    pub fn leaf(name: &str, cycles: u64, nj: f64) -> CostNode {
        CostNode { name: name.to_string(), cycles, nj, children: Vec::new() }
    }

    /// An interior node whose totals are the depth-first sequential sum
    /// of the **leaves** under `children` — the same order and grouping a
    /// consumer gets by folding over the flattened rows, so "leaves sum
    /// exactly to the total" holds bit-for-bit despite floating-point
    /// non-associativity.
    pub fn branch(name: &str, children: Vec<CostNode>) -> CostNode {
        fn acc(node: &CostNode, cycles: &mut u64, nj: &mut f64) {
            if node.children.is_empty() {
                *cycles += node.cycles;
                *nj += node.nj;
            } else {
                for child in &node.children {
                    acc(child, cycles, nj);
                }
            }
        }
        let mut cycles = 0;
        let mut nj = 0.0;
        for child in &children {
            acc(child, &mut cycles, &mut nj);
        }
        CostNode { name: name.to_string(), cycles, nj, children }
    }

    /// Appends one [`BreakdownRow`] per **leaf**, with `/`-joined paths
    /// rooted at this node's name.
    pub fn flatten_into(&self, prefix: &str, out: &mut Vec<BreakdownRow>) {
        let path =
            if prefix.is_empty() { self.name.clone() } else { format!("{prefix}/{}", self.name) };
        if self.children.is_empty() {
            out.push(BreakdownRow { path, cycles: self.cycles, nj: self.nj });
        } else {
            for child in &self.children {
                child.flatten_into(&path, out);
            }
        }
    }

    fn render_into(&self, depth: usize, value: &dyn Fn(&CostNode) -> String, out: &mut String) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str(": ");
        out.push_str(&value(self));
        out.push('\n');
        for child in &self.children {
            child.render_into(depth + 1, value, out);
        }
    }
}

/// The two cost trees of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct CostAttribution {
    /// Cycle tree rooted at the run's simulated cycles.
    pub cycles: CostNode,
    /// Energy tree rooted at the run's total energy.
    pub energy: CostNode,
}

impl CostAttribution {
    /// Total simulated cycles (root of the cycle tree; equals the sum of
    /// its leaves by construction).
    pub fn total_cycles(&self) -> u64 {
        self.cycles.cycles
    }

    /// Total energy in nanojoules (root of the energy tree; equals the
    /// sum of its leaves by construction).
    pub fn energy_nj(&self) -> f64 {
        self.energy.nj
    }

    /// Flattens both trees into leaf rows (`cycles/...` then
    /// `energy/...`) for a run report.
    pub fn rows(&self) -> Vec<BreakdownRow> {
        let mut out = Vec::new();
        self.cycles.flatten_into("", &mut out);
        self.energy.flatten_into("", &mut out);
        out
    }

    /// Renders both trees as an indented text report. Deterministic for
    /// deterministic inputs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.cycles.render_into(0, &|n| format!("{} cyc", n.cycles), &mut out);
        self.energy.render_into(0, &|n| format!("{:.3} nJ", n.nj), &mut out);
        out
    }
}

/// Builds the cost attribution for a run.
///
/// `merged` is the system-level [`UnitReport`] (straggler latency, summed
/// work counters); `shard_dram` the per-shard DRAM statistics **in rank
/// order** (pass an empty slice to treat `merged.dram` as a single
/// shard); `channels` the number of channel buckets shards fold into.
///
/// # Panics
///
/// Panics if `channels == 0`.
pub fn attribute(
    merged: &UnitReport,
    shard_dram: &[DramStats],
    channels: usize,
    dram_model: &EnergyModel,
    logic_model: &LogicEnergyModel,
) -> CostAttribution {
    assert!(channels > 0, "need at least one channel bucket");
    let single = [merged.dram];
    let shards: &[DramStats] = if shard_dram.is_empty() { &single } else { shard_dram };
    let n = shards.len();

    CostAttribution {
        cycles: cycle_tree(merged, n as u64),
        energy: energy_tree(merged, shards, channels, dram_model, logic_model),
    }
}

/// Partitions `dram_cycles` by the phase boundaries; compute vs stall
/// inside a phase uses the average per-shard busy cycles, clamped to the
/// phase length so the partition stays exact.
fn cycle_tree(merged: &UnitReport, shards: u64) -> CostNode {
    let total = merged.dram_cycles;
    let screen_end = merged.screen_done_cycle.min(total);
    let exec_end = merged.exec_done_cycle.clamp(screen_end, total);

    let screen = screen_end;
    let gather = exec_end - screen_end;
    let activation = total - exec_end;

    let screen_compute = (merged.screener_busy / shards.max(1)).min(screen);
    let gather_compute = (merged.executor_busy / shards.max(1)).min(gather);

    CostNode::branch(
        "cycles",
        vec![
            CostNode::branch(
                "screen",
                vec![
                    CostNode::leaf("compute", screen_compute, 0.0),
                    CostNode::leaf("mem_stall", screen - screen_compute, 0.0),
                ],
            ),
            CostNode::branch(
                "gather",
                vec![
                    CostNode::leaf("compute", gather_compute, 0.0),
                    CostNode::leaf("mem_stall", gather - gather_compute, 0.0),
                ],
            ),
            CostNode::branch("activation", vec![CostNode::leaf("sfu", activation, 0.0)]),
        ],
    )
}

fn energy_tree(
    merged: &UnitReport,
    shards: &[DramStats],
    channels: usize,
    dram_model: &EnergyModel,
    logic_model: &LogicEnergyModel,
) -> CostNode {
    let n = shards.len();

    // --- DRAM access, grouped into channel buckets in rank order. ---
    // Counts fold as integers first, so the grouping itself is exact.
    let mut per_channel = vec![[0u64; 3]; channels]; // [acts, reads, writes]
    for (i, s) in shards.iter().enumerate() {
        let c = i * channels / n; // i < n  ⇒  c < channels
        per_channel[c][0] += s.activations;
        per_channel[c][1] += s.reads;
        per_channel[c][2] += s.writes;
    }
    let access_children: Vec<CostNode> = per_channel
        .iter()
        .enumerate()
        .map(|(c, &[acts, reads, writes])| {
            CostNode::branch(
                &format!("ch{c}"),
                vec![
                    CostNode::leaf("act", 0, acts as f64 * dram_model.act_nj),
                    CostNode::leaf("rd", 0, reads as f64 * dram_model.read_nj),
                    CostNode::leaf("wr", 0, writes as f64 * dram_model.write_nj),
                    CostNode::leaf(
                        "ecc",
                        0,
                        (reads + writes) as f64 * dram_model.ecc_nj_per_access,
                    ),
                ],
            )
        })
        .collect();

    // --- DRAM static, summed shard by shard with the EnergyModel's own
    // background split (active standby vs precharge power-down). ---
    let mut bg_active = 0.0;
    let mut bg_idle = 0.0;
    let mut refresh = 0.0;
    let mut total_shard_cycles = 0u64;
    for s in shards {
        let idle_s = s.idle_cycles.min(s.total_cycles) as f64 * dram_model.tck_ps * 1e-12;
        let active_s = s.total_cycles as f64 * dram_model.tck_ps * 1e-12 - idle_s;
        bg_active += dram_model.background_w * active_s * dram_model.ranks as f64 * 1e9;
        bg_idle += dram_model.powerdown_w * idle_s * dram_model.ranks as f64 * 1e9;
        refresh += dram_model.refresh_energy_nj(s.refreshes);
        total_shard_cycles += s.total_cycles;
    }

    // --- Logic: busy arrays from the summed work counters; always-on
    // logic over every shard's active window. The straggler's SFU phase
    // is replicated across shards (the activation pipeline is symmetric).
    let nj = |mw: f64, cycles: u64| mw * cycles as f64 * logic_model.tck_ps * 1e-12 * 1e-3 * 1e9;
    let always_on_mw = logic_model.compute_buffer_mw
        + logic_model.control_buffer_mw
        + logic_model.controller_mw
        + logic_model.dram_ctrl_mw
        + logic_model.ecc_mw;
    let sfu_cycles_all = merged.sfu_cycles * n as u64;

    CostNode::branch(
        "energy",
        vec![
            CostNode::branch(
                "dram",
                vec![
                    CostNode::branch("access", access_children),
                    CostNode::branch(
                        "static",
                        vec![
                            CostNode::leaf("background_active", 0, bg_active),
                            CostNode::leaf("background_idle", 0, bg_idle),
                            CostNode::leaf("refresh", 0, refresh),
                        ],
                    ),
                ],
            ),
            CostNode::branch(
                "logic",
                vec![
                    CostNode::leaf(
                        "screener",
                        0,
                        nj(logic_model.int_array_mw, merged.screener_busy),
                    ),
                    CostNode::leaf(
                        "executor",
                        0,
                        nj(logic_model.fp32_array_mw, merged.executor_busy + sfu_cycles_all),
                    ),
                    CostNode::leaf("always_on", 0, nj(always_on_mw, total_shard_cycles)),
                ],
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(reads: u64, writes: u64, acts: u64, cycles: u64, idle: u64) -> DramStats {
        DramStats {
            reads,
            writes,
            activations: acts,
            refreshes: cycles / 1000,
            idle_cycles: idle,
            total_cycles: cycles,
            ..Default::default()
        }
    }

    fn fixture() -> (UnitReport, Vec<DramStats>) {
        let shards: Vec<DramStats> =
            (0..16).map(|i| shard(100 + i, 10 + i, 20 + i, 5_000 + 13 * i, 400)).collect();
        let mut dram = DramStats::default();
        for s in &shards {
            dram.merge_parallel(s);
        }
        let merged = UnitReport {
            dram_cycles: 5_195,
            screener_busy: 16 * 1_800,
            executor_busy: 16 * 900,
            sfu_cycles: 300,
            screen_done_cycle: 3_000,
            exec_done_cycle: 4_895,
            dram,
            ..Default::default()
        };
        (merged, shards)
    }

    fn models() -> (EnergyModel, LogicEnergyModel) {
        (EnergyModel::ddr4_2400_rank(1).with_ecc_surcharge(0.3), LogicEnergyModel::enmc_table5())
    }

    #[test]
    fn cycle_leaves_partition_total_exactly() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let attr = attribute(&merged, &shards, 8, &dm, &lm);
        let rows = attr.rows();
        let leaf_cycles: u64 =
            rows.iter().filter(|r| r.path.starts_with("cycles/")).map(|r| r.cycles).sum();
        assert_eq!(leaf_cycles, merged.dram_cycles);
        assert_eq!(attr.total_cycles(), merged.dram_cycles);
        // Phase totals follow the boundaries.
        let phase = |name: &str| {
            attr.cycles.children.iter().find(|c| c.name == name).map(|c| c.cycles).unwrap()
        };
        assert_eq!(phase("screen"), 3_000);
        assert_eq!(phase("gather"), 4_895 - 3_000);
        assert_eq!(phase("activation"), 5_195 - 4_895);
    }

    #[test]
    fn energy_root_is_exact_leaf_sum() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let attr = attribute(&merged, &shards, 8, &dm, &lm);
        let rows = attr.rows();
        // Summing the flattened energy leaves in row order reproduces the
        // root bit-for-bit, because branch() computed it the same way.
        let leaf_nj: f64 =
            rows.iter().filter(|r| r.path.starts_with("energy/")).map(|r| r.nj).sum();
        assert_eq!(leaf_nj.to_bits(), attr.energy_nj().to_bits());
        assert!(attr.energy_nj() > 0.0);
    }

    #[test]
    fn channel_buckets_cover_all_traffic() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let attr = attribute(&merged, &shards, 8, &dm, &lm);
        let rows = attr.rows();
        let access: f64 = rows
            .iter()
            .filter(|r| r.path.starts_with("energy/dram/access/"))
            .map(|r| r.nj)
            .sum();
        let expect = dm.breakdown(&merged.dram).access_nj;
        assert!((access - expect).abs() < 1e-9 * expect.max(1.0), "{access} vs {expect}");
        // Every channel bucket received shards (16 shards over 8 buckets).
        for c in 0..8 {
            let ch: f64 = rows
                .iter()
                .filter(|r| r.path.starts_with(&format!("energy/dram/access/ch{c}/")))
                .map(|r| r.nj)
                .sum();
            assert!(ch > 0.0, "channel {c} empty");
        }
    }

    #[test]
    fn static_energy_matches_per_shard_model_sum() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let attr = attribute(&merged, &shards, 4, &dm, &lm);
        let rows = attr.rows();
        let static_nj: f64 =
            rows.iter().filter(|r| r.path.starts_with("energy/dram/static/")).map(|r| r.nj).sum();
        let expect: f64 = shards.iter().map(|s| dm.breakdown(s).static_nj).sum();
        assert!((static_nj - expect).abs() < 1e-9 * expect, "{static_nj} vs {expect}");
    }

    #[test]
    fn attribution_is_deterministic() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let a = attribute(&merged, &shards, 8, &dm, &lm);
        let b = attribute(&merged, &shards, 8, &dm, &lm);
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn empty_shard_slice_falls_back_to_merged_stats() {
        let (merged, _) = fixture();
        let (dm, lm) = models();
        let attr = attribute(&merged, &[], 1, &dm, &lm);
        assert_eq!(attr.total_cycles(), merged.dram_cycles);
        assert!(attr.energy_nj() > 0.0);
    }

    #[test]
    fn render_shows_both_trees() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        let text = attribute(&merged, &shards, 2, &dm, &lm).render();
        assert!(text.starts_with("cycles: "));
        assert!(text.contains("\n  screen: "));
        assert!(text.contains("\nenergy: "));
        assert!(text.contains("mem_stall"));
        assert!(text.contains("background_active"));
    }

    #[test]
    #[should_panic(expected = "channel bucket")]
    fn zero_channels_rejected() {
        let (merged, shards) = fixture();
        let (dm, lm) = models();
        attribute(&merged, &shards, 0, &dm, &lm);
    }
}
