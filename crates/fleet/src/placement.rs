//! Shard placement: which nodes hold which classifier shards.
//!
//! A fleet run shards the classifier row-wise into `S` shards and spreads
//! them over `N` DIMM-group nodes. Two policies are modeled:
//!
//! - **Consistent hashing** ([`PlacementPolicy::ConsistentHash`]): each
//!   shard's primary is the ring successor of its hash over
//!   [`VNODES`] virtual points per node. The replication budget is spent
//!   *blindly* — extra copies go to shards in hash order, which is
//!   uncorrelated with popularity. This is the classic popularity-oblivious
//!   baseline: adding or removing a node only moves the keys the new node
//!   takes over (minimal disruption), but a Zipf-hot shard stays pinned to
//!   one node.
//! - **Popularity-aware** ([`PlacementPolicy::PopularityAware`]): shards
//!   are placed hottest-first onto the least-loaded node (load = summed
//!   Zipf weight), and the same replication budget is spent on the *hot
//!   head* — copy `j` goes to the `j % S`-th hottest shard, onto the
//!   least-loaded node not already holding it. The router can then spread
//!   the head's traffic across its replicas.
//!
//! Both policies are pure functions of `(shards, nodes, replicas, zipf)`;
//! nothing here consumes a seed or the clock, so a placement is
//! reproducible to the byte everywhere the simulator runs.

use enmc_serve::arrival::SplitMix64;

/// Virtual points per node on the consistent-hash ring. 64 keeps the
/// per-node key share within a small constant factor of `S/N` (the
/// balance proptest pins the exact slack).
pub const VNODES: usize = 64;

/// Salt separating shard keys from vnode hashes on the ring.
const SHARD_SALT: u64 = 0xF1EE_7000_0000_0001;
/// Salt for the *blind* replica order used by consistent hashing — a
/// second, independent permutation so the budget is uncorrelated with
/// both ring position and popularity rank.
const BLIND_SALT: u64 = 0xB11D_0000_5EED_0002;

/// One SplitMix64 step as a stateless 64-bit mixer.
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// The ring key of a shard.
fn shard_key(shard: usize) -> u64 {
    mix(shard as u64 ^ SHARD_SALT)
}

/// How the cluster scheduler maps shards to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Hash-ring placement, popularity-oblivious.
    ConsistentHash,
    /// Hottest-first placement with replication of the hot head.
    PopularityAware,
}

impl PlacementPolicy {
    /// The CLI-facing name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::ConsistentHash => "consistent-hash",
            PlacementPolicy::PopularityAware => "popularity",
        }
    }
}

/// Zipf popularity weights for `shards` ranks at exponent `s`: shard `i`
/// (0 = hottest) has weight `(i+1)^-s`.
///
/// The exponent is restricted to **multiples of 0.5** so every weight is
/// computed from integer multiplications and one IEEE-exact `sqrt` —
/// never `powf`, whose low bits vary across libm builds and would leak
/// platform dependence into golden fixtures.
pub fn zipf_weights(shards: usize, s: f64) -> Vec<f64> {
    let half_steps = (s * 2.0).round().max(0.0) as u32;
    (0..shards)
        .map(|i| {
            let n = (i + 1) as f64;
            let mut denom = 1.0;
            for _ in 0..half_steps / 2 {
                denom *= n;
            }
            if half_steps % 2 == 1 {
                denom *= n.sqrt();
            }
            1.0 / denom
        })
        .collect()
}

/// A consistent-hash ring over `nodes` with [`VNODES`] points each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(hash, node)` points, sorted by hash.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// A ring over nodes `0..nodes`.
    ///
    /// Vnode hashes depend only on `(node, vnode)`, so growing the ring
    /// from `N` to `N+1` nodes adds points without moving any existing
    /// ones — the minimal-disruption property the proptests pin.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        let mut points: Vec<(u64, usize)> = (0..nodes)
            .flat_map(|n| (0..VNODES).map(move |v| (mix(((n as u64) << 32) | v as u64), n)))
            .collect();
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// Index of the first ring point at or clockwise of `key`.
    fn start(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(h, _)| h < key);
        if i == self.points.len() {
            0
        } else {
            i
        }
    }

    /// The node owning `key` (its clockwise successor on the ring).
    pub fn owner(&self, key: u64) -> usize {
        self.points[self.start(key)].1
    }

    /// The owner of shard `shard`.
    pub fn shard_owner(&self, shard: usize) -> usize {
        self.owner(shard_key(shard))
    }

    /// Up to `count` *distinct* nodes in ring order starting at `key`'s
    /// successor — the standard replica preference list.
    pub fn preference_list(&self, key: u64, count: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(count.min(self.nodes));
        let start = self.start(key);
        for i in 0..self.points.len() {
            let node = self.points[(start + i) % self.points.len()].1;
            if !out.contains(&node) {
                out.push(node);
                if out.len() >= count.min(self.nodes) {
                    break;
                }
            }
        }
        out
    }
}

/// A concrete shard→nodes assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// For each shard, the sorted list of nodes holding a copy (the
    /// primary plus any replicas). Never empty.
    pub holders: Vec<Vec<usize>>,
    /// Extra shard copies actually placed (≤ the requested budget: a copy
    /// is dropped when every node already holds the shard).
    pub replicas_placed: u64,
}

impl Placement {
    /// Total shard copies across the fleet (primaries + replicas).
    pub fn total_copies(&self) -> usize {
        self.holders.iter().map(Vec::len).sum()
    }
}

/// Places `shards` over `nodes` under `policy`, spending a budget of
/// `replicas` extra copies. `zipf_s` is the popularity exponent the
/// popularity-aware policy assumes (shard 0 hottest); consistent hashing
/// ignores it by construction.
///
/// # Panics
///
/// Panics when `shards` or `nodes` is zero.
pub fn place(
    policy: PlacementPolicy,
    shards: usize,
    nodes: usize,
    replicas: usize,
    zipf_s: f64,
) -> Placement {
    assert!(shards > 0, "need at least one shard");
    assert!(nodes > 0, "need at least one node");
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); shards];
    let mut placed = 0u64;
    match policy {
        PlacementPolicy::ConsistentHash => {
            let ring = HashRing::new(nodes);
            for (s, h) in holders.iter_mut().enumerate() {
                h.push(ring.shard_owner(s));
            }
            // Blind budget: shards in an independent hash order, each copy
            // on the next distinct ring successor.
            let mut order: Vec<usize> = (0..shards).collect();
            order.sort_by_key(|&s| mix(s as u64 ^ BLIND_SALT));
            for j in 0..replicas {
                let s = order[j % shards];
                let next = ring
                    .preference_list(shard_key(s), nodes)
                    .into_iter()
                    .find(|n| !holders[s].contains(n));
                if let Some(n) = next {
                    holders[s].push(n);
                    placed += 1;
                }
            }
        }
        PlacementPolicy::PopularityAware => {
            let w = zipf_weights(shards, zipf_s);
            let mut load = vec![0.0f64; nodes];
            let least_loaded = |load: &[f64], exclude: &[usize]| -> Option<usize> {
                let mut best: Option<usize> = None;
                for n in 0..load.len() {
                    if exclude.contains(&n) {
                        continue;
                    }
                    // Strict < keeps the lowest id on ties.
                    if best.map_or(true, |b| load[n] < load[b]) {
                        best = Some(n);
                    }
                }
                best
            };
            // Primaries: hottest shard first, onto the least-loaded node.
            for s in 0..shards {
                let n = least_loaded(&load, &[]).expect("nodes > 0");
                holders[s].push(n);
                load[n] += w[s];
            }
            // Replicas: cycle the budget over the hot head, each copy onto
            // the least-loaded node not already holding the shard.
            for j in 0..replicas {
                let s = j % shards;
                if let Some(n) = least_loaded(&load, &holders[s]) {
                    let copies = holders[s].len() as f64;
                    holders[s].push(n);
                    load[n] += w[s] / (copies + 1.0);
                    placed += 1;
                }
            }
        }
    }
    for h in &mut holders {
        h.sort_unstable();
    }
    Placement { holders, replicas_placed: placed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_are_monotone_and_exact() {
        let w = zipf_weights(8, 1.0);
        assert_eq!(w[0], 1.0);
        assert_eq!(w[1], 0.5);
        assert!(w.windows(2).all(|p| p[1] < p[0]));
        let w15 = zipf_weights(4, 1.5);
        // (i+1)^-1.5 via integer product x sqrt: 2^-1.5 = 1/(2*sqrt(2)).
        assert_eq!(w15[1], 1.0 / (2.0 * 2.0f64.sqrt()));
        // s = 0 degenerates to uniform.
        assert!(zipf_weights(5, 0.0).iter().all(|&x| x == 1.0));
    }

    #[test]
    fn ring_owner_is_stable_and_in_range() {
        let ring = HashRing::new(5);
        for s in 0..100 {
            let o = ring.shard_owner(s);
            assert!(o < 5);
            assert_eq!(o, HashRing::new(5).shard_owner(s), "deterministic");
        }
    }

    #[test]
    fn preference_list_is_distinct_and_bounded() {
        let ring = HashRing::new(4);
        for s in 0..32 {
            let pl = ring.preference_list(shard_key(s), 3);
            assert_eq!(pl.len(), 3);
            let mut dedup = pl.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "distinct nodes");
            assert_eq!(pl[0], ring.shard_owner(s), "primary leads the list");
        }
        assert_eq!(ring.preference_list(shard_key(0), 10).len(), 4, "capped at node count");
    }

    #[test]
    fn placement_covers_every_shard_once_without_replicas() {
        for policy in [PlacementPolicy::ConsistentHash, PlacementPolicy::PopularityAware] {
            let p = place(policy, 16, 4, 0, 1.0);
            assert_eq!(p.holders.len(), 16);
            assert!(p.holders.iter().all(|h| h.len() == 1));
            assert_eq!(p.replicas_placed, 0);
            assert!(p.holders.iter().all(|h| h[0] < 4));
        }
    }

    #[test]
    fn replica_budget_is_spent_and_capped() {
        for policy in [PlacementPolicy::ConsistentHash, PlacementPolicy::PopularityAware] {
            let p = place(policy, 8, 4, 6, 1.0);
            assert_eq!(p.replicas_placed, 6, "{policy:?}");
            assert_eq!(p.total_copies(), 8 + 6);
            for h in &p.holders {
                let mut d = h.clone();
                d.dedup();
                assert_eq!(d.len(), h.len(), "no duplicate holders");
            }
            // Budget beyond distinct nodes is dropped, not duplicated.
            let full = place(policy, 2, 2, 10, 1.0);
            assert!(full.total_copies() <= 2 * 2);
        }
    }

    #[test]
    fn popularity_replicates_the_hot_head_first() {
        let p = place(PlacementPolicy::PopularityAware, 8, 4, 2, 1.0);
        assert_eq!(p.holders[0].len(), 2, "hottest shard gets the first copy");
        assert_eq!(p.holders[1].len(), 2, "second-hottest gets the next");
        assert_eq!(p.holders[7].len(), 1, "tail stays unreplicated");
    }
}
