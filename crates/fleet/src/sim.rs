//! The fleet-level discrete-event loop: per-tenant arrival streams → a
//! cluster router → per-node FIFO queues → dynamic batchers → service
//! lanes, with per-tenant admission control and degrade ladders.
//!
//! # Time model
//!
//! Everything runs in DRAM-clock cycles, exactly as in
//! [`enmc_serve::sim`]. A calibration pass fills one `[tier][batch-1]`
//! service table per distinct degrade ladder through
//! [`calibrate_service_table`] — the same bridge `serve-sim` uses — and
//! the event loop then never touches the cycle simulator again. A query
//! routed to a remote node additionally pays the interconnect:
//! broadcast of the hidden vector plus gather of the shard's candidate
//! list, priced by [`Network::transfer_cycles`] (zero on a 1-node
//! fleet, matching `scaleout::scale_out`).
//!
//! # Determinism contract
//!
//! A fleet outcome is a pure function of the configuration: arrivals and
//! shard draws come from [`SplitMix64`] streams, service times from the
//! thread-invariant calibration, placement from seed-free hashing, and
//! the event loop folds per-node state in fixed node order (and
//! per-tenant state in fixed tenant order). Host wall-clock never enters
//! any output, so a fleet report is byte-identical for any
//! `ENMC_THREADS` — worker counts only change how fast calibration runs.
//!
//! # Differential anchor
//!
//! With `nodes = shards = 1`, one tenant, and a zero replica budget, the
//! loop degenerates statement-for-statement into the `serve-sim` loop:
//! same shed check, same full-or-lingered dispatch condition, same
//! one-tier-step-per-dispatch controller with hysteresis, same
//! next-event arithmetic. `tests/fleet_differential.rs` pins this
//! bit-for-bit.

use std::collections::VecDeque;

use enmc_arch::scaleout::Network;
use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_obs::report::{RunReport, TenantRow};
use enmc_obs::MetricsRegistry;
use enmc_par::SimConfig;
use enmc_serve::arrival::SplitMix64;
use enmc_serve::hist::LatencyHistogram;
use enmc_serve::sim::{calibrate_service_table, ServiceTable};
use enmc_serve::tier::DegradeTier;
use enmc_serve::OffloadPlan;
use enmc_tune::plan_from_table;
use enmc_serve::ArrivalProcess;
use enmc_surrogate::{CostModel, SurrogateViolation};

use crate::placement::{place, zipf_weights, PlacementPolicy};

/// Salt separating the shard-popularity draw stream from arrival seeds.
const SHARD_STREAM_SALT: u64 = 0x5AAD_57AE_A31B_0003;

/// One tenant sharing the fleet: its own traffic, deadline, ladder, and
/// admission thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant name, used in reports and metric labels.
    pub name: String,
    /// The tenant's arrival process.
    pub arrival: ArrivalProcess,
    /// Requests to generate (a replayed trace may yield fewer).
    pub requests: usize,
    /// Per-request deadline: arrival cycle + this.
    pub slo_cycles: u64,
    /// Degrade ladder in **full-model** candidate counts, full quality
    /// first; the simulator scales it to the shard size. Must be
    /// non-empty.
    pub tiers: Vec<DegradeTier>,
    /// Step the tenant's ladder down when its queue share at the
    /// dispatching node is deeper than this.
    pub degrade_queue_depth: usize,
    /// Step the ladder up (hysteresis) at or below this depth.
    pub upgrade_queue_depth: usize,
    /// Shed the tenant's arrivals once the routed node's queue holds
    /// this many requests — a *smaller* value means the tenant loses
    /// admission contention earlier (lower priority).
    pub shed_queue_depth: usize,
    /// Seed for the tenant's arrival stream.
    pub seed: u64,
}

impl TenantConfig {
    /// A tenant with the `serve-sim` default admission thresholds.
    pub fn new(name: &str, arrival: ArrivalProcess, requests: usize, slo_cycles: u64, tiers: Vec<DegradeTier>, seed: u64) -> Self {
        TenantConfig {
            name: name.to_string(),
            arrival,
            requests,
            slo_cycles,
            tiers,
            degrade_queue_depth: 12,
            upgrade_queue_depth: 3,
            shed_queue_depth: 48,
            seed,
        }
    }
}

/// Configuration of one fleet scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Simulated DIMM-group nodes, each a full Table 3 system.
    pub nodes: usize,
    /// Row-wise classifier shards spread over the nodes.
    pub shards: usize,
    /// Extra shard copies the placement may spend.
    pub replicas: usize,
    /// How shards map to nodes.
    pub placement: PlacementPolicy,
    /// Zipf popularity exponent for shard draws (multiples of 0.5;
    /// shard 0 hottest; 0.0 = uniform).
    pub zipf_s: f64,
    /// Maximum requests per dispatched batch (per node).
    pub batch_max: usize,
    /// Longest a request may wait before the batcher must dispatch.
    pub linger_cycles: u64,
    /// Independent service lanes per node.
    pub lanes: usize,
    /// The cluster interconnect pricing remote queries.
    pub network: Network,
    /// The tenants contending for the fleet. Must be non-empty.
    pub tenants: Vec<TenantConfig>,
    /// Seed for the shard-popularity draw stream.
    pub seed: u64,
    /// Run every calibrated ladder through the per-query offload
    /// planner, serving each `(tier, batch)` point on the cheaper of
    /// NMP and the CPU roofline.
    pub offload: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            nodes: 4,
            shards: 4,
            replicas: 2,
            placement: PlacementPolicy::PopularityAware,
            zipf_s: 1.0,
            batch_max: 4,
            linger_cycles: 2_000,
            lanes: 2,
            network: Network::roce_100g(),
            tenants: Vec::new(),
            seed: 7,
            offload: false,
        }
    }
}

/// One request's life across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRequest {
    /// Owning tenant index.
    pub tenant: usize,
    /// Shard the query targets (drawn from the Zipf stream).
    pub shard: usize,
    /// Node the router chose (`usize::MAX` when shed).
    pub node: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Deadline cycle (`arrival + tenant.slo_cycles`).
    pub deadline: u64,
    /// Completion cycle including network time, `None` when shed.
    pub completion: Option<u64>,
    /// `true` when admission control rejected the request.
    pub shed: bool,
}

/// One dispatched batch on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetBatchRecord {
    /// Node that served the batch.
    pub node: usize,
    /// Tenant the batch belonged to (batches never mix tenants).
    pub tenant: usize,
    /// Dispatch cycle.
    pub start: u64,
    /// Service completion cycle (network time excluded — the lane frees
    /// here).
    pub end: u64,
    /// Requests in the batch.
    pub size: usize,
    /// Degrade tier the batch ran at.
    pub tier: usize,
    /// Lane index on the node.
    pub lane: usize,
}

/// One tenant's aggregate outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name.
    pub name: String,
    /// Requests the tenant's arrival process generated.
    pub generated: u64,
    /// Requests admitted to a node queue.
    pub admitted: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Completed requests that met their deadline.
    pub slo_met: u64,
    /// Degrade-tier steps taken, both directions.
    pub degrade_transitions: u64,
    /// Request latencies (queueing + service + network), log-bucketed.
    pub latency: LatencyHistogram,
    /// Completed requests per tier.
    pub per_tier_completed: Vec<u64>,
    /// Batches dispatched per tier.
    pub per_tier_batches: Vec<u64>,
    /// The tenant's calibrated shard-level service table.
    pub service_cycles: Vec<Vec<u64>>,
}

impl TenantOutcome {
    /// Fraction of completed requests that met the deadline (0 when
    /// nothing completed).
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

/// Everything one fleet run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Per-tenant outcomes, in configuration order.
    pub tenants: Vec<TenantOutcome>,
    /// Nodes the fleet simulated.
    pub nodes: usize,
    /// Shards the classifier was split into.
    pub shards: usize,
    /// Placement policy name (`consistent-hash` or `popularity`).
    pub placement: String,
    /// Extra shard copies the placement actually placed.
    pub hot_shard_replicas: u64,
    /// Cycle the last request completed (service + network; 0 when
    /// nothing ran).
    pub makespan_cycles: u64,
    /// Simulated nanoseconds per DRAM cycle (from calibration).
    pub ns_per_cycle: f64,
    /// Deepest any node queue ever got.
    pub max_queue_depth: usize,
    /// DDR4 protocol violations observed during calibration runs.
    pub protocol_violations: u64,
    /// Interconnect cycles summed over completed requests.
    pub network_cycles: u64,
    /// End-to-end latency cycles summed over completed requests.
    pub latency_cycles: u64,
    /// Admitted queries per shard (router's view; for invariance tests).
    pub shard_queries: Vec<u64>,
    /// Busy service cycles per node, in node order.
    pub node_busy_cycles: Vec<u64>,
    /// Per-request life records, in merged arrival order.
    pub requests: Vec<FleetRequest>,
    /// Per-batch records, in dispatch order.
    pub batches: Vec<FleetBatchRecord>,
    /// Cost backend that answered the calibration points.
    pub cost_backend: String,
    /// Cycle-accurate anchor simulations run by surrogate fits.
    pub fit_anchors: u64,
    /// Calibration points the audit lottery re-ran cycle-accurately.
    pub audit_points: u64,
    /// Worst bound-normalized relative leaf error over audited points.
    pub audit_max_rel_err: f64,
    /// Dispatched batches the offload planner kept on NMP (0 without
    /// `offload`).
    pub offload_nmp: u64,
    /// Dispatched batches the offload planner sent to the CPU roofline
    /// (0 without `offload`).
    pub offload_cpu: u64,
}

impl FleetOutcome {
    /// Fraction of completed-request latency cycles spent on the
    /// interconnect (0 on a 1-node fleet).
    pub fn network_share(&self) -> f64 {
        if self.latency_cycles == 0 {
            0.0
        } else {
            self.network_cycles as f64 / self.latency_cycles as f64
        }
    }

    /// Fleet-wide SLO attainment (completed-weighted across tenants).
    pub fn slo_attainment(&self) -> f64 {
        let completed: u64 = self.tenants.iter().map(|t| t.completed).sum();
        let met: u64 = self.tenants.iter().map(|t| t.slo_met).sum();
        if completed == 0 {
            0.0
        } else {
            met as f64 / completed as f64
        }
    }

    /// All tenants' latencies merged into one histogram.
    pub fn merged_latency(&self) -> LatencyHistogram {
        let mut h = LatencyHistogram::new();
        for t in &self.tenants {
            h.merge(&t.latency);
        }
        h
    }

    /// Builds the schema-v8 [`RunReport`] for this run.
    ///
    /// Fleet reports are **simulation-time only**, like serving reports:
    /// phase wall time is zero and `threads` stays 0, preserving the
    /// byte-identical-across-`ENMC_THREADS` contract.
    pub fn report(
        &self,
        workload: &str,
        cfg: &FleetConfig,
        registry: &MetricsRegistry,
    ) -> RunReport {
        let mut report = RunReport::new("fleet-sim", workload, "enmc");
        report.batch = cfg.batch_max as u64;
        report.candidates = cfg
            .tenants
            .first()
            .and_then(|t| t.tiers.first())
            .map(|t| t.candidates as u64)
            .unwrap_or(0);
        report.sim_cycles = self.makespan_cycles;
        report.headline_ns = self.makespan_cycles as f64 * self.ns_per_cycle;
        report.push_phase("fleet", 0.0, self.makespan_cycles, report.headline_ns);
        report.protocol_violations = self.protocol_violations;
        report.slo_attainment = self.slo_attainment();
        report.p99_ns = self.merged_latency().p99() * self.ns_per_cycle;
        report.shed = self.tenants.iter().map(|t| t.shed).sum();
        report.degrade_transitions =
            self.tenants.iter().map(|t| t.degrade_transitions).sum();
        report.cost_backend = self.cost_backend.clone();
        report.fit_anchors = self.fit_anchors;
        report.audit_points = self.audit_points;
        report.audit_max_rel_err = self.audit_max_rel_err;
        report.offload_nmp = self.offload_nmp;
        report.offload_cpu = self.offload_cpu;
        report.nodes = self.nodes as u64;
        report.placement = self.placement.clone();
        report.hot_shard_replicas = self.hot_shard_replicas;
        report.network_share = self.network_share();
        report.tenants = self
            .tenants
            .iter()
            .map(|t| TenantRow {
                name: t.name.clone(),
                slo_attainment: t.slo_attainment(),
                p99_ns: t.latency.p99() * self.ns_per_cycle,
                shed: t.shed,
                admitted: t.admitted,
                completed: t.completed,
                degrade_transitions: t.degrade_transitions,
            })
            .collect();
        report.metrics = registry.snapshot();
        report.notes.push(format!(
            "{} node(s), {} shard(s), {} placement, {} hot-shard replica(s), zipf {}",
            self.nodes, self.shards, self.placement, self.hot_shard_replicas, cfg.zipf_s
        ));
        for (t, out) in cfg.tenants.iter().zip(&self.tenants) {
            report.notes.push(format!(
                "tenant {}: {} {} request(s), seed {}, slo {} cycle(s)",
                t.name,
                out.generated,
                t.arrival.kind(),
                t.seed,
                t.slo_cycles
            ));
        }
        report.notes.push(
            "host wall time excluded: fleet reports are simulation-time only".to_string(),
        );
        report
    }
}

/// The shard-sized job: `1/shards` of the classifier rows and candidate
/// budget, everything else untouched (matches `scaleout::scale_out`).
fn shard_job(job: &ClassificationJob, shards: usize) -> ClassificationJob {
    ClassificationJob {
        categories: job.categories.div_ceil(shards),
        hidden: job.hidden,
        reduced: job.reduced,
        batch: job.batch,
        candidates: job.candidates.div_ceil(shards),
    }
}

/// A tenant's ladder scaled to the shard size: candidate counts divide
/// by the shard count (screening shifts are shard-independent).
fn shard_tiers(tiers: &[DegradeTier], shards: usize) -> Vec<DegradeTier> {
    tiers
        .iter()
        .map(|t| DegradeTier {
            candidates: t.candidates.div_ceil(shards).max(1),
            screen_shift: t.screen_shift,
        })
        .collect()
}

/// Draws one shard index from the cumulative Zipf weights.
fn draw_shard(cum: &[f64], total: f64, rng: &mut SplitMix64) -> usize {
    let u = rng.next_unit() * total;
    // First bucket whose cumulative weight reaches the draw.
    cum.partition_point(|&c| c < u).min(cum.len() - 1)
}

/// Per-node mutable state inside the event loop.
struct NodeState {
    pending: VecDeque<usize>,
    lane_free: Vec<u64>,
    busy_cycles: u64,
}

/// Runs one fleet scenario.
///
/// `sim` controls only how the calibration pass executes (worker count,
/// protocol checking); the outcome is bit-identical for any worker
/// count. Fleet metrics are recorded into `registry` under the `fleet.*`
/// prefix.
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when an audited calibration point
/// misses the declared bound (surrogate backend only).
///
/// # Panics
///
/// Panics when `cfg` has zero nodes/shards/batch, no tenants, or a
/// tenant with an empty ladder.
pub fn simulate_fleet(
    sys: &SystemModel,
    job: &ClassificationJob,
    cfg: &FleetConfig,
    sim: &SimConfig,
    registry: &mut MetricsRegistry,
    cost: &mut CostModel,
) -> Result<FleetOutcome, SurrogateViolation> {
    assert!(cfg.nodes > 0, "fleet needs at least one node");
    assert!(cfg.shards > 0, "fleet needs at least one shard");
    assert!(cfg.batch_max > 0, "batch_max must be positive");
    assert!(!cfg.tenants.is_empty(), "fleet needs at least one tenant");
    for t in &cfg.tenants {
        assert!(!t.tiers.is_empty(), "tenant {} needs at least one degrade tier", t.name);
    }

    // Calibration: one service table per *distinct* shard-scaled ladder,
    // in first-appearance order (tenants sharing a ladder share a table,
    // and the audit stream stays independent of tenant count).
    let sjob = shard_job(job, cfg.shards);
    let mut ladders: Vec<Vec<DegradeTier>> = Vec::new();
    let mut tenant_table: Vec<usize> = Vec::with_capacity(cfg.tenants.len());
    for t in &cfg.tenants {
        let ladder = shard_tiers(&t.tiers, cfg.shards);
        let idx = ladders.iter().position(|l| *l == ladder).unwrap_or_else(|| {
            ladders.push(ladder.clone());
            ladders.len() - 1
        });
        tenant_table.push(idx);
    }
    let mut tables: Vec<ServiceTable> = Vec::with_capacity(ladders.len());
    for (i, ladder) in ladders.iter().enumerate() {
        let context = format!("fleet-sim calibration (ladder {i})");
        tables.push(calibrate_service_table(
            sys,
            &sjob,
            ladder,
            cfg.batch_max,
            sim,
            cost,
            &context,
        )?);
    }
    // Offload planning: each calibrated ladder's table is replaced by
    // the planner's per-point choice of NMP vs. CPU roofline, and the
    // plan tags let the dispatch loop count admission decisions.
    let plans: Vec<Option<OffloadPlan>> = if cfg.offload {
        ladders
            .iter()
            .zip(&tables)
            .map(|(ladder, table)| Some(plan_from_table(sys, &sjob, ladder, table)))
            .collect()
    } else {
        vec![None; ladders.len()]
    };
    for (table, plan) in tables.iter_mut().zip(&plans) {
        if let Some(plan) = plan {
            plan.check_shape(table.cycles.len(), cfg.batch_max);
            table.cycles = plan.cycles.clone();
        }
    }

    let ns_per_cycle =
        tables.iter().map(|t| t.ns_per_cycle).fold(0.0f64, f64::max);
    let protocol_violations: u64 = tables.iter().map(|t| t.protocol_violations).sum();

    // Interconnect cost per (tenant, tier): broadcast h + gather the
    // shard's candidate list. Zero on a 1-node fleet, exactly like
    // `scale_out`.
    let net_cycles: Vec<Vec<u64>> = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, _)| {
            ladders[tenant_table[ti]]
                .iter()
                .map(|tier| {
                    if cfg.nodes == 1 {
                        0
                    } else {
                        let bcast = (job.hidden * 4) as u64;
                        let gather = (tier.candidates * 8) as u64;
                        cfg.network.transfer_cycles(bcast, ns_per_cycle)
                            + cfg.network.transfer_cycles(gather, ns_per_cycle)
                    }
                })
                .collect()
        })
        .collect();

    let placement = place(cfg.placement, cfg.shards, cfg.nodes, cfg.replicas, cfg.zipf_s);

    // Merge the tenants' arrival streams: stable order (arrival cycle,
    // tenant index), which preserves each tenant's generation order.
    let mut reqs: Vec<FleetRequest> = Vec::new();
    let mut generated = vec![0u64; cfg.tenants.len()];
    for (ti, t) in cfg.tenants.iter().enumerate() {
        for at in t.arrival.generate(t.requests, t.seed) {
            reqs.push(FleetRequest {
                tenant: ti,
                shard: 0,
                node: usize::MAX,
                arrival: at,
                deadline: at.saturating_add(t.slo_cycles),
                completion: None,
                shed: false,
            });
            generated[ti] += 1;
        }
    }
    reqs.sort_by_key(|r| (r.arrival, r.tenant));

    // Shard draws in merged order from one seeded stream — identical
    // across placement policies and worker counts by construction.
    let weights = zipf_weights(cfg.shards, cfg.zipf_s);
    let total_weight: f64 = weights.iter().sum();
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let mut shard_rng = SplitMix64::new(cfg.seed ^ SHARD_STREAM_SALT);
    for r in &mut reqs {
        r.shard = draw_shard(&cum, total_weight, &mut shard_rng);
    }

    // Event-loop state, folded in fixed node and tenant order.
    let lanes_n = cfg.lanes.max(1);
    let mut nodes: Vec<NodeState> = (0..cfg.nodes)
        .map(|_| NodeState {
            pending: VecDeque::new(),
            lane_free: vec![0u64; lanes_n],
            busy_cycles: 0,
        })
        .collect();
    let nt = cfg.tenants.len();
    let mut tier_state = vec![0usize; nt];
    let mut admitted = vec![0u64; nt];
    let mut shed = vec![0u64; nt];
    let mut completed = vec![0u64; nt];
    let mut slo_met = vec![0u64; nt];
    let mut degrade_transitions = vec![0u64; nt];
    let mut latency: Vec<LatencyHistogram> =
        (0..nt).map(|_| LatencyHistogram::new()).collect();
    let mut per_tier_completed: Vec<Vec<u64>> =
        cfg.tenants.iter().map(|t| vec![0u64; t.tiers.len()]).collect();
    let mut per_tier_batches: Vec<Vec<u64>> =
        cfg.tenants.iter().map(|t| vec![0u64; t.tiers.len()]).collect();
    let mut shard_queries = vec![0u64; cfg.shards];
    let mut batches: Vec<FleetBatchRecord> = Vec::new();
    let mut max_queue_depth = 0usize;
    let mut network_cycles_total = 0u64;
    let mut latency_cycles_total = 0u64;
    let mut makespan = 0u64;
    let (mut offload_nmp, mut offload_cpu) = (0u64, 0u64);
    let mut now = 0u64;
    let mut next_arrival = 0usize;
    let n = reqs.len();

    loop {
        // Admit (or shed) every arrival due by `now`, in merged order:
        // route to the least-backlogged holder of the query's shard, then
        // apply the owning tenant's shed threshold on that node's queue.
        while next_arrival < n && reqs[next_arrival].arrival <= now {
            let id = next_arrival;
            next_arrival += 1;
            let ti = reqs[id].tenant;
            let node = placement.holders[reqs[id].shard]
                .iter()
                .copied()
                .min_by_key(|&nd| (nodes[nd].pending.len(), nd))
                .expect("every shard has a holder");
            if nodes[node].pending.len() >= cfg.tenants[ti].shed_queue_depth.max(1) {
                reqs[id].shed = true;
                shed[ti] += 1;
            } else {
                reqs[id].node = node;
                nodes[node].pending.push_back(id);
                admitted[ti] += 1;
                shard_queries[reqs[id].shard] += 1;
                max_queue_depth = max_queue_depth.max(nodes[node].pending.len());
            }
        }

        // Dispatch on every node while a lane is free and a batch is
        // ready; nodes are visited in fixed index order.
        for (ni, node) in nodes.iter_mut().enumerate() {
            loop {
                let Some(&front) = node.pending.front() else { break };
                let Some(lane) = node.lane_free.iter().position(|&f| f <= now) else { break };
                let ti = reqs[front].tenant;
                let t_cfg = &cfg.tenants[ti];
                let depth_t =
                    node.pending.iter().filter(|&&id| reqs[id].tenant == ti).count();
                let full = depth_t >= cfg.batch_max;
                let lingered =
                    now >= reqs[front].arrival.saturating_add(cfg.linger_cycles);
                if !(full || lingered) {
                    break;
                }

                // Controller: one tier step per dispatch, with hysteresis
                // — the tenant's ladder is cluster-global, stepped by
                // whichever node dispatches (deterministic: fixed order).
                let service = &tables[tenant_table[ti]].cycles;
                let size = depth_t.min(cfg.batch_max);
                let mut tier = tier_state[ti];
                let predicted_end = now
                    .saturating_add(service[tier][size - 1])
                    .saturating_add(net_cycles[ti][tier]);
                if (depth_t > t_cfg.degrade_queue_depth
                    || predicted_end > reqs[front].deadline)
                    && tier + 1 < t_cfg.tiers.len()
                {
                    tier += 1;
                    degrade_transitions[ti] += 1;
                } else if depth_t <= t_cfg.upgrade_queue_depth && tier > 0 {
                    tier -= 1;
                    degrade_transitions[ti] += 1;
                }
                tier_state[ti] = tier;

                // Pull the first `size` requests of this tenant from the
                // queue front, preserving everyone else's order.
                let mut picked = Vec::with_capacity(size);
                let mut rest = VecDeque::with_capacity(node.pending.len());
                while let Some(id) = node.pending.pop_front() {
                    if reqs[id].tenant == ti && picked.len() < size {
                        picked.push(id);
                    } else {
                        rest.push_back(id);
                    }
                }
                node.pending = rest;

                let svc = service[tier][size - 1];
                let net = net_cycles[ti][tier];
                let end = now.saturating_add(svc);
                for &id in &picked {
                    let done = end.saturating_add(net);
                    reqs[id].completion = Some(done);
                    let lat = done - reqs[id].arrival;
                    latency[ti].observe(lat);
                    completed[ti] += 1;
                    per_tier_completed[ti][tier] += 1;
                    if done <= reqs[id].deadline {
                        slo_met[ti] += 1;
                    }
                    network_cycles_total += net;
                    latency_cycles_total += lat;
                    makespan = makespan.max(done);
                }
                node.lane_free[lane] = end;
                node.busy_cycles += svc;
                per_tier_batches[ti][tier] += 1;
                if let Some(plan) = &plans[tenant_table[ti]] {
                    if plan.nmp[tier][size - 1] {
                        offload_nmp += 1;
                    } else {
                        offload_cpu += 1;
                    }
                }
                batches.push(FleetBatchRecord {
                    node: ni,
                    tenant: ti,
                    start: now,
                    end,
                    size,
                    tier,
                    lane,
                });
            }
        }

        // Advance to the next event: an arrival, or the earliest moment
        // any node's oldest waiter can actually dispatch.
        let mut next = u64::MAX;
        if next_arrival < n {
            next = reqs[next_arrival].arrival;
        }
        for node in &nodes {
            if let Some(&front) = node.pending.front() {
                let earliest_lane =
                    node.lane_free.iter().copied().min().expect("at least one lane");
                let ti = reqs[front].tenant;
                let depth_t =
                    node.pending.iter().filter(|&&id| reqs[id].tenant == ti).count();
                let readiness = if depth_t >= cfg.batch_max {
                    now
                } else {
                    reqs[front].arrival.saturating_add(cfg.linger_cycles)
                };
                next = next.min(readiness.max(earliest_lane).max(now + 1));
            }
        }
        if next == u64::MAX {
            break;
        }
        debug_assert!(next > now, "event time must advance");
        now = next;
    }

    // Metrics: recorded once, after the loop, in fixed tenant order.
    for (ti, t) in cfg.tenants.iter().enumerate() {
        let l: &[(&str, &str)] = &[("tenant", &t.name)];
        registry.counter_add("fleet.generated", l, generated[ti]);
        registry.counter_add("fleet.admitted", l, admitted[ti]);
        registry.counter_add("fleet.completed", l, completed[ti]);
        registry.counter_add("fleet.shed", l, shed[ti]);
        registry.counter_add("fleet.slo_met", l, slo_met[ti]);
        registry.counter_add("fleet.degrade_transitions", l, degrade_transitions[ti]);
    }
    registry.counter_add("fleet.batches", &[], batches.len() as u64);
    registry.counter_add("fleet.network_cycles", &[], network_cycles_total);
    registry.gauge_set("fleet.queue_depth_max", &[], max_queue_depth as f64);
    registry.gauge_set("fleet.nodes", &[], cfg.nodes as f64);
    registry.gauge_set("fleet.replicas_placed", &[], placement.replicas_placed as f64);

    let stats = cost.stats();
    let tenants_out = cfg
        .tenants
        .iter()
        .enumerate()
        .map(|(ti, t)| TenantOutcome {
            name: t.name.clone(),
            generated: generated[ti],
            admitted: admitted[ti],
            completed: completed[ti],
            shed: shed[ti],
            slo_met: slo_met[ti],
            degrade_transitions: degrade_transitions[ti],
            latency: latency[ti].clone(),
            per_tier_completed: per_tier_completed[ti].clone(),
            per_tier_batches: per_tier_batches[ti].clone(),
            service_cycles: tables[tenant_table[ti]].cycles.clone(),
        })
        .collect();
    Ok(FleetOutcome {
        tenants: tenants_out,
        nodes: cfg.nodes,
        shards: cfg.shards,
        placement: cfg.placement.name().to_string(),
        hot_shard_replicas: placement.replicas_placed,
        makespan_cycles: makespan,
        ns_per_cycle,
        max_queue_depth,
        protocol_violations,
        network_cycles: network_cycles_total,
        latency_cycles: latency_cycles_total,
        shard_queries,
        node_busy_cycles: nodes.iter().map(|s| s.busy_cycles).collect(),
        requests: reqs,
        batches,
        cost_backend: cost.backend().name().to_string(),
        fit_anchors: stats.fit_anchors,
        audit_points: stats.audited,
        audit_max_rel_err: stats.max_rel_err,
        offload_nmp,
        offload_cpu,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_serve::tier::default_tiers;
    use enmc_surrogate::CostBackend;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
    }

    fn two_tenant_cfg(job: &ClassificationJob) -> FleetConfig {
        FleetConfig {
            nodes: 2,
            shards: 2,
            replicas: 1,
            placement: PlacementPolicy::PopularityAware,
            zipf_s: 1.0,
            batch_max: 3,
            linger_cycles: 5_000,
            lanes: 1,
            tenants: vec![
                TenantConfig::new(
                    "t0",
                    ArrivalProcess::Poisson { rate: 0.05 },
                    32,
                    400_000,
                    default_tiers(job),
                    11,
                ),
                TenantConfig::new(
                    "t1",
                    ArrivalProcess::Poisson { rate: 0.05 },
                    32,
                    800_000,
                    default_tiers(job),
                    12,
                ),
            ],
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn conservation_per_tenant_and_total() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = two_tenant_cfg(&job);
        let mut reg = MetricsRegistry::new();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
        let out = simulate_fleet(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg, &mut cost)
            .unwrap();
        for t in &out.tenants {
            assert_eq!(t.admitted + t.shed, t.generated, "{}", t.name);
            assert_eq!(t.completed, t.admitted, "open queues drain: {}", t.name);
            assert_eq!(t.latency.count(), t.completed);
        }
        let routed: u64 = out.shard_queries.iter().sum();
        let admitted: u64 = out.tenants.iter().map(|t| t.admitted).sum();
        assert_eq!(routed, admitted, "router accounts every admitted query");
        assert!(out.makespan_cycles > 0);
        assert!(out.ns_per_cycle > 0.0);
        assert_eq!(out.offload_nmp + out.offload_cpu, 0, "no plan, no decisions");
    }

    #[test]
    fn offload_counts_every_batch_and_never_slows_the_fleet() {
        let sys = SystemModel::table3();
        let job = small_job();
        let base = two_tenant_cfg(&job);
        let offload = FleetConfig { offload: true, ..base.clone() };
        let mut reg1 = MetricsRegistry::new();
        let mut c1 = CostModel::new(CostBackend::CycleAccurate, 7);
        let plain =
            simulate_fleet(&sys, &job, &base, &SimConfig::sequential(), &mut reg1, &mut c1)
                .unwrap();
        let mut reg2 = MetricsRegistry::new();
        let mut c2 = CostModel::new(CostBackend::CycleAccurate, 7);
        let planned =
            simulate_fleet(&sys, &job, &offload, &SimConfig::sequential(), &mut reg2, &mut c2)
                .unwrap();
        assert_eq!(
            planned.offload_nmp + planned.offload_cpu,
            planned.batches.len() as u64,
            "every dispatched batch carries a planner decision"
        );
        // Planned service is min(cpu, nmp) per point, so no batch got
        // slower and the makespan cannot grow.
        assert!(planned.makespan_cycles <= plain.makespan_cycles);
        let r = planned.report("lstm", &offload, &reg2);
        assert_eq!(r.offload_nmp, planned.offload_nmp);
        assert_eq!(r.offload_cpu, planned.offload_cpu);
    }

    #[test]
    fn outcome_is_identical_across_worker_counts() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = two_tenant_cfg(&job);
        let mut reg1 = MetricsRegistry::new();
        let mut c1 = CostModel::new(CostBackend::CycleAccurate, 7);
        let seq =
            simulate_fleet(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg1, &mut c1)
                .unwrap();
        let mut reg4 = MetricsRegistry::new();
        let mut c4 = CostModel::new(CostBackend::CycleAccurate, 7);
        let par =
            simulate_fleet(&sys, &job, &cfg, &SimConfig::with_threads(4), &mut reg4, &mut c4)
                .unwrap();
        assert_eq!(seq, par);
        assert_eq!(
            seq.report("test", &cfg, &reg1).to_json(),
            par.report("test", &cfg, &reg4).to_json()
        );
    }

    #[test]
    fn multi_node_pays_the_network_and_single_node_does_not() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cfg = two_tenant_cfg(&job);
        let mut reg = MetricsRegistry::new();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
        let multi =
            simulate_fleet(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg, &mut cost)
                .unwrap();
        assert!(multi.network_cycles > 0, "2-node fleet pays the interconnect");
        assert!(multi.network_share() > 0.0);

        cfg.nodes = 1;
        cfg.shards = 1;
        cfg.replicas = 0;
        let mut reg1 = MetricsRegistry::new();
        let mut cost1 = CostModel::new(CostBackend::CycleAccurate, 7);
        let single =
            simulate_fleet(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg1, &mut cost1)
                .unwrap();
        assert_eq!(single.network_cycles, 0);
        assert_eq!(single.network_share(), 0.0);
    }

    #[test]
    fn report_is_consistent_schema_v8() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = two_tenant_cfg(&job);
        let mut reg = MetricsRegistry::new();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
        let out = simulate_fleet(&sys, &job, &cfg, &SimConfig::sequential(), &mut reg, &mut cost)
            .unwrap();
        let report = out.report("synthetic", &cfg, &reg);
        assert_eq!(report.schema_version, enmc_obs::report::SCHEMA_VERSION);
        assert!(report.is_consistent());
        assert_eq!(report.command, "fleet-sim");
        assert_eq!(report.nodes, 2);
        assert_eq!(report.placement, "popularity");
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.threads, 0, "fleet reports carry no host threading");
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
