//! Fleet-scale multi-tenant serving simulator for the ENMC accelerator.
//!
//! [`enmc_serve`] answers "what happens when traffic hits *one*
//! accelerator node?"; this crate scales that question out to a fleet —
//! the paper's §8 deployment story made operational. An S10M/S100M
//! classifier is sharded row-wise across simulated DIMM-group nodes
//! (each a full Table 3 system), hot shards get extra replicas, a
//! cluster router sends each query to the least-backlogged holder of its
//! shard, and multiple tenants with distinct SLOs and degrade ladders
//! contend for the same nodes:
//!
//! 1. [`placement`] — shard→node maps: a consistent-hash ring (64
//!    vnodes/node, minimal disruption on membership change) and a
//!    popularity-aware placer that spends a replica budget on the Zipf
//!    hot head.
//! 2. [`sim`] — the fleet discrete-event loop: per-tenant seeded
//!    arrival streams merged into one timeline, per-node FIFO queues and
//!    batchers (the `serve-sim` dispatch rules, verbatim), per-tenant
//!    admission control and cluster-global degrade ladders, and an
//!    interconnect charge per remote query priced by
//!    [`enmc_arch::scaleout::Network`].
//!
//! # Determinism contract
//!
//! Identical to [`enmc_serve`]'s: every output is a pure function of the
//! configuration and its seeds. Arrivals and shard draws come from
//! pinned [`enmc_serve::arrival::SplitMix64`] streams, placement is
//! seed-free hashing, service times come from the thread-invariant
//! calibration pass, and the event loop folds nodes and tenants in fixed
//! index order. Host wall-clock never enters any output, so a fleet
//! report is byte-identical for any `ENMC_THREADS` and any worker count.
//!
//! # Differential anchor
//!
//! A 1-node, 1-shard, 1-tenant, replica-free fleet is *exactly* a
//! `serve-sim` run: same shed decisions, same batches, same tier steps,
//! same latency histogram, bit for bit (`tests/fleet_differential.rs`).

pub mod placement;
pub mod sim;

pub use placement::{place, zipf_weights, HashRing, Placement, PlacementPolicy, VNODES};
pub use sim::{
    simulate_fleet, FleetBatchRecord, FleetConfig, FleetOutcome, FleetRequest, TenantConfig,
    TenantOutcome,
};
