//! Bit-packed INT4 storage — the wire/DRAM format of the Screener's
//! weights and activations.
//!
//! The ENMC DIMM stores screening operands as signed 4-bit codes, two per
//! byte (low nibble first). [`PackedInt4`] is that exact memory image with
//! safe accessors, so the functional DIMM model, the host runtime and any
//! serialization share one canonical packing.

/// A sequence of signed 4-bit values packed two per byte.
///
/// # Example
///
/// ```
/// use enmc_tensor::packed::PackedInt4;
/// let p = PackedInt4::from_codes(&[-8, 7, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.get(0), -8);
/// assert_eq!(p.to_codes(), vec![-8, 7, 3]);
/// assert_eq!(p.as_bytes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedInt4 {
    bytes: Vec<u8>,
    len: usize,
}

impl PackedInt4 {
    /// Packs signed codes; each must be in `[-8, 7]`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if a code is out of the 4-bit range.
    pub fn from_codes(codes: &[i8]) -> Self {
        let mut bytes = vec![0u8; codes.len().div_ceil(2)];
        for (i, &c) in codes.iter().enumerate() {
            debug_assert!((-8..=7).contains(&c), "code {c} out of INT4 range");
            let nibble = (c as u8) & 0x0f;
            if i % 2 == 0 {
                bytes[i / 2] |= nibble;
            } else {
                bytes[i / 2] |= nibble << 4;
            }
        }
        PackedInt4 { bytes, len: codes.len() }
    }

    /// Reinterprets raw bytes as `len` packed codes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `len` codes require.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Self {
        assert!(bytes.len() >= len.div_ceil(2), "byte buffer too short for {len} codes");
        PackedInt4 { bytes, len }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Code at position `i`, sign-extended.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> i8 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let b = self.bytes[i / 2];
        let nibble = if i.is_multiple_of(2) { b & 0x0f } else { b >> 4 };
        if nibble >= 8 {
            nibble as i8 - 16
        } else {
            nibble as i8
        }
    }

    /// Unpacks all codes.
    pub fn to_codes(&self) -> Vec<i8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Integer dot product of a code range against unpacked codes —
    /// the Screener MAC semantics operating directly on the packed image.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `len` or `other.len() != range length`.
    pub fn dot_range(&self, start: usize, other: &[i8]) -> i32 {
        assert!(start + other.len() <= self.len, "range out of bounds");
        other
            .iter()
            .enumerate()
            .map(|(j, &x)| self.get(start + j) as i32 * x as i32)
            .sum()
    }
}

impl FromIterator<i8> for PackedInt4 {
    fn from_iter<I: IntoIterator<Item = i8>>(iter: I) -> Self {
        let codes: Vec<i8> = iter.into_iter().collect();
        PackedInt4::from_codes(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_values() {
        let codes: Vec<i8> = (-8..8).collect();
        let p = PackedInt4::from_codes(&codes);
        assert_eq!(p.to_codes(), codes);
        assert_eq!(p.len(), 16);
        assert_eq!(p.as_bytes().len(), 8);
    }

    #[test]
    fn odd_length_roundtrip() {
        let codes = vec![1i8, -2, 3, -4, 5];
        let p = PackedInt4::from_codes(&codes);
        assert_eq!(p.to_codes(), codes);
        assert_eq!(p.as_bytes().len(), 3);
    }

    #[test]
    fn empty_is_fine() {
        let p = PackedInt4::from_codes(&[]);
        assert!(p.is_empty());
        assert!(p.to_codes().is_empty());
    }

    #[test]
    fn from_bytes_reinterprets() {
        let orig = PackedInt4::from_codes(&[7, -8, 0, 1]);
        let p = PackedInt4::from_bytes(orig.as_bytes().to_vec(), 4);
        assert_eq!(p, orig);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn from_bytes_checks_length() {
        PackedInt4::from_bytes(vec![0u8; 1], 4);
    }

    #[test]
    fn dot_range_matches_unpacked() {
        let codes: Vec<i8> = (0..32).map(|i| ((i * 5) % 15) as i8 - 7).collect();
        let p = PackedInt4::from_codes(&codes);
        let other: Vec<i8> = (0..8).map(|i| (i - 4) as i8).collect();
        for start in [0usize, 8, 24] {
            let expect: i32 = (0..8)
                .map(|j| codes[start + j] as i32 * other[j] as i32)
                .sum();
            assert_eq!(p.dot_range(start, &other), expect, "start {start}");
        }
    }

    #[test]
    fn collect_from_iterator() {
        let p: PackedInt4 = (-3i8..3).collect();
        assert_eq!(p.len(), 6);
        assert_eq!(p.get(0), -3);
    }
}
