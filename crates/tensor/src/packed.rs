//! Bit-packed INT4 storage — the wire/DRAM format of the Screener's
//! weights and activations.
//!
//! The ENMC DIMM stores screening operands as signed 4-bit codes, two per
//! byte (low nibble first). [`PackedInt4`] is that exact memory image with
//! safe accessors, so the functional DIMM model, the host runtime and any
//! serialization share one canonical packing.

use crate::quant::Precision;

/// A sequence of signed 4-bit values packed two per byte.
///
/// # Example
///
/// ```
/// use enmc_tensor::packed::PackedInt4;
/// let p = PackedInt4::from_codes(&[-8, 7, 3]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.get(0), -8);
/// assert_eq!(p.to_codes(), vec![-8, 7, 3]);
/// assert_eq!(p.as_bytes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackedInt4 {
    bytes: Vec<u8>,
    len: usize,
}

impl PackedInt4 {
    /// Packs signed codes; each must be in `[-8, 7]`.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if a code is out of the 4-bit range.
    pub fn from_codes(codes: &[i8]) -> Self {
        let mut bytes = vec![0u8; codes.len().div_ceil(2)];
        for (i, &c) in codes.iter().enumerate() {
            debug_assert!((-8..=7).contains(&c), "code {c} out of INT4 range");
            let nibble = (c as u8) & 0x0f;
            if i % 2 == 0 {
                bytes[i / 2] |= nibble;
            } else {
                bytes[i / 2] |= nibble << 4;
            }
        }
        PackedInt4 { bytes, len: codes.len() }
    }

    /// Reinterprets raw bytes as `len` packed codes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than `len` codes require.
    pub fn from_bytes(bytes: Vec<u8>, len: usize) -> Self {
        assert!(bytes.len() >= len.div_ceil(2), "byte buffer too short for {len} codes");
        PackedInt4 { bytes, len }
    }

    /// Number of codes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Code at position `i`, sign-extended.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> i8 {
        assert!(i < self.len, "index {i} out of bounds ({})", self.len);
        let b = self.bytes[i / 2];
        let nibble = if i.is_multiple_of(2) { b & 0x0f } else { b >> 4 };
        if nibble >= 8 {
            nibble as i8 - 16
        } else {
            nibble as i8
        }
    }

    /// Unpacks all codes.
    pub fn to_codes(&self) -> Vec<i8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Integer dot product of a code range against unpacked codes —
    /// the Screener MAC semantics operating directly on the packed image.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `len` or `other.len() != range length`.
    pub fn dot_range(&self, start: usize, other: &[i8]) -> i32 {
        assert!(start + other.len() <= self.len, "range out of bounds");
        other
            .iter()
            .enumerate()
            .map(|(j, &x)| self.get(start + j) as i32 * x as i32)
            .sum()
    }
}

/// Packs integer codes into the canonical DRAM byte image for `precision`.
///
/// INT8 stores one code per byte (two's complement), INT4 two per byte (low
/// nibble first, the [`PackedInt4`] layout), INT2 four per byte (low pair
/// first, 2-bit two's complement). This is the byte stream the fault
/// subsystem corrupts at DRAM read granularity.
///
/// # Errors
///
/// Returns an error string if `precision` is [`Precision::Fp32`] (floats
/// are not code-packed) or a code does not fit the precision's two's
/// complement range (e.g. `8` at INT4).
pub fn pack_codes(codes: &[i8], precision: Precision) -> Result<Vec<u8>, &'static str> {
    let bits = match precision {
        Precision::Fp32 => return Err("pack_codes: FP32 operands are not code-packed"),
        p => p.bits() as usize,
    };
    let lo = -(1i32 << (bits - 1));
    let hi = (1i32 << (bits - 1)) - 1;
    let per_byte = 8 / bits;
    let mut bytes = vec![0u8; codes.len().div_ceil(per_byte)];
    for (i, &c) in codes.iter().enumerate() {
        if (c as i32) < lo || (c as i32) > hi {
            return Err("pack_codes: code out of range for precision");
        }
        let field = (c as u8) & ((1u16 << bits) - 1) as u8;
        bytes[i / per_byte] |= field << ((i % per_byte) * bits);
    }
    Ok(bytes)
}

/// Inverse of [`pack_codes`]: sign-extends `len` codes out of the packed
/// byte image. Any bit pattern is accepted — a corrupted image unpacks to
/// the full two's complement range (e.g. `-8` at INT4 even though the
/// quantizer only emits `[-7, 7]`), exactly what hardware would latch.
///
/// # Errors
///
/// Returns an error string if `precision` is [`Precision::Fp32`] or the
/// buffer is shorter than `len` codes require.
pub fn unpack_codes(bytes: &[u8], len: usize, precision: Precision) -> Result<Vec<i8>, &'static str> {
    let bits = match precision {
        Precision::Fp32 => return Err("unpack_codes: FP32 operands are not code-packed"),
        p => p.bits() as usize,
    };
    let per_byte = 8 / bits;
    if bytes.len() < len.div_ceil(per_byte) {
        return Err("unpack_codes: byte buffer too short");
    }
    let mask = ((1u16 << bits) - 1) as u8;
    let sign = 1u8 << (bits - 1);
    let span = 1i16 << bits;
    Ok((0..len)
        .map(|i| {
            let field = (bytes[i / per_byte] >> ((i % per_byte) * bits)) & mask;
            if field >= sign {
                (field as i16 - span) as i8
            } else {
                field as i8
            }
        })
        .collect())
}

impl FromIterator<i8> for PackedInt4 {
    fn from_iter<I: IntoIterator<Item = i8>>(iter: I) -> Self {
        let codes: Vec<i8> = iter.into_iter().collect();
        PackedInt4::from_codes(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_values() {
        let codes: Vec<i8> = (-8..8).collect();
        let p = PackedInt4::from_codes(&codes);
        assert_eq!(p.to_codes(), codes);
        assert_eq!(p.len(), 16);
        assert_eq!(p.as_bytes().len(), 8);
    }

    #[test]
    fn odd_length_roundtrip() {
        let codes = vec![1i8, -2, 3, -4, 5];
        let p = PackedInt4::from_codes(&codes);
        assert_eq!(p.to_codes(), codes);
        assert_eq!(p.as_bytes().len(), 3);
    }

    #[test]
    fn empty_is_fine() {
        let p = PackedInt4::from_codes(&[]);
        assert!(p.is_empty());
        assert!(p.to_codes().is_empty());
    }

    #[test]
    fn from_bytes_reinterprets() {
        let orig = PackedInt4::from_codes(&[7, -8, 0, 1]);
        let p = PackedInt4::from_bytes(orig.as_bytes().to_vec(), 4);
        assert_eq!(p, orig);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn from_bytes_checks_length() {
        PackedInt4::from_bytes(vec![0u8; 1], 4);
    }

    #[test]
    fn dot_range_matches_unpacked() {
        let codes: Vec<i8> = (0..32).map(|i| ((i * 5) % 15) as i8 - 7).collect();
        let p = PackedInt4::from_codes(&codes);
        let other: Vec<i8> = (0..8).map(|i| (i - 4) as i8).collect();
        for start in [0usize, 8, 24] {
            let expect: i32 = (0..8)
                .map(|j| codes[start + j] as i32 * other[j] as i32)
                .sum();
            assert_eq!(p.dot_range(start, &other), expect, "start {start}");
        }
    }

    #[test]
    fn pack_codes_roundtrips_every_precision() {
        for (precision, lo, hi) in [
            (Precision::Int8, -128i8, 127i8),
            (Precision::Int4, -8, 7),
            (Precision::Int2, -2, 1),
        ] {
            let codes: Vec<i8> = (lo..=hi).collect();
            let bytes = pack_codes(&codes, precision).unwrap();
            assert_eq!(bytes.len(), precision.nbytes(codes.len()), "{precision}");
            let back = unpack_codes(&bytes, codes.len(), precision).unwrap();
            assert_eq!(back, codes, "{precision}");
        }
    }

    #[test]
    fn pack_codes_int4_matches_packed_int4_layout() {
        let codes = vec![1i8, -2, 3, -4, 5];
        let bytes = pack_codes(&codes, Precision::Int4).unwrap();
        assert_eq!(bytes, PackedInt4::from_codes(&codes).as_bytes());
    }

    #[test]
    fn pack_codes_rejects_fp32_and_out_of_range() {
        assert!(pack_codes(&[0], Precision::Fp32).is_err());
        assert!(pack_codes(&[8], Precision::Int4).is_err());
        assert!(pack_codes(&[2], Precision::Int2).is_err());
        assert!(unpack_codes(&[], 1, Precision::Int8).is_err());
        assert!(unpack_codes(&[0], 1, Precision::Fp32).is_err());
    }

    #[test]
    fn unpack_accepts_corrupted_bit_patterns() {
        // 0x88 holds two INT4 fields of 0b1000 = -8: never produced by the
        // quantizer (it clamps to ±7) but a single bit flip can create it.
        let codes = unpack_codes(&[0x88], 2, Precision::Int4).unwrap();
        assert_eq!(codes, vec![-8, -8]);
    }

    #[test]
    fn collect_from_iterator() {
        let p: PackedInt4 = (-3i8..3).collect();
        assert_eq!(p.len(), 6);
        assert_eq!(p.get(0), -3);
    }
}
