//! Random distributions for workload synthesis.
//!
//! The allowed dependency set includes `rand` but not `rand_distr`, so the
//! two distributions workload generation needs — Gaussian (hidden vectors,
//! classifier weights) and Zipf (category popularity, which shapes the
//! logit bias `b` and query targets) — are implemented here.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
///
/// Uses both uniform draws but returns a single variate to keep the API
/// stateless.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid u1 == 0 so ln is finite.
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > 1e-12 {
            break u;
        }
    };
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    mean + std_dev * standard_normal(rng)
}

/// Fills `out` with i.i.d. `N(mean, std_dev²)` samples.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], mean: f32, std_dev: f32) {
    for v in out {
        *v = normal(rng, mean, std_dev);
    }
}

/// Zipf-distributed integer sampler over `{0, 1, …, n-1}` with exponent `s`.
///
/// Rank 0 is the most popular category. Sampling uses an inverse-CDF table
/// built once at construction (O(n) memory, O(log n) per sample), which is
/// fine for the validation-set sizes used in workload generation.
///
/// # Example
///
/// ```
/// use enmc_tensor::dist::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
/// let zipf = Zipf::new(1000, 1.0).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `s >= 0`.
    ///
    /// # Errors
    ///
    /// Returns an error message if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Result<Self, &'static str> {
        if n == 0 {
            return Err("Zipf needs at least one rank");
        }
        if !s.is_finite() || s < 0.0 {
            return Err("Zipf exponent must be finite and non-negative");
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0_f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n`.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank < self.cdf.len(), "rank out of range");
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|probe| probe.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn fill_normal_fills_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0.0_f32; 64];
        fill_normal(&mut rng, &mut buf, 10.0, 0.001);
        assert!(buf.iter().all(|&x| (x - 10.0).abs() < 0.1));
    }

    #[test]
    fn zipf_validates_input() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 0.0).is_ok());
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2).unwrap();
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(50, 1.0).unwrap();
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(20, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in 0..20 {
            let emp = counts[r] as f64 / n as f64;
            assert!((emp - z.pmf(r)).abs() < 0.01, "rank {r}: {emp} vs {}", z.pmf(r));
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(5, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
