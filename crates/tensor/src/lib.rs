// Numeric kernels and their tests index arrays directly; iterator
// rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

//! Dense linear algebra, quantization, and numeric kernels for the ENMC
//! reproduction.
//!
//! This crate is the lowest layer of the workspace: everything that touches
//! raw numbers lives here so that the algorithm crate (`enmc-screen`), the
//! workload crate (`enmc-model`) and the architecture simulator
//! (`enmc-arch`) can share bit-exact kernels.
//!
//! The important pieces are:
//!
//! * [`Matrix`] / [`Vector`] — row-major `f32` dense storage with the
//!   matrix-vector products that dominate extreme classification
//!   (`z = W h + b`, paper Eq. 1).
//! * [`quant`] — symmetric linear quantization to INT2/INT4/INT8 with integer
//!   multiply-accumulate semantics matching the Screener's fixed-point MAC
//!   array (paper §5.2).
//! * [`projection`] — the Achlioptas sparse random projection
//!   `P ∈ √(3/k)·{−1,0,1}^{k×d}` used by the screening module (paper Eq. 3).
//! * [`activation`] — numerically stable softmax/sigmoid plus the 4th-order
//!   Taylor exponential used by the Executor's special-function unit
//!   (paper §6.2).
//! * [`select`] — top-k and threshold candidate selection (paper §4.2).
//! * [`dist`] — the random distributions (Gaussian, Zipf) used to synthesize
//!   workloads, implemented in-repo to keep the dependency set minimal.
//!
//! # Example
//!
//! ```
//! use enmc_tensor::{Matrix, Vector};
//!
//! // A tiny 4-category classifier with hidden dimension 3.
//! let w = Matrix::from_rows(&[
//!     &[1.0, 0.0, 0.0][..],
//!     &[0.0, 1.0, 0.0][..],
//!     &[0.0, 0.0, 1.0][..],
//!     &[1.0, 1.0, 1.0][..],
//! ]);
//! let h = Vector::from(vec![0.5, -0.25, 2.0]);
//! let z = w.matvec(&h);
//! assert_eq!(z.as_slice(), &[0.5, -0.25, 2.0, 2.25]);
//! ```

pub mod activation;
pub mod dist;
pub mod matrix;
pub mod packed;
pub mod projection;
pub mod quant;
pub mod select;
pub mod stats;

pub use activation::{sigmoid, softmax, softmax_in_place, taylor_exp, TAYLOR_EXP_ORDER};
pub use matrix::{Matrix, Vector};
pub use packed::{pack_codes, unpack_codes, PackedInt4};
pub use projection::SparseProjection;
pub use quant::{Precision, QuantMatrix, QuantMatrixPerRow, QuantVector};
pub use select::{threshold_filter, top_k_indices, Candidate};

/// Error type for shape mismatches and invalid numeric arguments.
///
/// All fallible constructors and kernels in this crate return
/// `Result<_, TensorError>`; panicking variants are documented as such.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape actually provided.
        found: (usize, usize),
    },
    /// An argument was outside its valid domain (e.g. zero dimension).
    InvalidArgument(&'static str),
}

impl core::fmt::Display for TensorError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, expected, found } => write!(
                f,
                "shape mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
