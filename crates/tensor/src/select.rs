//! Candidate selection: top-k search and threshold filtering (paper §4.2).
//!
//! After the Screener produces approximate logits `z̃`, ENMC selects the most
//! important `m` values ("candidates") either by top-m search (software
//! path) or by comparing against a preloaded threshold (the hardware FILTER
//! instruction backed by a comparator array, paper §5.2). Both are provided
//! here, plus a helper that calibrates a threshold to hit a target candidate
//! count on a validation set — the paper notes "the threshold value can be
//! tuned on validation sets".

/// A selected candidate: category index plus its approximate score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Category index in `[0, l)`.
    pub index: usize,
    /// The approximate (screening) logit that triggered selection.
    pub score: f32,
}

/// Returns the indices of the `k` largest values, sorted by descending
/// value (ties broken by lower index first).
///
/// If `k >= values.len()` all indices are returned.
///
/// This is an O(l log k) partial selection over a binary heap — the software
/// analogue of the comparator array.
pub fn top_k_indices(values: &[f32], k: usize) -> Vec<usize> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if k == 0 || values.is_empty() {
        return Vec::new();
    }
    // Min-heap of (value, Reverse(index)) keeps the k best seen so far.
    let mut heap: BinaryHeap<Reverse<(Ordered, Reverse<usize>)>> = BinaryHeap::new();
    for (i, &v) in values.iter().enumerate() {
        let item = Reverse((ordered(v), Reverse(i)));
        if heap.len() < k {
            heap.push(item);
        } else if let Some(&Reverse((top, _))) = heap.peek() {
            if ordered(v) > top {
                heap.pop();
                heap.push(item);
            }
        }
    }
    let mut out: Vec<(f32, usize)> =
        heap.into_iter().map(|Reverse((v, Reverse(i)))| (v.0, i)).collect();
    out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1)));
    out.into_iter().map(|(_, i)| i).collect()
}

/// Total-order wrapper so NaN logits sort below everything instead of
/// poisoning comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ordered(f32);

fn ordered(v: f32) -> Ordered {
    Ordered(if v.is_nan() { f32::NEG_INFINITY } else { v })
}

impl Eq for Ordered {}

impl PartialOrd for Ordered {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("NaN mapped to -inf")
    }
}

/// The hardware FILTER semantics: every value strictly greater than
/// `threshold` becomes a candidate, in index order (the order the comparator
/// array emits them).
pub fn threshold_filter(values: &[f32], threshold: f32) -> Vec<Candidate> {
    values
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v > threshold)
        .map(|(index, &score)| Candidate { index, score })
        .collect()
}

/// Calibrates a threshold such that, over the provided validation score
/// vectors, the *average* number of values above the threshold is at most
/// `target_candidates`.
///
/// Returns the calibrated threshold. With an empty validation set the
/// threshold is `f32::NEG_INFINITY` (select everything).
pub fn calibrate_threshold(validation: &[Vec<f32>], target_candidates: usize) -> f32 {
    if validation.is_empty() {
        return f32::NEG_INFINITY;
    }
    // Pool the per-sample scores that *would* be the m-th largest; the
    // average of those order statistics is a robust threshold.
    let mut cut_scores = Vec::with_capacity(validation.len());
    for scores in validation {
        let idx = top_k_indices(scores, target_candidates);
        if let Some(&last) = idx.last() {
            cut_scores.push(scores[last]);
        }
    }
    if cut_scores.is_empty() {
        return f32::NEG_INFINITY;
    }
    let sum: f64 = cut_scores.iter().map(|&x| x as f64).sum();
    // Slightly below the mean cut so the average count lands near the target
    // (strictly-greater filter semantics).
    (sum / cut_scores.len() as f64) as f32 - f32::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_basic() {
        let v = [0.1, 5.0, -2.0, 3.0, 4.0];
        assert_eq!(top_k_indices(&v, 3), vec![1, 4, 3]);
    }

    #[test]
    fn top_k_larger_than_len_returns_all_sorted() {
        let v = [1.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&v, 10), vec![1, 2, 0]);
    }

    #[test]
    fn top_k_zero_and_empty() {
        assert!(top_k_indices(&[1.0], 0).is_empty());
        assert!(top_k_indices(&[], 3).is_empty());
    }

    #[test]
    fn top_k_ties_prefer_lower_index() {
        let v = [2.0, 2.0, 1.0, 2.0];
        assert_eq!(top_k_indices(&v, 2), vec![0, 1]);
    }

    #[test]
    fn top_k_ignores_nan() {
        let v = [f32::NAN, 1.0, 2.0];
        assert_eq!(top_k_indices(&v, 2), vec![2, 1]);
    }

    #[test]
    fn threshold_filter_strictly_greater() {
        let c = threshold_filter(&[0.5, 1.0, 1.5], 1.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].index, 2);
        assert_eq!(c[0].score, 1.5);
    }

    #[test]
    fn threshold_filter_emits_index_order() {
        let c = threshold_filter(&[5.0, -1.0, 7.0, 6.0], 0.0);
        let idx: Vec<usize> = c.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn calibrated_threshold_hits_target_on_average() {
        // 50 validation vectors of 100 scores each.
        let validation: Vec<Vec<f32>> = (0..50)
            .map(|s| (0..100).map(|i| ((i * 37 + s * 13) % 101) as f32 / 101.0).collect())
            .collect();
        let target = 10;
        let t = calibrate_threshold(&validation, target);
        let avg: f64 = validation
            .iter()
            .map(|v| threshold_filter(v, t).len() as f64)
            .sum::<f64>()
            / validation.len() as f64;
        assert!((avg - target as f64).abs() <= 3.0, "avg candidates {avg}");
    }

    #[test]
    fn calibrate_empty_selects_everything() {
        assert_eq!(calibrate_threshold(&[], 5), f32::NEG_INFINITY);
    }
}
