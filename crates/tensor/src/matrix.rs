//! Row-major dense matrices and vectors.
//!
//! Extreme classification is dominated by the transformation `z = W h + b`
//! (paper Eq. 1) where `W` has one row per category. The storage here is
//! deliberately row-major so that "gather the rows of the selected
//! candidates" — the access pattern of candidates-only classification
//! (paper §4.2, Fig. 6c) — is a contiguous-slice operation, exactly as it is
//! on the ENMC DIMM.

use crate::TensorError;

/// A dense `f32` vector.
///
/// A thin newtype over `Vec<f32>` that carries the vector-space operations
/// the screening algorithm needs. Converts freely from/to `Vec<f32>`.
///
/// # Example
///
/// ```
/// use enmc_tensor::Vector;
/// let v = Vector::from(vec![1.0, 2.0]);
/// let w = Vector::from(vec![3.0, -1.0]);
/// assert_eq!(v.dot(&w), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f32>,
}

impl Vector {
    /// Creates a zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Vector { data: vec![0.0; len] }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f32> {
        self.data
    }

    /// Inner product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        dot(&self.data, &other.data)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Adds `other` element-wise into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.len(), other.len(), "add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// `self += s * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, s: f32, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * *b;
        }
    }

    /// Maximum absolute value (`0.0` for an empty vector).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }
}

impl From<Vec<f32>> for Vector {
    fn from(data: Vec<f32>) -> Self {
        Vector { data }
    }
}

impl From<Vector> for Vec<f32> {
    fn from(v: Vector) -> Self {
        v.data
    }
}

impl AsRef<[f32]> for Vector {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl FromIterator<f32> for Vector {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Vector { data: iter.into_iter().collect() }
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl std::ops::IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

/// A dense row-major `f32` matrix.
///
/// For an extreme classifier, `rows` is the category count `l` and `cols` is
/// the hidden dimension `d`; each row is one category's weight vector.
///
/// # Example
///
/// ```
/// use enmc_tensor::{Matrix, Vector};
/// let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
/// let z = m.matvec(&Vector::from(vec![1.0, 1.0]));
/// assert_eq!(z.as_slice(), &[3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::from_vec",
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally-long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows: rows.len(), cols, data }
    }

    /// Number of rows (categories `l` for a classifier).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (hidden dimension `d` for a classifier).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Immutable view of the whole row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the whole row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Full matrix-vector product `z = W h` (paper Eq. 1 without bias).
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != cols`.
    pub fn matvec(&self, h: &Vector) -> Vector {
        assert_eq!(h.len(), self.cols, "matvec: dimension mismatch");
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            out.push(dot(self.row(r), h.as_slice()));
        }
        Vector::from(out)
    }

    /// Matrix-vector product with bias: `z = W h + b` (paper Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != cols` or `b.len() != rows`.
    pub fn matvec_bias(&self, h: &Vector, b: &Vector) -> Vector {
        assert_eq!(b.len(), self.rows, "matvec_bias: bias length mismatch");
        let mut z = self.matvec(h);
        z.add_assign(b);
        z
    }

    /// Computes inner products for a subset of rows only — the
    /// candidates-only classification of paper Fig. 6(c).
    ///
    /// Returns `(index, w_index · h + b_index)` pairs in input order.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != cols`, `b.len() != rows`, or any index is out of
    /// bounds.
    pub fn matvec_rows(&self, indices: &[usize], h: &Vector, b: &Vector) -> Vec<(usize, f32)> {
        assert_eq!(h.len(), self.cols, "matvec_rows: dimension mismatch");
        assert_eq!(b.len(), self.rows, "matvec_rows: bias length mismatch");
        indices
            .iter()
            .map(|&i| (i, dot(self.row(i), h.as_slice()) + b[i]))
            .collect()
    }

    /// Transposed matrix-vector product `y = Wᵀ x` (used by SGD gradients).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.rows, "matvec_t: dimension mismatch");
        let mut out = vec![0.0_f32; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (o, w) in out.iter_mut().zip(self.row(r)) {
                *o += xr * *w;
            }
        }
        Vector::from(out)
    }

    /// Rank-1 update `W += s · x yᵀ` (outer product), the SGD weight step.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn rank_one_update(&mut self, s: f32, x: &Vector, y: &Vector) {
        assert_eq!(x.len(), self.rows, "rank_one_update: row mismatch");
        assert_eq!(y.len(), self.cols, "rank_one_update: col mismatch");
        for r in 0..self.rows {
            let sx = s * x[r];
            if sx == 0.0 {
                continue;
            }
            for (w, yv) in self.row_mut(r).iter_mut().zip(y.as_slice()) {
                *w += sx * *yv;
            }
        }
    }

    /// Dense matrix-matrix product `self * other`.
    ///
    /// Only used offline (SVD baseline, training); the simulated hardware
    /// never performs it.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let dst = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (d, &o) in dst.iter_mut().zip(orow) {
                    *d += a * o;
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Maximum absolute element value (`0.0` for an empty matrix).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, &x| m.max(x.abs()))
    }

    /// Bytes consumed by the `f32` payload (used by footprint models).
    pub fn nbytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }
}

/// Plain dot product over two equally-long slices.
///
/// Manually unrolled by 4 to keep the dependency chain short; this is the
/// single hottest loop of the whole repository.
///
/// # Panics
///
/// Panics (via `assert_eq!`) if the lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut s0 = 0.0_f32;
    let mut s1 = 0.0_f32;
    let mut s2 = 0.0_f32;
    let mut s3 = 0.0_f32;
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        s0 += a[j] * b[j];
        s1 += a[j + 1] * b[j + 1];
        s2 += a[j + 2] * b[j + 2];
        s3 += a[j + 3] * b[j + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for j in chunks * 4..a.len() {
        s += a[j] * b[j];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_basics() {
        let mut v = Vector::zeros(3);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        v[0] = 1.0;
        v[2] = -2.0;
        assert_eq!(v.as_slice(), &[1.0, 0.0, -2.0]);
        assert_eq!(v.max_abs(), 2.0);
    }

    #[test]
    fn vector_dot_and_norm() {
        let v = Vector::from(vec![3.0, 4.0]);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.norm(), 5.0);
    }

    #[test]
    fn vector_axpy() {
        let mut v = Vector::from(vec![1.0, 1.0]);
        v.axpy(2.0, &Vector::from(vec![1.0, -1.0]));
        assert_eq!(v.as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn vector_from_iterator() {
        let v: Vector = (0..4).map(|i| i as f32).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn matrix_from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
        let err = Matrix::from_vec(2, 2, vec![0.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[-1.0, 0.0, 1.0][..]]);
        let h = Vector::from(vec![1.0, 0.5, 2.0]);
        let z = m.matvec(&h);
        assert_eq!(z.as_slice(), &[8.0, 1.0]);
    }

    #[test]
    fn matvec_bias_adds_bias() {
        let m = Matrix::from_rows(&[&[1.0][..], &[2.0][..]]);
        let z = m.matvec_bias(&Vector::from(vec![2.0]), &Vector::from(vec![10.0, 20.0]));
        assert_eq!(z.as_slice(), &[12.0, 24.0]);
    }

    #[test]
    fn matvec_rows_gathers_candidates() {
        let m = Matrix::from_rows(&[&[1.0][..], &[2.0][..], &[3.0][..]]);
        let out = m.matvec_rows(&[2, 0], &Vector::from(vec![10.0]), &Vector::zeros(3));
        assert_eq!(out, vec![(2, 30.0), (0, 10.0)]);
    }

    #[test]
    fn matvec_t_is_transpose_product() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let y = m.matvec_t(&Vector::from(vec![1.0, 1.0]));
        assert_eq!(y.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn rank_one_update_outer_product() {
        let mut m = Matrix::zeros(2, 2);
        m.rank_one_update(0.5, &Vector::from(vec![2.0, 4.0]), &Vector::from(vec![1.0, 3.0]));
        assert_eq!(m.as_slice(), &[1.0, 3.0, 2.0, 6.0]);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[&[1.0, 2.0][..], &[3.0, 4.0][..]]);
        let id = Matrix::from_rows(&[&[1.0, 0.0][..], &[0.0, 1.0][..]]);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0][..], &[4.0, 5.0, 6.0][..]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn dot_handles_remainder_lengths() {
        for n in 0..9 {
            let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let expect: f32 = a.iter().map(|x| x * x).sum();
            assert_eq!(dot(&a, &a), expect, "n={n}");
        }
    }

    #[test]
    fn nbytes_counts_payload() {
        let m = Matrix::zeros(10, 3);
        assert_eq!(m.nbytes(), 120);
    }
}
