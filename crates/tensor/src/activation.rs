//! Softmax, sigmoid and the Executor's Taylor-approximated exponential.
//!
//! The classification layer ends with a softmax normalization (paper Eq. 2);
//! multi-label recommendation models use sigmoid instead (paper §4.1). The
//! ENMC Executor implements the exponential with a 4th-order Taylor
//! expansion in its special-function unit (paper §6.2: "we approximate the
//! exponential function with Taylor expansion to the 4ᵗʰ order"). We provide
//! both the exact and the Taylor variants so that functional results can be
//! produced with the same arithmetic the simulated hardware uses.

/// Order of the Taylor expansion used by the Executor's special-function
/// unit (paper §6.2).
pub const TAYLOR_EXP_ORDER: u32 = 4;

/// 4th-order Taylor approximation of `exp(x)` with range reduction.
///
/// Direct truncated-Taylor evaluation is only accurate near zero, so the
/// hardware-style implementation reduces the range first:
/// `exp(x) = 2^n · exp(r)` with `x = n·ln2 + r`, `|r| ≤ ln2/2`, then applies
/// the degree-4 polynomial to `r`. The `2^n` factor is an exponent-field
/// shift in hardware.
///
/// # Example
///
/// ```
/// use enmc_tensor::taylor_exp;
/// assert!((taylor_exp(1.0) - 1.0f32.exp()).abs() < 1e-3);
/// ```
pub fn taylor_exp(x: f32) -> f32 {
    if !x.is_finite() {
        return if x > 0.0 { f32::INFINITY } else { 0.0 };
    }
    const LN2: f32 = core::f32::consts::LN_2;
    let n = (x / LN2).round();
    let r = x - n * LN2;
    // exp(r) ≈ 1 + r + r²/2 + r³/6 + r⁴/24 for |r| ≤ ln2/2.
    let r2 = r * r;
    let poly = 1.0 + r + r2 * 0.5 + r2 * r / 6.0 + r2 * r2 / 24.0;
    // Clamp n so exp2 stays in range.
    let n = n.clamp(-126.0, 127.0);
    poly * pow2i(n as i32)
}

/// `2^n` for integer `n` in `[-126, 127]` via exponent-field construction.
fn pow2i(n: i32) -> f32 {
    f32::from_bits(((n + 127) as u32) << 23)
}

/// Numerically stable logistic sigmoid `1 / (1 + e^{-x})`.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid computed with the Executor's Taylor exponential.
pub fn sigmoid_taylor(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + taylor_exp(-x))
    } else {
        let e = taylor_exp(x);
        e / (1.0 + e)
    }
}

/// Numerically stable softmax (paper Eq. 2): subtracts the maximum before
/// exponentiating.
///
/// Returns a probability vector summing to 1 (for non-empty, finite input).
pub fn softmax(z: &[f32]) -> Vec<f32> {
    let mut out = z.to_vec();
    softmax_in_place(&mut out);
    out
}

/// In-place variant of [`softmax`].
pub fn softmax_in_place(z: &mut [f32]) {
    softmax_impl(z, f32::exp)
}

/// Softmax evaluated with the Executor's Taylor exponential — the exact
/// arithmetic the simulated special-function unit performs.
pub fn softmax_taylor(z: &[f32]) -> Vec<f32> {
    let mut out = z.to_vec();
    softmax_impl(&mut out, taylor_exp);
    out
}

fn softmax_impl(z: &mut [f32], exp: impl Fn(f32) -> f32) {
    if z.is_empty() {
        return;
    }
    let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0_f32;
    for v in z.iter_mut() {
        *v = exp(*v - max);
        sum += *v;
    }
    if sum > 0.0 {
        for v in z.iter_mut() {
            *v /= sum;
        }
    }
}

/// Natural-log perplexity contribution of predicting `target` from logits:
/// `-log p(target)` under a stable log-softmax.
///
/// # Panics
///
/// Panics if `target >= z.len()`.
pub fn neg_log_prob(z: &[f32], target: usize) -> f64 {
    assert!(target < z.len(), "target out of range");
    let max = z.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
    let log_sum: f64 = (z.iter().map(|&v| ((v as f64) - max).exp()).sum::<f64>()).ln() + max;
    log_sum - z[target] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taylor_exp_accurate_over_working_range() {
        for i in -80..=80 {
            let x = i as f32 * 0.25; // [-20, 20]
            let exact = x.exp();
            let approx = taylor_exp(x);
            let rel = ((approx - exact) / exact).abs();
            assert!(rel < 2e-4, "x={x} exact={exact} approx={approx} rel={rel}");
        }
    }

    #[test]
    fn taylor_exp_handles_extremes() {
        assert_eq!(taylor_exp(f32::NEG_INFINITY), 0.0);
        assert_eq!(taylor_exp(f32::INFINITY), f32::INFINITY);
        assert!(taylor_exp(-1000.0) >= 0.0);
        assert!(taylor_exp(0.0) - 1.0 < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0, -1.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let p = softmax(&[1000.0, 0.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1].abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_is_noop() {
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_taylor_close_to_exact() {
        let z = [0.3, -1.2, 2.5, 0.0, 1.1];
        let exact = softmax(&z);
        let taylor = softmax_taylor(&z);
        for (a, b) in exact.iter().zip(&taylor) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        for i in -40..=40 {
            let x = i as f32 * 0.5;
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!((s + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_taylor_close_to_exact() {
        for i in -20..=20 {
            let x = i as f32 * 0.4;
            assert!((sigmoid(x) - sigmoid_taylor(x)).abs() < 1e-4);
        }
    }

    #[test]
    fn neg_log_prob_matches_softmax() {
        let z = [0.5, 1.5, -0.5];
        let p = softmax(&z);
        for t in 0..3 {
            let nlp = neg_log_prob(&z, t);
            assert!((nlp - (-(p[t] as f64).ln())).abs() < 1e-5);
        }
    }

    #[test]
    fn pow2i_matches_exp2() {
        for n in [-10, -1, 0, 1, 10, 30] {
            assert_eq!(pow2i(n), (n as f32).exp2());
        }
    }
}
