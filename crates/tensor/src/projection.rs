//! Achlioptas sparse random projection (paper §4.2, Eq. 3).
//!
//! The screening module first projects the `d`-dimensional hidden vector `h`
//! into a `k`-dimensional space with
//! `P ∈ √(3/k) · {−1, 0, 1}^{k×d}`, where each entry is `+1` with
//! probability 1/6, `−1` with probability 1/6 and `0` with probability 2/3
//! (Achlioptas, PODS'01 — the paper's reference \[1\]). The paper notes the
//! matrix "can be represented in 2-bit format" with overhead "less than
//! 0.1%" of the classifier weights; we store only the non-zero coordinates,
//! which is even cheaper and makes `P h` an O(nnz) operation.

use crate::matrix::{Matrix, Vector};
use crate::TensorError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse `{−1, 0, +1}` random projection with scale `√(3/k)`.
///
/// Stored as per-row lists of `(column, sign)` pairs.
///
/// # Example
///
/// ```
/// use enmc_tensor::{SparseProjection, Vector};
/// let p = SparseProjection::new(8, 64, 42).unwrap();
/// let h = Vector::from(vec![1.0; 64]);
/// let ph = p.project(&h);
/// assert_eq!(ph.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct SparseProjection {
    k: usize,
    d: usize,
    /// `(col, +1/-1)` pairs for each of the `k` rows.
    rows: Vec<Vec<(u32, i8)>>,
    scale: f32,
}

impl SparseProjection {
    /// Samples a fresh `k × d` projection from `seed`.
    ///
    /// Entries are `+1`/`−1` each with probability 1/6 and `0` otherwise,
    /// scaled by `√(3/k)` when applied.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `k == 0` or `d == 0`.
    pub fn new(k: usize, d: usize, seed: u64) -> Result<Self, TensorError> {
        if k == 0 || d == 0 {
            return Err(TensorError::InvalidArgument("projection dims must be nonzero"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(k);
        for _ in 0..k {
            let mut row = Vec::new();
            for c in 0..d {
                // P(+1) = P(-1) = 1/6, P(0) = 2/3.
                let u: u32 = rng.random_range(0..6);
                match u {
                    0 => row.push((c as u32, 1)),
                    1 => row.push((c as u32, -1)),
                    _ => {}
                }
            }
            rows.push(row);
        }
        Ok(SparseProjection { k, d, rows, scale: (3.0 / k as f32).sqrt() })
    }

    /// Output (projected) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Input (hidden) dimension `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The `√(3/k)` scale applied on projection.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Total number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Storage bytes at the paper's 2-bit-per-entry dense encoding — used by
    /// the footprint model to reproduce the "<0.1% overhead" claim.
    pub fn nbytes_dense_2bit(&self) -> usize {
        (self.k * self.d).div_ceil(4)
    }

    /// Applies the projection: `y = P h`, `y ∈ ℝᵏ`.
    ///
    /// # Panics
    ///
    /// Panics if `h.len() != d`.
    pub fn project(&self, h: &Vector) -> Vector {
        assert_eq!(h.len(), self.d, "project: dimension mismatch");
        let hs = h.as_slice();
        let mut out = Vec::with_capacity(self.k);
        for row in &self.rows {
            let mut acc = 0.0_f32;
            for &(c, s) in row {
                let v = hs[c as usize];
                if s > 0 {
                    acc += v;
                } else {
                    acc -= v;
                }
            }
            out.push(acc * self.scale);
        }
        Vector::from(out)
    }

    /// Materializes the dense `k × d` matrix (tests / SVD baseline only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.k, self.d);
        for (r, row) in self.rows.iter().enumerate() {
            for &(c, s) in row {
                m.set(r, c as usize, s as f32 * self.scale);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        assert!(SparseProjection::new(0, 4, 0).is_err());
        assert!(SparseProjection::new(4, 0, 0).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = SparseProjection::new(4, 32, 7).unwrap();
        let b = SparseProjection::new(4, 32, 7).unwrap();
        let h: Vector = (0..32).map(|i| i as f32).collect();
        assert_eq!(a.project(&h), b.project(&h));
    }

    #[test]
    fn differs_across_seeds() {
        let a = SparseProjection::new(4, 128, 1).unwrap();
        let b = SparseProjection::new(4, 128, 2).unwrap();
        let h: Vector = (0..128).map(|i| (i as f32).sin()).collect();
        assert_ne!(a.project(&h), b.project(&h));
    }

    #[test]
    fn sparse_matches_dense_apply() {
        let p = SparseProjection::new(6, 40, 3).unwrap();
        let h: Vector = (0..40).map(|i| (i as f32 * 0.1).cos()).collect();
        let sparse = p.project(&h);
        let dense = p.to_dense().matvec(&h);
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn density_is_about_one_third() {
        let p = SparseProjection::new(64, 512, 11).unwrap();
        let density = p.nnz() as f64 / (64.0 * 512.0);
        assert!((0.28..0.39).contains(&density), "density {density}");
    }

    #[test]
    fn scale_is_sqrt_3_over_k() {
        let p = SparseProjection::new(12, 8, 0).unwrap();
        assert!((p.scale() - (3.0_f32 / 12.0).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn preserves_norms_approximately() {
        // Johnson–Lindenstrauss: expected squared norm is preserved.
        // Average over several vectors to keep the test robust.
        let d = 512;
        let k = 128;
        let p = SparseProjection::new(k, d, 99).unwrap();
        let mut ratio_sum = 0.0_f64;
        let n = 20;
        for s in 0..n {
            let h: Vector = (0..d).map(|i| ((i * 31 + s * 17) as f32 * 0.01).sin()).collect();
            let ph = p.project(&h);
            ratio_sum += (ph.norm() / h.norm()) as f64;
        }
        let mean_ratio = ratio_sum / n as f64;
        assert!((0.85..1.15).contains(&mean_ratio), "mean norm ratio {mean_ratio}");
    }

    #[test]
    fn overhead_under_point_one_percent_for_paper_shapes() {
        // Transformer-W268K: l=267744, d=512, scale 0.25 -> k=128.
        let p = SparseProjection::new(128, 512, 0).unwrap();
        let classifier_bytes = 267_744usize * 512 * 4;
        let overhead = p.nbytes_dense_2bit() as f64 / classifier_bytes as f64;
        assert!(overhead < 0.001, "projection overhead {overhead}");
    }
}
