//! Symmetric linear quantization and integer MAC semantics.
//!
//! The ENMC Screener processes the screening weights `W̃` and the projected
//! feature vector with *fixed-point* arithmetic — the paper evaluates INT4 as
//! the sweet spot (Fig. 12b) and provisions 128 INT4 MACs per rank
//! (Table 3). This module provides:
//!
//! * [`Precision`] — the precisions the hardware (and the sensitivity study)
//!   support: FP32, INT8, INT4, INT2;
//! * [`QuantVector`] / [`QuantMatrix`] — symmetrically quantized tensors that
//!   remember their scale;
//! * integer multiply-accumulate kernels whose numerical results are exactly
//!   what an integer MAC array would produce (`i32` accumulation of `i8×i8`
//!   products, rescaled once at the end).
//!
//! Quantization is *symmetric per-tensor*: `q = clamp(round(x / s))` with
//! `s = max|x| / qmax`. This matches the paper's description of "4-bit
//! fixed-point quantization on the screening module" (§7.1).

use crate::matrix::{Matrix, Vector};
use crate::TensorError;

/// Numeric precision of a screening operand.
///
/// `Fp32` is included so the sensitivity sweep of paper Fig. 12(b) can
/// compare quantized screening against single-precision screening with the
/// same code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Precision {
    /// IEEE-754 single precision (no quantization).
    Fp32,
    /// 8-bit signed integers, range `[-127, 127]`.
    Int8,
    /// 4-bit signed integers, range `[-7, 7]` (the ENMC Screener default).
    Int4,
    /// 2-bit signed integers, range `[-1, 1]`.
    Int2,
}

impl Precision {
    /// Bits per element.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Fp32 => 32,
            Precision::Int8 => 8,
            Precision::Int4 => 4,
            Precision::Int2 => 2,
        }
    }

    /// Bytes consumed by `n` elements at this precision (densely packed).
    pub fn nbytes(self, n: usize) -> usize {
        (n * self.bits() as usize).div_ceil(8)
    }

    /// Largest representable magnitude of the integer code, or `None` for
    /// floating point.
    pub fn qmax(self) -> Option<i32> {
        match self {
            Precision::Fp32 => None,
            Precision::Int8 => Some(127),
            Precision::Int4 => Some(7),
            Precision::Int2 => Some(1),
        }
    }

    /// All precisions in decreasing-fidelity order, as swept by Fig. 12(b).
    pub fn sweep() -> [Precision; 4] {
        [Precision::Fp32, Precision::Int8, Precision::Int4, Precision::Int2]
    }
}

impl core::fmt::Display for Precision {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Precision::Fp32 => "FP32",
            Precision::Int8 => "INT8",
            Precision::Int4 => "INT4",
            Precision::Int2 => "INT2",
        };
        f.write_str(s)
    }
}

/// A symmetrically quantized vector: integer codes plus a single scale.
///
/// Dequantized value of element `i` is `codes[i] as f32 * scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantVector {
    codes: Vec<i8>,
    scale: f32,
    precision: Precision,
}

impl QuantVector {
    /// Quantizes `v` at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `precision` is
    /// [`Precision::Fp32`] (use the float path instead) or `v` is empty.
    pub fn quantize(v: &Vector, precision: Precision) -> Result<Self, TensorError> {
        let qmax = precision
            .qmax()
            .ok_or(TensorError::InvalidArgument("cannot integer-quantize at FP32"))?;
        if v.is_empty() {
            return Err(TensorError::InvalidArgument("cannot quantize empty vector"));
        }
        let max_abs = v.max_abs();
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax as f32 };
        let codes = v
            .as_slice()
            .iter()
            .map(|&x| quantize_one(x, scale, qmax))
            .collect();
        Ok(QuantVector { codes, scale, precision })
    }

    /// The integer codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// The per-tensor scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// The precision this vector was quantized at.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reconstructs the floating-point vector.
    pub fn dequantize(&self) -> Vector {
        self.codes.iter().map(|&c| c as f32 * self.scale).collect()
    }

    /// Packed storage size in bytes at the nominal bit width.
    pub fn nbytes(&self) -> usize {
        self.precision.nbytes(self.codes.len())
    }
}

/// A symmetrically quantized row-major matrix (per-tensor scale).
///
/// This is the in-memory image of the Screener weight `W̃` on the ENMC DIMM:
/// each row is one category's reduced-dimension weight vector, stored at
/// INT4 (by default) and streamed through the integer MAC array.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    scale: f32,
    precision: Precision,
}

/// A row-wise quantized matrix: one scale per category row.
///
/// Per-row scales cost `4·l` extra bytes (folded into the same stream as
/// the FP32 bias, so the hardware cost is one more multiplier per output)
/// but preserve outlier rows that a single tensor-wide scale would crush —
/// the standard accuracy/storage trade-off the Fig. 12(b) study can be
/// extended with.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrixPerRow {
    rows: usize,
    cols: usize,
    codes: Vec<i8>,
    scales: Vec<f32>,
    precision: Precision,
}

impl QuantMatrixPerRow {
    /// Quantizes `m` with an independent symmetric scale per row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `precision` is
    /// [`Precision::Fp32`] or `m` has zero elements.
    pub fn quantize(m: &Matrix, precision: Precision) -> Result<Self, TensorError> {
        let qmax = precision
            .qmax()
            .ok_or(TensorError::InvalidArgument("cannot integer-quantize at FP32"))?;
        if m.rows() == 0 || m.cols() == 0 {
            return Err(TensorError::InvalidArgument("cannot quantize empty matrix"));
        }
        let mut codes = Vec::with_capacity(m.rows() * m.cols());
        let mut scales = Vec::with_capacity(m.rows());
        for r in 0..m.rows() {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0_f32, |acc, &x| acc.max(x.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax as f32 };
            scales.push(scale);
            codes.extend(row.iter().map(|&x| quantize_one(x, scale, qmax)));
        }
        Ok(QuantMatrixPerRow { rows: m.rows(), cols: m.cols(), codes, scales, precision })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Integer codes of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row index out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the floating-point matrix.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (dst, &c) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *dst = c as f32 * s;
            }
        }
        out
    }

    /// Integer matrix-vector product with per-row rescale.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_quant(&self, x: &QuantVector) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec_quant: dimension mismatch");
        let xcodes = x.codes();
        (0..self.rows)
            .map(|r| dot_i8(self.row(r), xcodes) as f32 * (self.scales[r] * x.scale()))
            .collect()
    }

    /// Packed code bytes plus the FP32 scale column.
    pub fn nbytes(&self) -> usize {
        self.precision.nbytes(self.codes.len()) + self.rows * 4
    }
}

impl QuantMatrix {
    /// Quantizes `m` at `precision` with one shared scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `precision` is
    /// [`Precision::Fp32`] or `m` has zero elements.
    pub fn quantize(m: &Matrix, precision: Precision) -> Result<Self, TensorError> {
        let qmax = precision
            .qmax()
            .ok_or(TensorError::InvalidArgument("cannot integer-quantize at FP32"))?;
        if m.rows() == 0 || m.cols() == 0 {
            return Err(TensorError::InvalidArgument("cannot quantize empty matrix"));
        }
        let max_abs = m.max_abs();
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / qmax as f32 };
        let codes = m
            .as_slice()
            .iter()
            .map(|&x| quantize_one(x, scale, qmax))
            .collect();
        Ok(QuantMatrix { rows: m.rows(), cols: m.cols(), codes, scale, precision })
    }

    /// Rebuilds a quantized matrix from raw integer codes and a known scale.
    ///
    /// Unlike [`QuantMatrix::quantize`] the codes are *not* clamped to the
    /// precision's `qmax`: this constructor exists so the fault subsystem can
    /// re-materialize a weight image after bit-level corruption, and a flipped
    /// sign bit legitimately yields e.g. `-8` at INT4 — exactly the value an
    /// integer MAC array would consume. Codes must still fit the precision's
    /// two's complement *storage* range.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `precision` is
    /// [`Precision::Fp32`], a dimension is zero, `codes.len() != rows*cols`,
    /// a code exceeds the storage range, or `scale` is not finite-positive.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        codes: Vec<i8>,
        scale: f32,
        precision: Precision,
    ) -> Result<Self, TensorError> {
        if precision.qmax().is_none() {
            return Err(TensorError::InvalidArgument("from_parts requires an integer precision"));
        }
        if rows == 0 || cols == 0 {
            return Err(TensorError::InvalidArgument("from_parts: zero dimension"));
        }
        if codes.len() != rows * cols {
            return Err(TensorError::InvalidArgument("from_parts: codes.len() != rows*cols"));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TensorError::InvalidArgument("from_parts: scale must be finite and positive"));
        }
        let bits = precision.bits();
        let lo = -(1i32 << (bits - 1));
        let hi = (1i32 << (bits - 1)) - 1;
        if codes.iter().any(|&c| (c as i32) < lo || (c as i32) > hi) {
            return Err(TensorError::InvalidArgument("from_parts: code outside storage range"));
        }
        Ok(QuantMatrix { rows, cols, codes, scale, precision })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// All integer codes, row-major — the payload that [`crate::packed::pack_codes`]
    /// serializes into the DRAM byte image.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Per-tensor scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Precision of the codes.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Integer codes of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[i8] {
        assert!(r < self.rows, "row index out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// Reconstructs the floating-point matrix.
    pub fn dequantize(&self) -> Matrix {
        let data = self.codes.iter().map(|&c| c as f32 * self.scale).collect();
        Matrix::from_vec(self.rows, self.cols, data).expect("shape preserved")
    }

    /// Integer matrix-vector product against a quantized activation,
    /// reproducing the Screener MAC array: `i8 × i8` products accumulated in
    /// `i32`, rescaled once by `scale_w * scale_x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_quant(&self, x: &QuantVector) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec_quant: dimension mismatch");
        let rescale = self.scale * x.scale();
        let xcodes = x.codes();
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let acc = dot_i8(self.row(r), xcodes);
            out.push(acc as f32 * rescale);
        }
        Vector::from(out)
    }

    /// Packed storage size in bytes at the nominal bit width — the quantity
    /// that determines Screener DRAM traffic.
    pub fn nbytes(&self) -> usize {
        self.precision.nbytes(self.codes.len())
    }
}

/// Quantizes one value: `clamp(round(x / scale), -qmax, qmax)`.
fn quantize_one(x: f32, scale: f32, qmax: i32) -> i8 {
    let q = (x / scale).round() as i32;
    q.clamp(-qmax, qmax) as i8
}

/// Integer dot product with `i32` accumulation (the MAC-array semantics).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    assert_eq!(a.len(), b.len(), "dot_i8: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f32]) -> Vector {
        Vector::from(data.to_vec())
    }

    #[test]
    fn precision_bits_and_bytes() {
        assert_eq!(Precision::Fp32.bits(), 32);
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int4.nbytes(3), 2); // 12 bits -> 2 bytes
        assert_eq!(Precision::Int8.nbytes(3), 3);
        assert_eq!(Precision::Int2.nbytes(8), 2);
    }

    #[test]
    fn precision_qmax() {
        assert_eq!(Precision::Fp32.qmax(), None);
        assert_eq!(Precision::Int8.qmax(), Some(127));
        assert_eq!(Precision::Int4.qmax(), Some(7));
        assert_eq!(Precision::Int2.qmax(), Some(1));
    }

    #[test]
    fn quantize_vector_roundtrip_error_bounded() {
        let x = v(&[0.9, -0.5, 0.1, 0.0, 0.33]);
        let q = QuantVector::quantize(&x, Precision::Int8).unwrap();
        let back = q.dequantize();
        // Error bound for symmetric quantization is scale/2 per element.
        for (a, b) in x.as_slice().iter().zip(back.as_slice()) {
            assert!((a - b).abs() <= q.scale() / 2.0 + 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn quantize_rejects_fp32_and_empty() {
        assert!(QuantVector::quantize(&v(&[1.0]), Precision::Fp32).is_err());
        assert!(QuantVector::quantize(&Vector::zeros(0), Precision::Int4).is_err());
        assert!(QuantMatrix::quantize(&Matrix::zeros(0, 4), Precision::Int4).is_err());
    }

    #[test]
    fn quantize_zero_vector_is_stable() {
        let q = QuantVector::quantize(&Vector::zeros(4), Precision::Int4).unwrap();
        assert_eq!(q.dequantize(), Vector::zeros(4));
    }

    #[test]
    fn int4_codes_clamped_to_pm7() {
        let x = v(&[1.0, -1.0, 0.5]);
        let q = QuantVector::quantize(&x, Precision::Int4).unwrap();
        assert!(q.codes().iter().all(|&c| (-7..=7).contains(&(c as i32))));
        assert_eq!(q.codes()[0], 7);
        assert_eq!(q.codes()[1], -7);
    }

    #[test]
    fn int2_is_ternary() {
        let x = v(&[1.0, -1.0, 0.1, -0.1]);
        let q = QuantVector::quantize(&x, Precision::Int2).unwrap();
        assert!(q.codes().iter().all(|&c| (-1..=1).contains(&(c as i32))));
    }

    #[test]
    fn matvec_quant_matches_dequantized_float_product() {
        let m = Matrix::from_rows(&[&[0.5, -0.25][..], &[1.0, 1.0][..]]);
        let qm = QuantMatrix::quantize(&m, Precision::Int8).unwrap();
        let x = v(&[0.7, -0.3]);
        let qx = QuantVector::quantize(&x, Precision::Int8).unwrap();
        let z_int = qm.matvec_quant(&qx);
        let z_ref = qm.dequantize().matvec(&qx.dequantize());
        for (a, b) in z_int.as_slice().iter().zip(z_ref.as_slice()) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn int4_matvec_approximates_float_matvec() {
        // A smooth matrix quantized at INT4 should approximate the float
        // product with relative error well under 20%.
        let rows: Vec<Vec<f32>> =
            (0..8).map(|r| (0..16).map(|c| ((r * 16 + c) as f32).sin()).collect()).collect();
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&slices);
        let x: Vector = (0..16).map(|i| (i as f32 * 0.37).cos()).collect();
        let qm = QuantMatrix::quantize(&m, Precision::Int4).unwrap();
        let qx = QuantVector::quantize(&x, Precision::Int4).unwrap();
        let approx = qm.matvec_quant(&qx);
        let exact = m.matvec(&x);
        let err: f32 = approx
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum::<f32>()
            / exact.as_slice().iter().map(|b| b.abs()).sum::<f32>();
        assert!(err < 0.2, "relative error too large: {err}");
    }

    #[test]
    fn quant_matrix_nbytes_packs_int4() {
        let m = Matrix::zeros(10, 16);
        let q = QuantMatrix::quantize(&m, Precision::Int4).unwrap();
        assert_eq!(q.nbytes(), 80); // 160 elements * 0.5 bytes
    }

    #[test]
    fn per_row_quantization_handles_outlier_rows() {
        // One huge row would destroy per-tensor INT4 resolution of the
        // small rows; per-row scales keep both accurate.
        let mut m = Matrix::zeros(4, 8);
        for (r, scale) in [(0usize, 0.01f32), (1, 0.02), (2, 0.015), (3, 100.0)] {
            for (c, v) in m.row_mut(r).iter_mut().enumerate() {
                *v = scale * ((c as f32 * 0.7).sin());
            }
        }
        let x: Vector = (0..8).map(|i| (i as f32 * 0.3).cos()).collect();
        let qx = QuantVector::quantize(&x, Precision::Int4).unwrap();
        let exact = m.matvec(&x);

        let per_tensor = QuantMatrix::quantize(&m, Precision::Int4).unwrap().matvec_quant(&qx);
        let per_row = QuantMatrixPerRow::quantize(&m, Precision::Int4).unwrap().matvec_quant(&qx);
        let err = |approx: &Vector, r: usize| (approx[r] - exact[r]).abs() / exact[r].abs().max(1e-9);
        // Small rows: per-tensor collapses them to zero codes; per-row keeps
        // them within quantization noise.
        for r in 0..3 {
            assert!(err(&per_row, r) < 0.25, "row {r}: per-row err {}", err(&per_row, r));
            assert!(err(&per_tensor, r) > 0.5, "row {r}: per-tensor err {}", err(&per_tensor, r));
        }
    }

    #[test]
    fn per_row_roundtrip_bounded() {
        let rows: Vec<Vec<f32>> =
            (0..6).map(|r| (0..10).map(|c| ((r * 10 + c) as f32).sin() * (r + 1) as f32).collect()).collect();
        let slices: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let m = Matrix::from_rows(&slices);
        let q = QuantMatrixPerRow::quantize(&m, Precision::Int8).unwrap();
        let back = q.dequantize();
        for r in 0..6 {
            for c in 0..10 {
                assert!((m.get(r, c) - back.get(r, c)).abs() <= q.scales()[r] * 0.5 + 1e-6);
            }
        }
        assert_eq!(q.nbytes(), 60 + 24); // 60 codes @ INT8 + 6 scales
    }

    #[test]
    fn per_row_rejects_bad_input() {
        assert!(QuantMatrixPerRow::quantize(&Matrix::zeros(0, 4), Precision::Int4).is_err());
        assert!(QuantMatrixPerRow::quantize(&Matrix::zeros(4, 4), Precision::Fp32).is_err());
    }

    #[test]
    fn from_parts_roundtrips_and_allows_storage_extremes() {
        let m = Matrix::from_rows(&[&[0.5, -0.25][..], &[1.0, 1.0][..]]);
        let q = QuantMatrix::quantize(&m, Precision::Int4).unwrap();
        let rebuilt = QuantMatrix::from_parts(
            q.rows(),
            q.cols(),
            q.codes().to_vec(),
            q.scale(),
            q.precision(),
        )
        .unwrap();
        assert_eq!(rebuilt, q);
        // -8 is outside the quantizer's clamp but inside INT4 storage.
        let q = QuantMatrix::from_parts(1, 2, vec![-8, 7], 0.5, Precision::Int4).unwrap();
        assert_eq!(q.row(0), &[-8, 7]);
    }

    #[test]
    fn from_parts_rejects_bad_input() {
        let ok = |codes: Vec<i8>| QuantMatrix::from_parts(1, 2, codes, 1.0, Precision::Int4);
        assert!(ok(vec![0, 0]).is_ok());
        assert!(ok(vec![0]).is_err()); // wrong element count
        assert!(QuantMatrix::from_parts(0, 2, vec![], 1.0, Precision::Int4).is_err());
        assert!(QuantMatrix::from_parts(1, 2, vec![0, 0], 1.0, Precision::Fp32).is_err());
        assert!(QuantMatrix::from_parts(1, 2, vec![0, 0], 0.0, Precision::Int4).is_err());
        assert!(QuantMatrix::from_parts(1, 2, vec![0, 0], f32::NAN, Precision::Int4).is_err());
        assert!(QuantMatrix::from_parts(1, 2, vec![8, 0], 1.0, Precision::Int4).is_err());
        assert!(QuantMatrix::from_parts(1, 2, vec![2, 0], 1.0, Precision::Int2).is_err());
    }

    #[test]
    fn dot_i8_accumulates_in_i32() {
        // 128 * 127*127 overflows i16 but not i32.
        let a = vec![127i8; 128];
        assert_eq!(dot_i8(&a, &a), 128 * 127 * 127);
    }

    #[test]
    fn precision_display() {
        assert_eq!(Precision::Int4.to_string(), "INT4");
        assert_eq!(Precision::Fp32.to_string(), "FP32");
    }
}
