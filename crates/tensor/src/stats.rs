//! Small statistics helpers shared by training and the evaluation harness.

/// Mean of a slice (`0.0` for empty input).
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance (`0.0` for empty input).
pub fn variance(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Mean squared error between two equally-long slices — the training loss of
/// the Screener (paper Eq. 4).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn mse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "mse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / a.len() as f64
}

/// Cosine similarity between two slices; `0.0` if either has zero norm.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
    let na: f64 = a.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Geometric mean of strictly positive values (`0.0` if any are `<= 0` or
/// the slice is empty). Used to aggregate speedups across workloads the way
/// the paper reports "average speedup".
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(variance(&xs), 1.25);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_similarity_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -1.0]), 0.0);
    }
}
