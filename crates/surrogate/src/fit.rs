//! Per-shape surrogate fitting: a deterministic design-of-experiments
//! sampler runs the cycle-accurate rank-unit on a full factorial
//! (batch × candidate-level) anchor grid, then models every
//! [`UnitReport`] counter with the cheapest form that holds it to the
//! audit bound:
//!
//! - **Smooth work counters** (busy cycles, byte counts, DRAM command
//!   mix) are affine in analytic work features and fitted by
//!   relative-error-weighted ridge regression with nonnegativity on the
//!   work features ([`TARGETS`]).
//! - **Timeline values** (total cycles, the gather window, the
//!   screen-phase stall, idle cycles) are *not* globally affine — the
//!   pipeline overlap is a hinge, the stall is non-monotone in batch —
//!   so they are carried as an anchor table over the grid and answered
//!   by bilinear interpolation ([`TABLE_COLS`]). The batch axis
//!   enumerates every batch up to the envelope, so integral batches hit
//!   a grid row exactly and only the candidate axis interpolates.
//!
//! Everything is deterministic: the anchor plan is a pure function of
//! the fit envelope, the normal equations are solved with partial-pivot
//! Gaussian elimination in a fixed order, and the table is filled in
//! grid order — two fits from the same anchors are byte-identical.

use enmc_arch::unit::{RankJob, RankUnit, UnitParams, UnitReport};
use enmc_dram::stats::MAX_BANK_GROUPS;
use enmc_dram::DramStats;

/// Counter targets fitted per shape by weighted monotone ridge, in
/// serialization order. The DRAM statistics carry the `dram.` prefix.
/// `dram.refresh_interval` is special-cased: all-bank refresh fires on
/// a fixed cycle cadence (tREFI, modulo postponement), so its row
/// carries the pooled cycles-per-refresh interval in slot 0 — estimated
/// only over anchors that actually refreshed — and predicted refreshes
/// are `floor(dram_cycles / interval)`. The floor matters: simulations
/// shorter than one interval truly issue zero refreshes, and a smooth
/// rate model would wrongly charge them refresh energy.
pub const TARGETS: &[&str] = &[
    "screener_busy",
    "executor_busy",
    "sfu_cycles",
    "screen_bytes",
    "exact_bytes",
    "spill_bytes",
    "dram.reads",
    "dram.writes",
    "dram.activations",
    "dram.precharges",
    "dram.refresh_interval",
    "dram.row_hits",
    "dram.row_misses",
    "dram.row_conflicts",
    "dram.busy_cycles",
    "dram.bank_group0",
    "dram.bank_group1",
    "dram.bank_group2",
    "dram.bank_group3",
];

/// Row indices into [`TARGETS`].
const T_SCREENER_BUSY: usize = 0;
const T_EXECUTOR_BUSY: usize = 1;
const T_SFU: usize = 2;
const T_REFRESH_INTERVAL: usize = 10;
const T_BUSY: usize = 14;
const T_BANK0: usize = 15;

/// Timeline values carried as an anchor table instead of a regression
/// row, in column order. Attribution leaves are *differences* of phase
/// boundaries, so a small relative error on a large absolute position
/// amplifies into a large relative error on the window between two
/// boundaries — and the windows themselves are genuinely nonlinear
/// (pipeline overlap is a `max()` of affine forms; screen-phase DRAM
/// contention is not even monotone in batch). The table answers them
/// exactly at anchors and bilinearly in between:
///
/// - `dram_cycles`: the headline total. A 2-D running max over the grid
///   makes the table nondecreasing along both axes, so the interpolated
///   prediction is *monotone in batch and candidate count by
///   construction*.
/// - `gather_window` (`exec_done − screen_done`): the executor's drain
///   span, clamped to the total at evaluation.
/// - `screen_stall` (`screen_done − screener_busy`): DRAM contention
///   during screening.
/// - `idle_cycles`: power-down idle. Its smooth component (roughly one
///   quiet gap per batch item while the screener is compute-bound)
///   interpolates well; the residual is refresh-window-quantized — every
///   REF wakes the rank, so single-cycle shifts of a quiet span across a
///   tREFI boundary move up to a whole window of idle. The audit
///   therefore floors the background-power leaves at one window of
///   energy per shard rather than asking the table to resolve below
///   that quantum.
pub const TABLE_COLS: &[&str] =
    &["dram_cycles", "gather_window", "screen_stall", "idle_cycles"];

/// Number of table columns (see [`TABLE_COLS`]).
pub const N_TABLE: usize = 4;

const K_DRAM: usize = 0;
const K_WINDOW: usize = 1;
const K_STALL: usize = 2;
const K_IDLE: usize = 3;

/// Work features of one rank job (see [`features`]).
pub const N_FEATURES: usize = 6;

/// The analytic feature vector of a rank job. Every non-intercept entry
/// is nondecreasing in both `batch` and the per-item candidate count, so
/// any nonnegative combination of them is monotone in the load axes.
///
/// `batch_reuse` is how many batch items share one streamed weight tile
/// (from [`UnitParams::batch_reuse`]); `ceil(batch / batch_reuse)` is the
/// number of times the screening weights stream from DRAM.
pub fn features(job: &RankJob, batch_reuse: usize) -> [f64; N_FEATURES] {
    let b = job.batch as f64;
    let groups = job.batch.div_ceil(batch_reuse.max(1)) as f64;
    let cand = job.total_candidates() as f64;
    let cat = job.categories as f64;
    let red = job.reduced as f64;
    let hid = job.hidden as f64;
    [
        1.0,
        b,
        groups * cat * red * 1e-6,
        cand * hid * 1e-6,
        cand * 1e-3,
        b * cat * 1e-6,
    ]
}

/// Extracts the [`TARGETS`] values of a report, in order.
pub fn extract_targets(r: &UnitReport) -> Vec<f64> {
    let d = &r.dram;
    vec![
        r.screener_busy as f64,
        r.executor_busy as f64,
        r.sfu_cycles as f64,
        r.screen_bytes as f64,
        r.exact_bytes as f64,
        r.spill_bytes as f64,
        d.reads as f64,
        d.writes as f64,
        d.activations as f64,
        d.precharges as f64,
        d.refreshes as f64,
        d.row_hits as f64,
        d.row_misses as f64,
        d.row_conflicts as f64,
        d.busy_cycles as f64,
        d.bank_group_accesses[0] as f64,
        d.bank_group_accesses[1] as f64,
        d.bank_group_accesses[2] as f64,
        d.bank_group_accesses[3] as f64,
    ]
}

/// Extracts the [`TABLE_COLS`] values of a report, in column order.
pub fn extract_table(r: &UnitReport) -> [f64; N_TABLE] {
    let window = r.exec_done_cycle.saturating_sub(r.screen_done_cycle);
    [
        r.dram_cycles as f64,
        window as f64,
        r.screen_done_cycle.saturating_sub(r.screener_busy) as f64,
        r.dram.idle_cycles as f64,
    ]
}

/// SplitMix64: the repo's stateless seeded-hash idiom (fault maps, query
/// sampling). Used for the audit lottery.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One fitted shape: ridge coefficients for every smooth target, the
/// anchor table for the timeline values, and the envelope the anchors
/// covered. Queries inside the envelope interpolate; queries outside
/// extrapolate linearly from the edge grid segment (the audit keeps
/// that honest).
#[derive(Debug, Clone, PartialEq)]
pub struct ShapeFit {
    /// Per-rank categories of the representative slice the anchors ran.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Reduced dimension `k`.
    pub reduced: usize,
    /// Batch items sharing one streamed weight tile (fixed by `reduced`
    /// and the unit's buffer, recorded so prediction needs no params).
    pub batch_reuse: usize,
    /// Cycle-accurate anchor simulations the fit consumed.
    pub anchors: usize,
    /// Largest anchored batch.
    pub batch_hi: usize,
    /// Largest anchored per-item candidate count.
    pub cand_hi: usize,
    /// Simulated nanoseconds per DRAM cycle (constant for a DDR4 speed
    /// grade; averaged over anchors).
    pub ns_per_cycle: f64,
    /// `TARGETS.len()` coefficient rows of [`N_FEATURES`] each.
    pub coeffs: Vec<Vec<f64>>,
    /// Sorted batch values of the anchor grid rows.
    pub grid_batches: Vec<usize>,
    /// Sorted per-item candidate levels of the anchor grid columns.
    pub grid_cands: Vec<usize>,
    /// `[batch][cand]` anchor values for [`TABLE_COLS`]. Cells no anchor
    /// covered hold zero (the DoE plan is a full factorial, so this only
    /// happens for hand-built anchor sets).
    pub table: Vec<Vec<[f64; N_TABLE]>>,
}

/// The deterministic anchor plan for one shape envelope: the full cross
/// product of every batch up to `min(batch_hi, 8)` (plus the envelope
/// midpoint, ceiling, and first weight-stream group boundary when the
/// envelope goes higher) with seventeen evenly spaced candidate levels
/// plus the zero-candidate column trailing shard slices land on.
/// Screen time has per-group steps at multiples of `batch_reuse` and the
/// gather window has a knee where candidate work exceeds the pipeline
/// overlap, so both axes are sampled densely rather than jittered; the
/// plan needs no randomness and is identical for every seed (the seed
/// governs the audit lottery instead).
pub fn doe_plan(
    _seed: u64,
    batch_hi: usize,
    cand_hi: usize,
    batch_reuse: usize,
) -> Vec<(usize, usize)> {
    let bhi = batch_hi.max(2);
    let chi = cand_hi.max(2);
    let r = batch_reuse.max(1);
    let mut batches: Vec<usize> = (1..=bhi.min(8)).collect();
    batches.extend([bhi.div_ceil(2), bhi]);
    if r < bhi {
        batches.push(r + 1);
    }
    batches.sort_unstable();
    batches.dedup();
    // The zero column is anchored explicitly: candidate sharding hands
    // trailing ranks zero-candidate slices, and the gather phase's fixed
    // cost makes extrapolating from c >= 1 down to 0 unsound.
    let mut cands: Vec<usize> = vec![0];
    cands.extend((0..=16).map(|i| (chi * i).div_ceil(16).max(1)));
    cands.sort_unstable();
    cands.dedup();
    let mut points = Vec::with_capacity(batches.len() * cands.len());
    for &b in &batches {
        for &c in &cands {
            points.push((b, c));
        }
    }
    points
}

/// Fits one shape from explicit anchor observations (pairs of rank job
/// and its cycle-accurate report). Exposed separately from
/// [`ShapeFit::fit`] so tests can fit from hand-built anchors.
pub fn fit_from_anchors(
    params: &UnitParams,
    anchors: &[(RankJob, UnitReport)],
) -> ShapeFit {
    assert!(!anchors.is_empty(), "surrogate fit needs at least one anchor");
    let (job0, _) = &anchors[0];
    let batch_reuse = params.batch_reuse(job0.reduced);
    let rows: Vec<[f64; N_FEATURES]> =
        anchors.iter().map(|(j, _)| features(j, batch_reuse)).collect();

    // Refresh window (tREFI in DRAM cycles). The controller issues
    // `floor((total − 1) / tREFI)` refreshes, so every refreshing anchor
    // brackets the window from above by `(total − 1) / refreshes`; the
    // minimum over anchors — tightest at the longest run — is within
    // `tREFI / max(refreshes)` of the true constant. Anchors shorter
    // than one window truly issue zero refreshes and contribute nothing.
    // Stays 0.0 when no anchor refreshed: predict() then reports zero
    // refreshes, exact for every point inside the anchored envelope.
    let refresh_window = anchors
        .iter()
        .filter(|(_, r)| r.dram.refreshes > 0)
        .map(|(_, r)| r.dram_cycles.saturating_sub(1) as f64 / r.dram.refreshes as f64)
        .fold(f64::INFINITY, f64::min);
    let refresh_window = if refresh_window.is_finite() { refresh_window } else { 0.0 };

    let mut coeffs = Vec::with_capacity(TARGETS.len());
    for t in 0..TARGETS.len() {
        let y: Vec<f64> = anchors.iter().map(|(_, r)| extract_targets(r)[t]).collect();
        coeffs.push(if t == T_REFRESH_INTERVAL {
            let mut row = vec![0.0; N_FEATURES];
            row[0] = refresh_window;
            row
        } else {
            solve_monotone(&rows, &y)
        });
    }

    // Anchor table over the observed grid. The DoE plan is a full
    // factorial, so every cell is covered there; hand-built anchor sets
    // leave uncovered cells at zero.
    let per_item = |j: &RankJob| j.candidates_per_item.first().copied().unwrap_or(0);
    let mut grid_batches: Vec<usize> = anchors.iter().map(|(j, _)| j.batch).collect();
    grid_batches.sort_unstable();
    grid_batches.dedup();
    let mut grid_cands: Vec<usize> = anchors.iter().map(|(j, _)| per_item(j)).collect();
    grid_cands.sort_unstable();
    grid_cands.dedup();
    let mut table = vec![vec![[0.0f64; N_TABLE]; grid_cands.len()]; grid_batches.len()];
    for (j, r) in anchors {
        let bi = grid_batches.binary_search(&j.batch).expect("batch is in grid");
        let ci = grid_cands.binary_search(&per_item(j)).expect("cand level is in grid");
        table[bi][ci] = extract_table(r);
    }
    // Running 2-D max over the total-cycles column: the truth is
    // physically nondecreasing in both load axes, so this only smooths
    // measurement-scale inversions — and it makes the interpolated
    // total provably monotone.
    for bi in 0..grid_batches.len() {
        for ci in 0..grid_cands.len() {
            let mut v = table[bi][ci][K_DRAM];
            if bi > 0 {
                v = v.max(table[bi - 1][ci][K_DRAM]);
            }
            if ci > 0 {
                v = v.max(table[bi][ci - 1][K_DRAM]);
            }
            table[bi][ci][K_DRAM] = v;
        }
    }

    let mut ns_per_cycle = 0.0;
    let mut n = 0usize;
    for (_, r) in anchors {
        if r.dram_cycles > 0 {
            ns_per_cycle += r.ns / r.dram_cycles as f64;
            n += 1;
        }
    }
    ShapeFit {
        categories: job0.categories,
        hidden: job0.hidden,
        reduced: job0.reduced,
        batch_reuse,
        anchors: anchors.len(),
        batch_hi: grid_batches.last().copied().unwrap_or(1),
        cand_hi: grid_cands.last().copied().unwrap_or(1),
        ns_per_cycle: if n > 0 { ns_per_cycle / n as f64 } else { 0.0 },
        coeffs,
        grid_batches,
        grid_cands,
        table,
    }
}

/// Piecewise-linear interpolation over sorted integer knots, linearly
/// extrapolating from the edge segment outside the covered range.
fn interp1(xs: &[usize], ys: &[f64], x: f64) -> f64 {
    match xs.len() {
        0 => 0.0,
        1 => ys[0],
        _ => {
            let mut i = 0;
            while i + 2 < xs.len() && x > xs[i + 1] as f64 {
                i += 1;
            }
            let (x0, x1) = (xs[i] as f64, xs[i + 1] as f64);
            if x1 == x0 {
                return ys[i];
            }
            ys[i] + (ys[i + 1] - ys[i]) * (x - x0) / (x1 - x0)
        }
    }
}

impl ShapeFit {
    /// Runs the deterministic DoE anchor plan on the cycle-accurate
    /// rank-unit and fits the shape. `categories` is the per-rank
    /// category count of the representative slice; `batch_hi` /
    /// `cand_hi` bound the envelope queries are expected in.
    pub fn fit(
        params: &UnitParams,
        categories: usize,
        hidden: usize,
        reduced: usize,
        batch_hi: usize,
        cand_hi: usize,
        seed: u64,
    ) -> ShapeFit {
        let unit = RankUnit::new(*params);
        let plan = doe_plan(seed, batch_hi, cand_hi, params.batch_reuse(reduced));
        let anchors: Vec<(RankJob, UnitReport)> = plan
            .into_iter()
            .map(|(b, c)| {
                let job = RankJob {
                    categories,
                    hidden,
                    reduced,
                    batch: b,
                    candidates_per_item: vec![c; b],
                };
                let report = unit.simulate(&job);
                (job, report)
            })
            .collect();
        fit_from_anchors(params, &anchors)
    }

    /// The fitted refresh window (tREFI estimate) in DRAM cycles: the
    /// tightest `(dram_cycles - 1) / refreshes` over the refreshing
    /// anchors, or `0.0` when no anchor ran long enough to refresh.
    /// Power-down idle is quantized to this window, so audit bounds on
    /// the background-power leaves carry a one-window quantum floor.
    pub fn refresh_window(&self) -> f64 {
        self.coeffs[T_REFRESH_INTERVAL][0]
    }

    /// Bilinear table lookup for column `k` at the job's (batch, mean
    /// per-item candidates) coordinate: candidate-axis interpolation
    /// within each bracketing batch row, then batch-axis interpolation
    /// between them. Batches inside the grid hit a row exactly.
    fn table_eval(&self, k: usize, batch: f64, cand: f64) -> f64 {
        let per_b: Vec<f64> = self
            .table
            .iter()
            .map(|row| {
                let ys: Vec<f64> = row.iter().map(|cell| cell[k]).collect();
                interp1(&self.grid_cands, &ys, cand)
            })
            .collect();
        interp1(&self.grid_batches, &per_b, batch).max(0.0)
    }

    /// Predicts the rank-unit report for `job` in pure arithmetic.
    /// Integer counters round to the nearest count (clamped at zero);
    /// phase boundaries are re-ordered so the attribution partition the
    /// cycle-accurate path guarantees also holds on predictions.
    pub fn predict(&self, job: &RankJob) -> UnitReport {
        let x = features(job, self.batch_reuse);
        let mut v = [0.0f64; 24];
        for (t, row) in self.coeffs.iter().enumerate() {
            let mut y = 0.0;
            for (xi, ci) in x.iter().zip(row) {
                y += xi * ci;
            }
            v[t] = y.max(0.0);
        }
        let u = |i: usize| v[i].round().max(0.0) as u64;
        // Timeline reconstruction from the anchor table (see
        // [`TABLE_COLS`]): the monotone total, the gather window capped
        // by it, and the screen boundary capped so the attribution
        // partition (screen ≤ gather ≤ total) holds.
        let b = job.batch.max(1) as f64;
        let c = job.total_candidates() as f64 / b;
        let dram_cycles = (self.table_eval(K_DRAM, b, c).round() as u64).max(1);
        let window = (self.table_eval(K_WINDOW, b, c).round() as u64).min(dram_cycles);
        let stall = self.table_eval(K_STALL, b, c).round() as u64;
        let base = dram_cycles - window;
        let screener_busy = u(T_SCREENER_BUSY);
        let executor_busy = u(T_EXECUTOR_BUSY);
        let screen_done = (screener_busy + stall).min(base);
        let exec_done = screen_done + window;
        let total_cycles = dram_cycles;
        // Refresh arithmetic mirrors the controller exactly: one REF per
        // whole tREFI window elapsed by the predicted total.
        let window_cycles = self.refresh_window();
        let refreshes = if window_cycles >= 1.0 {
            (dram_cycles.saturating_sub(1) as f64 / window_cycles).floor().max(0.0) as u64
        } else {
            0
        };
        let busy_cycles = u(T_BUSY).min(total_cycles);
        let idle_cycles =
            (self.table_eval(K_IDLE, b, c).round() as u64).min(total_cycles - busy_cycles);
        let mut bank_group_accesses = [0u64; MAX_BANK_GROUPS];
        for (g, slot) in bank_group_accesses.iter_mut().enumerate() {
            *slot = u(T_BANK0 + g);
        }
        UnitReport {
            dram_cycles,
            ns: dram_cycles as f64 * self.ns_per_cycle,
            screener_busy: screener_busy.min(dram_cycles),
            executor_busy: executor_busy.min(dram_cycles),
            sfu_cycles: u(T_SFU).min(dram_cycles),
            dram: DramStats {
                reads: u(6),
                writes: u(7),
                activations: u(8),
                precharges: u(9),
                refreshes,
                row_hits: u(11),
                row_misses: u(12),
                row_conflicts: u(13),
                busy_cycles,
                idle_cycles,
                total_cycles,
                bank_group_accesses,
            },
            screen_bytes: u(3),
            exact_bytes: u(4),
            spill_bytes: u(5),
            screen_done_cycle: screen_done,
            exec_done_cycle: exec_done,
            protocol_violations: 0,
        }
    }
}

/// Least squares with ridge damping and nonnegativity on the work
/// features: solve, clamp negative non-intercept coefficients to zero,
/// and re-solve over the surviving features until the sign constraint
/// holds. Deterministic for deterministic inputs, and nondecreasing in
/// batch and candidate count because every feature is.
fn solve_monotone(rows: &[[f64; N_FEATURES]], y: &[f64]) -> Vec<f64> {
    let mut active = [true; N_FEATURES];
    loop {
        let coeffs = solve_ridge(rows, y, &active);
        let mut clamped = false;
        for (j, c) in coeffs.iter().enumerate() {
            if j > 0 && active[j] && *c < 0.0 {
                active[j] = false;
                clamped = true;
            }
        }
        if !clamped {
            return coeffs;
        }
    }
}

/// Ridge-damped *relative-error-weighted* normal equations over the
/// active feature columns, solved by partial-pivot Gaussian elimination.
/// Inactive columns get a zero coefficient. Each observation is weighted
/// by `1/max(|y|, 512)²` so the solver minimizes relative error — the
/// criterion the audit judges — rather than absolute error, which would
/// let the largest anchors wreck the small ones relatively. The damping
/// (`1e-8` of the mean diagonal) makes the collinear per-shape systems
/// (fixed categories/hidden) solvable without changing well-conditioned
/// fits measurably.
fn solve_ridge(rows: &[[f64; N_FEATURES]], y: &[f64], active: &[bool; N_FEATURES]) -> Vec<f64> {
    let cols: Vec<usize> =
        (0..N_FEATURES).filter(|&j| active[j]).collect();
    let k = cols.len();
    // Column scales keep the system conditioned across wildly different
    // feature magnitudes.
    let mut scale = vec![1.0f64; k];
    for (s, &j) in scale.iter_mut().zip(&cols) {
        let m = rows.iter().map(|r| r[j].abs()).fold(0.0f64, f64::max);
        *s = if m > 0.0 { m } else { 1.0 };
    }
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (r, &yv) in rows.iter().zip(y) {
        let w = 1.0 / yv.abs().max(512.0).powi(2);
        for p in 0..k {
            let xp = r[cols[p]] / scale[p];
            for q in 0..k {
                a[p][q] += w * xp * r[cols[q]] / scale[q];
            }
            b[p] += w * xp * yv;
        }
    }
    let mean_diag: f64 = (0..k).map(|p| a[p][p]).sum::<f64>() / k.max(1) as f64;
    let lambda = 1e-8 * mean_diag.max(1e-12);
    for (p, row) in a.iter_mut().enumerate() {
        row[p] += lambda;
    }
    // Partial-pivot Gaussian elimination (ties keep the lowest row, so
    // the factorization order never depends on anything but the values).
    for p in 0..k {
        let mut pivot = p;
        for r in p + 1..k {
            if a[r][p].abs() > a[pivot][p].abs() {
                pivot = r;
            }
        }
        a.swap(p, pivot);
        b.swap(p, pivot);
        let d = a[p][p];
        if d == 0.0 {
            continue;
        }
        for r in p + 1..k {
            let f = a[r][p] / d;
            if f == 0.0 {
                continue;
            }
            for c in p..k {
                let v = a[p][c];
                a[r][c] -= f * v;
            }
            b[r] -= f * b[p];
        }
    }
    let mut x = vec![0.0f64; k];
    for p in (0..k).rev() {
        let mut s = b[p];
        for c in p + 1..k {
            s -= a[p][c] * x[c];
        }
        x[p] = if a[p][p] != 0.0 { s / a[p][p] } else { 0.0 };
    }
    let mut out = vec![0.0f64; N_FEATURES];
    for (p, &j) in cols.iter().enumerate() {
        out[j] = x[p] / scale[p];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_arch::config::EnmcConfig;

    fn params() -> UnitParams {
        UnitParams::enmc(&EnmcConfig::table3())
    }

    fn rank_job(b: usize, c: usize) -> RankJob {
        RankJob { categories: 520, hidden: 64, reduced: 16, batch: b, candidates_per_item: vec![c; b] }
    }

    #[test]
    fn doe_plan_is_a_deterministic_full_factorial() {
        let a = doe_plan(7, 8, 40, 4);
        let b = doe_plan(7, 8, 40, 4);
        assert_eq!(a, b);
        let c = doe_plan(8, 8, 40, 4);
        assert_eq!(a, c, "the plan is seed-invariant; the seed drives the audit lottery");
        for bb in 1..=8usize {
            for cc in [1usize, 20, 40] {
                assert!(a.contains(&(bb, cc)), "full factorial must cover b{bb} c{cc}");
            }
        }
        assert!(a.len() >= N_FEATURES, "need at least as many anchors as features");
    }

    #[test]
    fn fit_reproduces_anchor_grid_points_exactly_and_interpolates_closely() {
        let p = params();
        let fit = ShapeFit::fit(&p, 520, 64, 16, 8, 40, 7);
        let unit = RankUnit::new(p);
        // On-grid: the table answers the headline total exactly (modulo
        // the monotone running max, which only lifts inversions).
        for (b, c) in [(1usize, 10usize), (3, 20), (8, 40)] {
            let job = rank_job(b, c);
            let truth = unit.simulate(&job);
            let pred = fit.predict(&job);
            assert!(
                pred.dram_cycles >= truth.dram_cycles,
                "b{b} c{c}: monotone table may only lift"
            );
            let err = (pred.dram_cycles as f64 - truth.dram_cycles as f64)
                / truth.dram_cycles as f64;
            assert!(err < 0.01, "b{b} c{c}: {} vs {}", pred.dram_cycles, truth.dram_cycles);
        }
        // Off-grid candidate counts interpolate within the audit bound.
        for (b, c) in [(2usize, 13usize), (5, 27), (7, 33)] {
            let job = rank_job(b, c);
            let truth = unit.simulate(&job);
            let pred = fit.predict(&job);
            let err = (pred.dram_cycles as f64 - truth.dram_cycles as f64).abs()
                / truth.dram_cycles as f64;
            assert!(err < 0.05, "b{b} c{c}: {} vs {} ({err:.4})", pred.dram_cycles, truth.dram_cycles);
        }
    }

    #[test]
    fn fits_are_byte_identical_for_the_same_seed() {
        let p = params();
        let a = ShapeFit::fit(&p, 520, 64, 16, 8, 40, 7);
        let b = ShapeFit::fit(&p, 520, 64, 16, 8, 40, 7);
        assert_eq!(a, b);
        for (ra, rb) in a.coeffs.iter().zip(&b.coeffs) {
            for (ca, cb) in ra.iter().zip(rb) {
                assert_eq!(ca.to_bits(), cb.to_bits(), "coefficients must match bitwise");
            }
        }
        for (ra, rb) in a.table.iter().zip(&b.table) {
            for (ca, cb) in ra.iter().zip(rb) {
                for (va, vb) in ca.iter().zip(cb) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "table must match bitwise");
                }
            }
        }
    }

    #[test]
    fn predictions_are_monotone_in_batch_and_candidates() {
        let p = params();
        let fit = ShapeFit::fit(&p, 520, 64, 16, 8, 40, 7);
        let mut prev = 0u64;
        for b in 1..=8 {
            let r = fit.predict(&rank_job(b, 20));
            assert!(r.dram_cycles >= prev, "batch {b} must not speed the job up");
            prev = r.dram_cycles;
        }
        let mut prev = 0u64;
        for c in [1usize, 5, 10, 20, 40] {
            let r = fit.predict(&rank_job(2, c));
            assert!(r.dram_cycles >= prev, "candidates {c} must not speed the job up");
            prev = r.dram_cycles;
        }
    }

    #[test]
    fn predicted_reports_keep_the_attribution_partition_valid() {
        let p = params();
        let fit = ShapeFit::fit(&p, 520, 64, 16, 8, 40, 7);
        for (b, c) in [(1usize, 3usize), (4, 17), (8, 40), (8, 64), (12, 50)] {
            let r = fit.predict(&rank_job(b, c));
            assert!(r.screen_done_cycle <= r.dram_cycles);
            assert!(r.exec_done_cycle <= r.dram_cycles);
            assert!(r.screen_done_cycle <= r.exec_done_cycle);
            assert!(r.dram.busy_cycles + r.dram.idle_cycles <= r.dram.total_cycles);
            assert_eq!(r.dram.total_cycles, r.dram_cycles);
        }
    }
}
