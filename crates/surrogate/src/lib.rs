//! # Hybrid-fidelity surrogate cost model
//!
//! Every sweep in the repo (resilience grids, serving calibration, the
//! figure benches) bottlenecks on the cycle-accurate DDR4 simulator. This
//! crate trades fidelity for throughput *without trading away trust*: a
//! seeded design-of-experiments pass runs the cycle-accurate rank-unit on
//! a handful of anchor points per shape, fits per-counter affine models
//! ([`fit`]), and then answers arbitrary sweep points in pure arithmetic —
//! orders of magnitude faster than simulation.
//!
//! The heart of the design is the **audit path**: at a configurable rate,
//! seeded-randomly chosen sweep points are re-run cycle-accurately and the
//! relative error on *every* [`enmc_perf::cost`] attribution leaf must
//! stay within the declared bound ([`DECLARED_BOUND`]), or the run fails
//! with a structured [`SurrogateViolation`] (mirroring the DDR4 checker's
//! `ProtocolViolation`). Downstream sweeps are trustworthy because the
//! bound is enforced, not assumed.
//!
//! Predictions reconstruct full [`UnitReport`]s, so *all* downstream
//! arithmetic — [`UnitReport::merge_parallel`], energy joins, cost
//! attribution, serving tables — is the exact code the simulator output
//! feeds. The surrogate is worker-count invariant by construction (no
//! threads, no host timing), and auditing never changes the returned
//! prediction, so output is byte-identical at any audit rate.

pub mod fit;

use enmc_arch::system::{ClassificationJob, Scheme, SchemeResult, ShardedRun, CHANNELS};
use enmc_arch::unit::UnitReport;
use enmc_arch::{LogicEnergyModel, SystemEnergy, SystemModel};
use enmc_dram::DramStats;
use enmc_par::SimConfig;
use fit::{splitmix64, ShapeFit, N_FEATURES, N_TABLE, TABLE_COLS, TARGETS};
use std::collections::BTreeMap;
use std::fmt;

/// Which cost backend a sweep runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostBackend {
    /// Every point simulates cycle-accurately (the default).
    CycleAccurate,
    /// Points are predicted by the fitted surrogate; a seeded fraction
    /// `audit_rate` of them re-runs cycle-accurately and must match every
    /// attribution leaf within [`DECLARED_BOUND`].
    Surrogate {
        /// Fraction of predicted points audited cycle-accurately, in
        /// `[0, 1]`.
        audit_rate: f64,
    },
}

impl CostBackend {
    /// The CLI / report name of the backend.
    pub fn name(&self) -> &'static str {
        match self {
            CostBackend::CycleAccurate => "cycle-accurate",
            CostBackend::Surrogate { .. } => "surrogate",
        }
    }
}

/// Declared per-leaf error bound of the surrogate: a prediction is in
/// bounds when `|pred - actual| <= max(rel * |actual|, floor)`, where
/// the floor is the larger of an absolute noise floor (cycles or
/// nanojoules by leaf kind) and a *materiality* floor of `total_frac`
/// of the audited point's end-to-end total (total cycles for cycle
/// leaves, whole-tree energy for energy leaves).
///
/// The noise floors keep tiny leaves (a few cycles of mem-stall, a
/// handful of nanojoules) from failing on rounding noise. The
/// materiality floor bounds how much any *one* leaf's error can move
/// the totals downstream sweeps consume: a leaf may be a few percent of
/// the whole and intrinsically jagged (DRAM power-down eligibility
/// flips on single-cycle queue gaps), and holding it to 5 % of itself
/// would demand more precision than it contributes to any decision.
/// Every leaf error is therefore under `max(rel, total_frac)` of the
/// end-to-end number, and smooth leaves stay under `rel` of themselves.
///
/// One physically motivated exception: the two DRAM background-power
/// leaves additionally carry a floor of one refresh window of energy per
/// audited shard, because the simulator quantizes power-down idle to the
/// tREFI window — no continuous model can resolve below that quantum
/// (see `CostModel::check`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// Relative error allowed on every attribution leaf.
    pub rel: f64,
    /// Absolute floor for cycle leaves (simulated DRAM cycles).
    pub abs_cycles: f64,
    /// Absolute floor for energy leaves (nanojoules).
    pub abs_nj: f64,
    /// Materiality floor: fraction of the end-to-end total (cycles or
    /// whole-tree energy) any single leaf's error may reach.
    pub total_frac: f64,
}

/// The bound the audit enforces (see `DESIGN.md` for how it was chosen:
/// the fitted counters are near-affine in batch and candidate load, so
/// 5 % absorbs the residual plus integer rounding; 2 % of the end-to-end
/// total caps what a jagged minor leaf can hide).
pub const DECLARED_BOUND: ErrorBound =
    ErrorBound { rel: 0.05, abs_cycles: 512.0, abs_nj: 2_000.0, total_frac: 0.02 };

/// A structured audit failure: one attribution leaf of one audited sweep
/// point fell outside the declared bound.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateViolation {
    /// What the audited point was doing (e.g. `fault-sweep energy join`).
    pub context: String,
    /// The attribution leaf (or scalar) that missed, e.g.
    /// `cycles/gather/mem_stall`.
    pub leaf: String,
    /// The surrogate's prediction for the leaf.
    pub predicted: f64,
    /// The cycle-accurate value.
    pub actual: f64,
    /// Observed relative error (`|pred - actual| / max(|actual|, floor)`).
    pub rel_err: f64,
    /// The relative bound the leaf had to meet.
    pub bound: f64,
}

impl fmt::Display for SurrogateViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "surrogate violation in {}: leaf {} predicted {:.3} vs cycle-accurate {:.3} \
             (rel err {:.4} > bound {:.4})",
            self.context, self.leaf, self.predicted, self.actual, self.rel_err, self.bound
        )
    }
}

impl std::error::Error for SurrogateViolation {}

/// Running audit statistics of one [`CostModel`], reported in the v7
/// `RunReport` fields.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AuditStats {
    /// Cycle-accurate anchor simulations run by fits.
    pub fit_anchors: u64,
    /// Points answered by the surrogate (0 on the cycle-accurate backend).
    pub predicted: u64,
    /// Predicted points that were re-run cycle-accurately.
    pub audited: u64,
    /// Worst observed relative leaf error over all audited points.
    pub max_rel_err: f64,
}

/// A cost backend with its fitted state: either a thin pass-through to
/// the cycle-accurate simulator, or the fitted surrogate plus its audit
/// machinery. One `CostModel` is threaded through a whole sweep so fits
/// amortize and the audit lottery stays seeded and deterministic.
#[derive(Debug, Clone)]
pub struct CostModel {
    backend: CostBackend,
    seed: u64,
    fits: BTreeMap<(usize, usize, usize), ShapeFit>,
    stats: AuditStats,
    /// Points the audit lottery has drawn for, across the model's life.
    lottery: u64,
}

impl CostModel {
    /// A cost model on `backend`, auditing with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if a surrogate backend's audit rate is not a fraction.
    pub fn new(backend: CostBackend, seed: u64) -> Self {
        if let CostBackend::Surrogate { audit_rate } = backend {
            assert!(
                audit_rate.is_finite() && (0.0..=1.0).contains(&audit_rate),
                "audit rate must be a fraction in [0, 1], got {audit_rate}"
            );
        }
        CostModel { backend, seed, fits: BTreeMap::new(), stats: AuditStats::default(), lottery: 0 }
    }

    /// The backend this model answers with.
    pub fn backend(&self) -> CostBackend {
        self.backend
    }

    /// Audit statistics so far.
    pub fn stats(&self) -> AuditStats {
        self.stats
    }

    /// Mirrors [`SystemModel::run`] for the ENMC scheme: the
    /// representative-rank result, either simulated or predicted.
    ///
    /// # Errors
    ///
    /// Returns the [`SurrogateViolation`] when an audited prediction
    /// misses the declared bound.
    pub fn run_enmc(
        &mut self,
        sys: &SystemModel,
        job: &ClassificationJob,
        context: &str,
    ) -> Result<SchemeResult, SurrogateViolation> {
        let CostBackend::Surrogate { audit_rate } = self.backend else {
            return Ok(sys.run(job, Scheme::Enmc));
        };
        let ranks = sys.total_ranks;
        let rank_job = job.rank_slice(ranks);
        let (report, window) = {
            let fit = self.fit_for(sys, job);
            (fit.predict(&rank_job), fit.refresh_window())
        };
        self.stats.predicted += 1;
        if self.draw(audit_rate) {
            let actual = sys.run(job, Scheme::Enmc);
            let actual_report = actual.rank_report.as_ref().expect("ENMC runs are simulated");
            self.stats.audited += 1;
            self.check(context, &report, &[], actual_report, &[], sys, window)?;
        }
        let energy = SystemEnergy::from_rank(
            &report,
            ranks,
            sys.energy_model(),
            &LogicEnergyModel::enmc_table5(),
        );
        Ok(SchemeResult { scheme: Scheme::Enmc, ns: report.ns, energy: Some(energy), rank_report: Some(report) })
    }

    /// Mirrors [`SystemModel::run_sharded`] for the ENMC scheme: every
    /// rank's exact slice predicted and merged with the simulator's own
    /// merge, or delegated to the real sharded run. Predicted runs carry
    /// no host wall-clock (the fields are zero) — they cost microseconds
    /// and the numbers would be meaningless.
    ///
    /// # Errors
    ///
    /// Returns the [`SurrogateViolation`] when an audited prediction
    /// misses the declared bound.
    pub fn run_sharded_enmc(
        &mut self,
        sys: &SystemModel,
        job: &ClassificationJob,
        cfg: &SimConfig,
        context: &str,
    ) -> Result<ShardedRun, SurrogateViolation> {
        let CostBackend::Surrogate { audit_rate } = self.backend else {
            return Ok(sys.run_sharded(job, Scheme::Enmc, cfg));
        };
        let fit = self.fit_for(sys, job).clone();
        let jobs = job.rank_jobs(sys.total_ranks);
        let shards = jobs.len();
        let reports: Vec<UnitReport> = jobs.iter().map(|j| fit.predict(j)).collect();
        let merged = UnitReport::merge_parallel(&reports);
        let logic = LogicEnergyModel::enmc_table5();
        let mut energy = SystemEnergy::default();
        for r in &reports {
            let e = SystemEnergy::from_rank(r, 1, sys.energy_model(), &logic);
            energy.dram_static_nj += e.dram_static_nj;
            energy.dram_access_nj += e.dram_access_nj;
            energy.logic_nj += e.logic_nj;
        }
        let shard_dram: Vec<DramStats> = reports.iter().map(|r| r.dram).collect();
        self.stats.predicted += 1;
        if self.draw(audit_rate) {
            let actual = sys.run_sharded(job, Scheme::Enmc, cfg);
            let actual_report =
                actual.result.rank_report.as_ref().expect("ENMC runs are simulated");
            self.stats.audited += 1;
            self.check(
                context,
                &merged,
                &shard_dram,
                actual_report,
                &actual.shard_dram,
                sys,
                fit.refresh_window(),
            )?;
        }
        Ok(ShardedRun {
            result: SchemeResult {
                scheme: Scheme::Enmc,
                ns: merged.ns,
                energy: Some(energy),
                rank_report: Some(merged),
            },
            workers: cfg.worker_count(),
            shards,
            wall_ns: 0.0,
            shard_wall_ns: 0.0,
            shard_dram,
        })
    }

    /// The fitted shape for `job`, fitting on demand (and refitting when
    /// a query exceeds the anchored envelope so predictions interpolate
    /// rather than extrapolate far).
    fn fit_for(&mut self, sys: &SystemModel, job: &ClassificationJob) -> &ShapeFit {
        let ranks = sys.total_ranks;
        let rank_job = job.rank_slice(ranks);
        let key = (rank_job.categories, rank_job.hidden, rank_job.reduced);
        let cand = rank_job.candidates_per_item.first().copied().unwrap_or(1).max(1);
        let needs_fit = match self.fits.get(&key) {
            None => true,
            Some(f) => job.batch > f.batch_hi || cand > f.cand_hi,
        };
        if needs_fit {
            let batch_hi = job.batch.max(8);
            let cand_hi = cand;
            let fit = ShapeFit::fit(
                &sys.enmc_unit_params(),
                rank_job.categories,
                rank_job.hidden,
                rank_job.reduced,
                batch_hi,
                cand_hi,
                self.seed,
            );
            self.stats.fit_anchors += fit.anchors as u64;
            self.fits.insert(key, fit);
        }
        self.fits.get(&key).expect("fit inserted above")
    }

    /// Seeded audit lottery: deterministic in (seed, draw index), so the
    /// audited point set never depends on worker count or host state.
    fn draw(&mut self, audit_rate: f64) -> bool {
        let i = self.lottery;
        self.lottery += 1;
        if audit_rate <= 0.0 {
            return false;
        }
        let u = splitmix64(self.seed ^ 0xa0d1_7000u64.wrapping_add(i)) as f64
            / u64::MAX as f64;
        u < audit_rate
    }

    /// Compares predicted vs cycle-accurate attribution leaf by leaf
    /// (plus the latency scalars) against [`DECLARED_BOUND`]. `window` is
    /// the fit's refresh-window estimate in DRAM cycles: power-down idle
    /// is quantized to it (eligibility flips when the quiet span crosses
    /// a tREFI boundary), so the two background-power leaves carry an
    /// extra floor of one window's worth of energy per audited shard —
    /// the resolution limit of *any* continuous model of that leaf.
    #[allow(clippy::too_many_arguments)]
    fn check(
        &mut self,
        context: &str,
        predicted: &UnitReport,
        predicted_shards: &[DramStats],
        actual: &UnitReport,
        actual_shards: &[DramStats],
        sys: &SystemModel,
        window: f64,
    ) -> Result<(), SurrogateViolation> {
        let logic = LogicEnergyModel::enmc_table5();
        let pred_attr =
            enmc_perf::attribute(predicted, predicted_shards, CHANNELS, sys.energy_model(), &logic);
        let act_attr =
            enmc_perf::attribute(actual, actual_shards, CHANNELS, sys.energy_model(), &logic);
        let pred_rows = pred_attr.rows();
        let act_rows = act_attr.rows();
        let b = DECLARED_BOUND;
        // Materiality floors: a leaf also passes while its error stays
        // under `total_frac` of the audited point's end-to-end total —
        // total cycles for cycle leaves, whole-tree energy for energy
        // leaves (see [`ErrorBound`]).
        let cycle_floor =
            b.abs_cycles.max(b.total_frac * actual.dram_cycles as f64);
        let total_nj: f64 = act_rows
            .iter()
            .filter(|r| !r.path.starts_with("cycles/"))
            .map(|r| r.nj)
            .sum();
        let nj_floor = b.abs_nj.max(b.total_frac * total_nj);
        // One-window quantum floors for the background-power leaves: the
        // simulator's power-down idle is `(total - 1) mod tREFI` where the
        // quiet span reaches the end of the run and zero elsewhere, so a
        // single-cycle shift of the predicted total across a window
        // boundary legitimately moves a whole window of energy between
        // the active and idle leaves, per shard.
        let em = sys.energy_model();
        let shards_n = actual_shards.len().max(1) as f64;
        let window_nj_per_w = window * em.tck_ps * 1e-3 * em.ranks as f64 * shards_n;
        let bg_active_floor = nj_floor.max(window_nj_per_w * em.background_w);
        let bg_idle_floor = nj_floor.max(window_nj_per_w * em.powerdown_w);
        let mut judge = |leaf: &str, p: f64, a: f64, floor: f64| -> Result<(), SurrogateViolation> {
            let err = (p - a).abs();
            // Error normalized against the allowance and rescaled so a
            // leaf *at* its bound reads exactly `b.rel` — directly
            // comparable to the declared bound even where the absolute
            // floor governs.
            let allowance = (b.rel * a.abs()).max(floor);
            let rel = err / allowance * b.rel;
            if rel > self.stats.max_rel_err {
                self.stats.max_rel_err = rel;
            }
            if err <= allowance {
                Ok(())
            } else {
                Err(SurrogateViolation {
                    context: context.to_string(),
                    leaf: leaf.to_string(),
                    predicted: p,
                    actual: a,
                    rel_err: rel,
                    bound: b.rel,
                })
            }
        };
        judge("ns", predicted.ns, actual.ns, cycle_floor)?;
        judge("dram_cycles", predicted.dram_cycles as f64, actual.dram_cycles as f64, cycle_floor)?;
        for (p, a) in pred_rows.iter().zip(&act_rows) {
            debug_assert_eq!(p.path, a.path, "attribution trees must have the same leaves");
            if p.path.starts_with("cycles/") {
                judge(&p.path, p.cycles as f64, a.cycles as f64, cycle_floor)?;
            } else {
                let floor = if p.path.ends_with("background_active") {
                    bg_active_floor
                } else if p.path.ends_with("background_idle") {
                    bg_idle_floor
                } else {
                    nj_floor
                };
                judge(&p.path, p.nj, a.nj, floor)?;
            }
        }
        Ok(())
    }

    /// Serializes the fitted coefficients (one object per fitted shape,
    /// shapes in key order, targets in [`TARGETS`] order) so a sweep can
    /// reuse a fit — and so CI can perturb one coefficient and prove the
    /// audit catches it.
    pub fn coeffs_to_json(&self) -> String {
        let mut out = String::from("{\"surrogate_coeffs\":1,");
        out.push_str(&format!("\"seed\":{},\"fits\":[", self.seed));
        for (i, fit) in self.fits.values().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"categories\":{},\"hidden\":{},\"reduced\":{},\"batch_reuse\":{},\
                 \"anchors\":{},\"batch_hi\":{},\"cand_hi\":{},\"ns_per_cycle\":{},",
                fit.categories,
                fit.hidden,
                fit.reduced,
                fit.batch_reuse,
                fit.anchors,
                fit.batch_hi,
                fit.cand_hi,
                fit.ns_per_cycle
            ));
            out.push_str("\"grid_batches\":[");
            for (j, b) in fit.grid_batches.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{b}"));
            }
            out.push_str("],\"grid_cands\":[");
            for (j, c) in fit.grid_cands.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{c}"));
            }
            out.push_str("],\"table\":[");
            for (bi, row) in fit.table.iter().enumerate() {
                if bi > 0 {
                    out.push(',');
                }
                out.push('[');
                for (ci, cell) in row.iter().enumerate() {
                    if ci > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    for (k, v) in cell.iter().enumerate() {
                        if k > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{v}"));
                    }
                    out.push(']');
                }
                out.push(']');
            }
            out.push_str("],\"targets\":{");
            for (t, name) in TARGETS.iter().enumerate() {
                if t > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":["));
                for (j, c) in fit.coeffs[t].iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{c}"));
                }
                out.push(']');
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Loads coefficients serialized by [`CostModel::coeffs_to_json`]
    /// into this model (replacing any fitted shapes). Loaded fits count
    /// no anchors — the simulations happened in the producing run.
    ///
    /// # Errors
    ///
    /// Returns a description when the text is not a coefficient file.
    pub fn load_coeffs(&mut self, json: &str) -> Result<(), String> {
        if !json.trim_start().starts_with("{\"surrogate_coeffs\":1,") {
            return Err("not a surrogate coefficient file (missing surrogate_coeffs:1)".into());
        }
        let mut fits = BTreeMap::new();
        for obj in split_objects(json) {
            let categories = field_usize(&obj, "categories")?;
            let hidden = field_usize(&obj, "hidden")?;
            let reduced = field_usize(&obj, "reduced")?;
            let grid_batches = field_usize_list(&obj, "grid_batches")?;
            let grid_cands = field_usize_list(&obj, "grid_cands")?;
            let table = field_table(&obj, grid_batches.len(), grid_cands.len())?;
            let fit = ShapeFit {
                categories,
                hidden,
                reduced,
                batch_reuse: field_usize(&obj, "batch_reuse")?,
                anchors: field_usize(&obj, "anchors")?,
                batch_hi: field_usize(&obj, "batch_hi")?,
                cand_hi: field_usize(&obj, "cand_hi")?,
                ns_per_cycle: field_f64(&obj, "ns_per_cycle")?,
                coeffs: TARGETS
                    .iter()
                    .map(|name| coeff_row(&obj, name))
                    .collect::<Result<Vec<_>, _>>()?,
                grid_batches,
                grid_cands,
                table,
            };
            fits.insert((categories, hidden, reduced), fit);
        }
        if fits.is_empty() {
            return Err("surrogate coefficient file contains no fitted shapes".into());
        }
        self.fits = fits;
        Ok(())
    }

    /// Number of fitted shapes currently loaded.
    pub fn fitted_shapes(&self) -> usize {
        self.fits.len()
    }

    /// Mutable access to a fitted shape's model, for tests that plant a
    /// perturbed value and assert the audit trips. `target` names either
    /// a regression row ([`fit::TARGETS`]) or an anchor-table column
    /// ([`fit::TABLE_COLS`]); every coefficient of the row — or every
    /// cell of the column — is scaled by `factor`.
    pub fn perturb_coeff(&mut self, target: &str, factor: f64) -> usize {
        let mut touched = 0;
        if let Some(t) = TARGETS.iter().position(|n| *n == target) {
            for fit in self.fits.values_mut() {
                for c in &mut fit.coeffs[t] {
                    *c *= factor;
                }
                touched += 1;
            }
        } else if let Some(k) = TABLE_COLS.iter().position(|n| *n == target) {
            for fit in self.fits.values_mut() {
                for row in &mut fit.table {
                    for cell in row {
                        cell[k] *= factor;
                    }
                }
                touched += 1;
            }
        } else {
            panic!("unknown surrogate target {target}");
        }
        touched
    }
}

/// The `"fits":[...]` objects of a coefficient file, one string each
/// (objects never nest beyond the `targets` map, so brace counting is
/// enough for the format we wrote).
fn split_objects(json: &str) -> Vec<String> {
    let Some(start) = json.find("\"fits\":[") else { return Vec::new() };
    let body = &json[start + "\"fits\":[".len()..];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut obj = String::new();
    for ch in body.chars() {
        match ch {
            '{' => {
                depth += 1;
                obj.push(ch);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                obj.push(ch);
                if depth == 0 {
                    out.push(std::mem::take(&mut obj));
                }
            }
            ']' if depth == 0 => break,
            _ => {
                if depth > 0 {
                    obj.push(ch);
                }
            }
        }
    }
    out
}

fn field_raw<'a>(obj: &'a str, name: &str) -> Result<&'a str, String> {
    let key = format!("\"{name}\":");
    let at = obj.find(&key).ok_or_else(|| format!("coefficient file missing field {name}"))?;
    let rest = &obj[at + key.len()..];
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field {name}"))?;
    Ok(rest[..end].trim())
}

fn field_usize(obj: &str, name: &str) -> Result<usize, String> {
    field_raw(obj, name)?
        .parse()
        .map_err(|e| format!("field {name} is not an integer: {e}"))
}

fn field_f64(obj: &str, name: &str) -> Result<f64, String> {
    field_raw(obj, name)?
        .parse()
        .map_err(|e| format!("field {name} is not a number: {e}"))
}

/// A flat integer list field like `"grid_batches":[1,2,3]`.
fn field_usize_list(obj: &str, name: &str) -> Result<Vec<usize>, String> {
    let key = format!("\"{name}\":[");
    let at = obj.find(&key).ok_or_else(|| format!("coefficient file missing field {name}"))?;
    let rest = &obj[at + key.len()..];
    let end = rest.find(']').ok_or_else(|| format!("unterminated field {name}"))?;
    rest[..end]
        .split(',')
        .map(|v| v.trim().parse().map_err(|e| format!("bad entry in {name}: {e}")))
        .collect()
}

/// The nested `"table":[[[...],...],...]` anchor table: `nb` batch rows
/// of `nc` cells of [`N_TABLE`] values each.
fn field_table(obj: &str, nb: usize, nc: usize) -> Result<Vec<Vec<[f64; N_TABLE]>>, String> {
    let key = "\"table\":[";
    let at = obj.find(key).ok_or("coefficient file missing field table")?;
    let body = &obj[at + key.len()..];
    // Collect the innermost [..] number groups in order; the fixed
    // grid dimensions say where each row and cell boundary falls.
    let mut cells: Vec<[f64; N_TABLE]> = Vec::new();
    let mut depth = 1usize;
    let mut num = String::new();
    let mut cell: Vec<f64> = Vec::new();
    for ch in body.chars() {
        match ch {
            '[' => {
                depth += 1;
                if depth == 3 {
                    cell.clear();
                }
            }
            ']' | ',' => {
                if !num.is_empty() {
                    cell.push(
                        num.trim().parse().map_err(|e| format!("bad table value: {e}"))?,
                    );
                    num.clear();
                }
                if ch == ']' {
                    if depth == 3 {
                        if cell.len() != N_TABLE {
                            return Err(format!(
                                "table cell has {} values, expected {N_TABLE}",
                                cell.len()
                            ));
                        }
                        let mut arr = [0.0f64; N_TABLE];
                        arr.copy_from_slice(&cell);
                        cells.push(arr);
                    }
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            _ => {
                if depth == 3 {
                    num.push(ch);
                }
            }
        }
    }
    if cells.len() != nb * nc {
        return Err(format!("table has {} cells, expected {nb}×{nc}", cells.len()));
    }
    Ok(cells.chunks(nc.max(1)).map(|chunk| chunk.to_vec()).collect())
}

fn coeff_row(obj: &str, name: &str) -> Result<Vec<f64>, String> {
    let key = format!("\"{name}\":[");
    let at = obj.find(&key).ok_or_else(|| format!("coefficient file missing target {name}"))?;
    let rest = &obj[at + key.len()..];
    let end = rest.find(']').ok_or_else(|| format!("unterminated coefficients for {name}"))?;
    let row: Vec<f64> = rest[..end]
        .split(',')
        .map(|v| v.trim().parse().map_err(|e| format!("bad coefficient for {name}: {e}")))
        .collect::<Result<Vec<_>, String>>()?;
    if row.len() != N_FEATURES {
        return Err(format!("target {name} has {} coefficients, expected {N_FEATURES}", row.len()));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 33_278, hidden: 1_500, reduced: 32, batch: 2, candidates: 33 }
    }

    #[test]
    fn cycle_accurate_backend_is_a_pass_through() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
        let got = cost.run_enmc(&sys, &job, "test").unwrap();
        let want = sys.run(&job, Scheme::Enmc);
        assert_eq!(got, want);
        assert_eq!(cost.stats().predicted, 0);
        assert_eq!(cost.stats().fit_anchors, 0);
    }

    #[test]
    fn surrogate_predictions_pass_a_forced_audit() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, 7);
        let got = cost.run_enmc(&sys, &job, "unit test").expect("audit within bound");
        assert!(got.ns > 0.0);
        let s = cost.stats();
        assert_eq!(s.predicted, 1);
        assert_eq!(s.audited, 1);
        assert!(s.fit_anchors > 0);
        assert!(s.max_rel_err <= DECLARED_BOUND.rel, "observed {}", s.max_rel_err);
    }

    #[test]
    fn audit_rate_zero_never_audits_and_output_matches_audited_output() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut silent = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        let mut audited = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, 7);
        let a = silent.run_enmc(&sys, &job, "t").unwrap();
        let b = audited.run_enmc(&sys, &job, "t").unwrap();
        assert_eq!(a, b, "auditing must never change the prediction");
        assert_eq!(silent.stats().audited, 0);
    }

    #[test]
    fn perturbed_coefficients_trip_the_audit() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 1.0 }, 7);
        cost.run_enmc(&sys, &job, "warm up the fit").unwrap();
        assert!(cost.perturb_coeff("dram_cycles", 2.0) > 0);
        let err = cost.run_enmc(&sys, &job, "perturbed").unwrap_err();
        assert!(err.rel_err > DECLARED_BOUND.rel);
        let msg = err.to_string();
        assert!(msg.contains("surrogate violation"), "{msg}");
    }

    #[test]
    fn coefficients_round_trip_through_json() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        cost.run_enmc(&sys, &job, "t").unwrap();
        let json = cost.coeffs_to_json();
        let mut loaded = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        loaded.load_coeffs(&json).unwrap();
        assert_eq!(loaded.fitted_shapes(), 1);
        let a = cost.run_enmc(&sys, &job, "t").unwrap();
        let b = loaded.run_enmc(&sys, &job, "t").unwrap();
        assert_eq!(a, b, "loaded coefficients must predict identically");
        assert_eq!(json, loaded.coeffs_to_json(), "serialization must round-trip bytewise");
    }

    #[test]
    fn load_rejects_garbage() {
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        assert!(cost.load_coeffs("{}").is_err());
        assert!(cost.load_coeffs("{\"surrogate_coeffs\":1,\"seed\":7,\"fits\":[]}").is_err());
    }

    #[test]
    fn sharded_prediction_matches_run_level_straggler_semantics() {
        let sys = SystemModel::table3();
        let job = small_job();
        let mut cost = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        let run = cost.run_sharded_enmc(&sys, &job, &SimConfig::sequential(), "t").unwrap();
        assert_eq!(run.shards, job.rank_jobs(sys.total_ranks).len());
        assert_eq!(run.shard_dram.len(), run.shards);
        let merged = run.result.rank_report.expect("predicted report");
        assert!(merged.dram_cycles > 0);
        assert_eq!(run.wall_ns, 0.0, "predicted runs carry no host timing");
        // Same worker-count invariance contract as the simulator.
        let mut cost2 = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, 7);
        let run4 = cost2.run_sharded_enmc(&sys, &job, &SimConfig::with_threads(4), "t").unwrap();
        assert_eq!(run.result, run4.result, "prediction must not depend on workers");
    }

    #[test]
    #[should_panic(expected = "audit rate")]
    fn invalid_audit_rate_rejected() {
        CostModel::new(CostBackend::Surrogate { audit_rate: 1.5 }, 7);
    }
}
