//! Instruction sequences and their summary statistics.

use crate::asm;
use crate::encode::Frame;
use crate::inst::Instruction;
use crate::IsaError;

/// An ordered ENMC instruction sequence, as produced by the compiler or the
/// assembler.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    instructions: Vec<Instruction>,
}

/// Instruction-mix summary of a program.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Total instructions.
    pub total: usize,
    /// Compute-class instructions.
    pub compute: usize,
    /// Data-transfer-class instructions.
    pub transfer: usize,
    /// Control/initialization instructions.
    pub control: usize,
    /// Instructions that carry a DQ payload.
    pub with_data: usize,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an instruction list.
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// Parses assembly text.
    ///
    /// # Errors
    ///
    /// Propagates [`IsaError::Parse`] with line information.
    pub fn parse(text: &str) -> Result<Self, IsaError> {
        Ok(Program { instructions: asm::assemble(text)? })
    }

    /// Appends one instruction.
    pub fn push(&mut self, inst: Instruction) {
        self.instructions.push(inst);
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Disassembles the whole program to text.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for inst in &self.instructions {
            out.push_str(&asm::disassemble(inst));
            out.push('\n');
        }
        out
    }

    /// Computes the instruction-mix summary.
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats { total: self.instructions.len(), ..Default::default() };
        for i in &self.instructions {
            if i.is_compute() {
                s.compute += 1;
            } else if i.is_transfer() {
                s.transfer += 1;
            } else {
                s.control += 1;
            }
            if i.has_data() {
                s.with_data += 1;
            }
        }
        s
    }

    /// Total bytes on the command/data wires: 2 per command word (13 bits
    /// rounded up) + 8 per DQ payload. Used to budget instruction
    /// bandwidth against regular memory traffic.
    pub fn wire_bytes(&self) -> u64 {
        self.instructions
            .iter()
            .map(|i| 2 + if i.has_data() { 8 } else { 0 })
            .sum()
    }

    /// Serializes to the binary wire stream: for each instruction, the
    /// 13-bit command word little-endian in 2 bytes (bit 15 flags a DQ
    /// payload) followed by the 8-byte payload when present. This is the
    /// byte sequence a host driver would DMA to the memory controller.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.instructions.len() * 2);
        for inst in &self.instructions {
            let frame = inst.encode();
            let mut word = frame.command;
            if frame.data.is_some() {
                word |= 1 << 15;
            }
            out.extend_from_slice(&word.to_le_bytes());
            if let Some(d) = frame.data {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        out
    }

    /// Parses the binary wire stream produced by [`Program::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`IsaError`] on truncated input or undecodable frames.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IsaError> {
        let mut instructions = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            if pos + 2 > bytes.len() {
                return Err(IsaError::Parse("truncated command word".into()));
            }
            let word = u16::from_le_bytes([bytes[pos], bytes[pos + 1]]);
            pos += 2;
            let has_data = word & (1 << 15) != 0;
            let data = if has_data {
                if pos + 8 > bytes.len() {
                    return Err(IsaError::Parse("truncated DQ payload".into()));
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[pos..pos + 8]);
                pos += 8;
                Some(u64::from_le_bytes(b))
            } else {
                None
            };
            let frame = Frame { command: word & 0x1fff, data };
            instructions.push(Instruction::decode(&frame)?);
        }
        Ok(Program { instructions })
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<I: IntoIterator<Item = Instruction>>(iter: I) -> Self {
        Program { instructions: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl Extend<Instruction> for Program {
    fn extend<I: IntoIterator<Item = Instruction>>(&mut self, iter: I) {
        self.instructions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BufferId, RegId};

    fn sample() -> Program {
        Program::from_instructions(vec![
            Instruction::Init { reg: RegId::VocabSize, data: 1000 },
            Instruction::Ldr { buffer: BufferId::FeatureInt4, addr: 0 },
            Instruction::MulAddInt4 { a: BufferId::FeatureInt4, b: BufferId::WeightInt4 },
            Instruction::Filter { buffer: BufferId::PsumInt4 },
            Instruction::Return,
        ])
    }

    #[test]
    fn stats_classify_instructions() {
        let s = sample().stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.compute, 2); // MulAdd + Filter
        assert_eq!(s.transfer, 1); // Ldr
        assert_eq!(s.control, 2); // Init + Return
        assert_eq!(s.with_data, 2); // Init + Ldr
    }

    #[test]
    fn wire_bytes_accounts_payloads() {
        // 5 commands × 2 B + 2 payloads × 8 B.
        assert_eq!(sample().wire_bytes(), 26);
    }

    #[test]
    fn parse_and_disassemble_roundtrip() {
        let p = sample();
        let text = p.disassemble();
        let back = Program::parse(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn binary_roundtrip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len() as u64, p.wire_bytes());
        let back = Program::parse(&p.disassemble()).unwrap();
        assert_eq!(back, p);
        let decoded = Program::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn truncated_streams_rejected() {
        let p = sample();
        let bytes = p.to_bytes();
        assert!(Program::from_bytes(&bytes[..1]).is_err());
        // Cut inside a payload.
        assert!(Program::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn empty_stream_is_empty_program() {
        let p = Program::from_bytes(&[]).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = vec![Instruction::Nop, Instruction::Return].into_iter().collect();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut p = Program::new();
        p.extend(vec![Instruction::Nop]);
        p.push(Instruction::Clr);
        assert_eq!(p.instructions().len(), 2);
    }
}
