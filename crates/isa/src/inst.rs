//! The typed ENMC instruction set (paper Table 1).

/// On-DIMM buffers addressable by data-transfer and compute instructions
/// (paper Fig. 7: two input buffers + PSUM per unit, plus output and index
/// buffers). Encoded in 4 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BufferId {
    /// Screener input: quantized feature vector.
    FeatureInt4,
    /// Screener input: quantized screening-weight tile.
    WeightInt4,
    /// Screener partial sums.
    PsumInt4,
    /// Executor input: FP32 feature vector.
    FeatureFp32,
    /// Executor input: FP32 classifier-weight rows.
    WeightFp32,
    /// Executor partial sums.
    PsumFp32,
    /// Result buffer returned to the host.
    Output,
    /// Candidate indices produced by FILTER.
    Index,
}

impl BufferId {
    /// All buffers, in encoding order.
    pub const ALL: [BufferId; 8] = [
        BufferId::FeatureInt4,
        BufferId::WeightInt4,
        BufferId::PsumInt4,
        BufferId::FeatureFp32,
        BufferId::WeightFp32,
        BufferId::PsumFp32,
        BufferId::Output,
        BufferId::Index,
    ];

    /// 4-bit encoding.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&b| b == self).expect("in table") as u8
    }

    /// Decodes a 4-bit field.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The mnemonic operand syntax (`buffer_N`).
    pub fn mnemonic(self) -> String {
        format!("buffer_{}", self.code())
    }
}

/// Status registers in the ENMC controller (paper §5.2: "addresses and
/// sizes of input features, vocabulary, and screening weight", plus the
/// instruction counter). Encoded in 5 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RegId {
    /// Base DRAM address of the input feature vectors.
    FeatureAddr,
    /// Number of features (batch × hidden dim elements).
    FeatureSize,
    /// Base DRAM address of the quantized screening weights.
    ScreenWeightAddr,
    /// Size of the screening weight array in bytes.
    ScreenWeightSize,
    /// Base DRAM address of the full classifier weights.
    ClassifierAddr,
    /// Vocabulary / category count `l`.
    VocabSize,
    /// Hidden dimension `d`.
    HiddenDim,
    /// Reduced dimension `k`.
    ReducedDim,
    /// Preloaded FILTER threshold (IEEE-754 bits).
    Threshold,
    /// Executed-instruction counter (read-only from the host).
    InstCounter,
    /// Completed-batch counter.
    BatchCounter,
    /// Number of candidates produced by the last FILTER.
    CandidateCount,
    /// Base DRAM address of the screening bias vector.
    ScreenBiasAddr,
    /// Per-tensor scale of the quantized screening weights (f32 bits).
    WeightScale,
    /// Per-tensor scale of the quantized feature vector (f32 bits).
    FeatureScale,
}

impl RegId {
    /// All registers, in encoding order.
    pub const ALL: [RegId; 15] = [
        RegId::FeatureAddr,
        RegId::FeatureSize,
        RegId::ScreenWeightAddr,
        RegId::ScreenWeightSize,
        RegId::ClassifierAddr,
        RegId::VocabSize,
        RegId::HiddenDim,
        RegId::ReducedDim,
        RegId::Threshold,
        RegId::InstCounter,
        RegId::BatchCounter,
        RegId::CandidateCount,
        RegId::ScreenBiasAddr,
        RegId::WeightScale,
        RegId::FeatureScale,
    ];

    /// 5-bit encoding.
    pub fn code(self) -> u8 {
        Self::ALL.iter().position(|&r| r == self).expect("in table") as u8
    }

    /// Decodes a 5-bit field.
    pub fn from_code(code: u8) -> Option<Self> {
        Self::ALL.get(code as usize).copied()
    }

    /// The mnemonic operand syntax (`reg_N`).
    pub fn mnemonic(self) -> String {
        format!("reg_{}", self.code())
    }
}

/// One ENMC instruction (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Instruction {
    /// Initialize a status register with a 64-bit value (DQ burst).
    Init {
        /// Target register.
        reg: RegId,
        /// Value transferred over the DQ bus.
        data: u64,
    },
    /// Load a DRAM burst into an on-DIMM buffer.
    Ldr {
        /// Destination buffer.
        buffer: BufferId,
        /// DRAM byte address (DQ burst).
        addr: u64,
    },
    /// Store a buffer back to DRAM.
    Str {
        /// Source buffer.
        buffer: BufferId,
        /// DRAM byte address (DQ burst).
        addr: u64,
    },
    /// Copy between two buffers (e.g. PSUM → Output).
    Move {
        /// Destination.
        dst: BufferId,
        /// Source.
        src: BufferId,
    },
    /// Element-wise INT4 addition of two buffers.
    AddInt4 {
        /// First operand.
        a: BufferId,
        /// Second operand.
        b: BufferId,
    },
    /// Element-wise INT4 multiplication.
    MulInt4 {
        /// First operand.
        a: BufferId,
        /// Second operand.
        b: BufferId,
    },
    /// Element-wise FP32 addition.
    AddFp32 {
        /// First operand.
        a: BufferId,
        /// Second operand.
        b: BufferId,
    },
    /// Element-wise FP32 multiplication.
    MulFp32 {
        /// First operand.
        a: BufferId,
        /// Second operand.
        b: BufferId,
    },
    /// Multiply feature × weight buffers, accumulate into the INT4 PSUM.
    MulAddInt4 {
        /// Feature buffer.
        a: BufferId,
        /// Weight buffer.
        b: BufferId,
    },
    /// Multiply feature × weight buffers, accumulate into the FP32 PSUM.
    MulAddFp32 {
        /// Feature buffer.
        a: BufferId,
        /// Weight buffer.
        b: BufferId,
    },
    /// Threshold-filter a buffer; indices of survivors go to the index
    /// buffer.
    Filter {
        /// Buffer to filter (normally the INT4 PSUM).
        buffer: BufferId,
    },
    /// Softmax over the FP32 PSUM buffer (special-function unit).
    Softmax,
    /// Sigmoid over the FP32 PSUM buffer (special-function unit).
    Sigmoid,
    /// Wait until outstanding memory/compute/data movement completes.
    Barrier,
    /// Pipeline bubble.
    Nop,
    /// Read a status register back to the host.
    Query {
        /// Register to read.
        reg: RegId,
    },
    /// Return the output buffer to the host.
    Return,
    /// Clear and reset all buffers and registers.
    Clr,
}

impl Instruction {
    /// `true` if this instruction carries a 64-bit DQ payload.
    pub fn has_data(&self) -> bool {
        matches!(
            self,
            Instruction::Init { .. } | Instruction::Ldr { .. } | Instruction::Str { .. }
        )
    }

    /// `true` for compute instructions (the paper's Compute class).
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            Instruction::AddInt4 { .. }
                | Instruction::MulInt4 { .. }
                | Instruction::AddFp32 { .. }
                | Instruction::MulFp32 { .. }
                | Instruction::MulAddInt4 { .. }
                | Instruction::MulAddFp32 { .. }
                | Instruction::Filter { .. }
                | Instruction::Softmax
                | Instruction::Sigmoid
                | Instruction::Barrier
                | Instruction::Nop
        )
    }

    /// `true` for data-transfer instructions.
    pub fn is_transfer(&self) -> bool {
        matches!(
            self,
            Instruction::Ldr { .. } | Instruction::Str { .. } | Instruction::Move { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_codes_roundtrip() {
        for b in BufferId::ALL {
            assert_eq!(BufferId::from_code(b.code()), Some(b));
            assert!(b.code() < 16, "must fit 4 bits");
        }
        assert_eq!(BufferId::from_code(15), None);
    }

    #[test]
    fn reg_codes_roundtrip() {
        for r in RegId::ALL {
            assert_eq!(RegId::from_code(r.code()), Some(r));
            assert!(r.code() < 32, "must fit 5 bits");
        }
        assert_eq!(RegId::from_code(31), None);
        assert_eq!(RegId::ALL.len(), 15);
    }

    #[test]
    fn payload_classification() {
        assert!(Instruction::Init { reg: RegId::Threshold, data: 1 }.has_data());
        assert!(Instruction::Ldr { buffer: BufferId::FeatureInt4, addr: 64 }.has_data());
        assert!(!Instruction::Softmax.has_data());
        assert!(!Instruction::Query { reg: RegId::InstCounter }.has_data());
    }

    #[test]
    fn class_predicates() {
        assert!(Instruction::MulAddInt4 { a: BufferId::FeatureInt4, b: BufferId::WeightInt4 }
            .is_compute());
        assert!(Instruction::Move { dst: BufferId::Output, src: BufferId::PsumFp32 }
            .is_transfer());
        assert!(!Instruction::Return.is_compute());
        assert!(!Instruction::Return.is_transfer());
    }

    #[test]
    fn mnemonics() {
        assert_eq!(BufferId::FeatureInt4.mnemonic(), "buffer_0");
        assert_eq!(RegId::FeatureAddr.mnemonic(), "reg_0");
    }
}
