//! Assembler / disassembler for the paper's textual mnemonics.
//!
//! Syntax follows Table 1 / Fig. 8:
//!
//! ```text
//! INIT reg_7, 42
//! LDR buffer_0, 0x1000
//! MUL_ADD_FP32 buffer_3, buffer_4
//! FILTER buffer_2
//! SOFTMAX
//! QUERY reg_9
//! RETURN
//! ```
//!
//! Lines may carry `;`- or `#`-prefixed comments; blank lines are ignored.

use crate::inst::{BufferId, Instruction, RegId};
use crate::IsaError;

/// Formats one instruction as assembly text.
pub fn disassemble(inst: &Instruction) -> String {
    match *inst {
        Instruction::Init { reg, data } => format!("INIT {}, {}", reg.mnemonic(), data),
        Instruction::Query { reg } => format!("QUERY {}", reg.mnemonic()),
        Instruction::Ldr { buffer, addr } => {
            format!("LDR {}, {:#x}", buffer.mnemonic(), addr)
        }
        Instruction::Str { buffer, addr } => {
            format!("STR {}, {:#x}", buffer.mnemonic(), addr)
        }
        Instruction::Move { dst, src } => {
            format!("MOVE {}, {}", dst.mnemonic(), src.mnemonic())
        }
        Instruction::AddInt4 { a, b } => format!("ADD_INT4 {}, {}", a.mnemonic(), b.mnemonic()),
        Instruction::MulInt4 { a, b } => format!("MUL_INT4 {}, {}", a.mnemonic(), b.mnemonic()),
        Instruction::AddFp32 { a, b } => format!("ADD_FP32 {}, {}", a.mnemonic(), b.mnemonic()),
        Instruction::MulFp32 { a, b } => format!("MUL_FP32 {}, {}", a.mnemonic(), b.mnemonic()),
        Instruction::MulAddInt4 { a, b } => {
            format!("MUL_ADD_INT4 {}, {}", a.mnemonic(), b.mnemonic())
        }
        Instruction::MulAddFp32 { a, b } => {
            format!("MUL_ADD_FP32 {}, {}", a.mnemonic(), b.mnemonic())
        }
        Instruction::Filter { buffer } => format!("FILTER {}", buffer.mnemonic()),
        Instruction::Softmax => "SOFTMAX".into(),
        Instruction::Sigmoid => "SIGMOID".into(),
        Instruction::Barrier => "BARRIER".into(),
        Instruction::Nop => "NOP".into(),
        Instruction::Return => "RETURN".into(),
        Instruction::Clr => "CLR".into(),
    }
}

/// Parses one line of assembly.
///
/// # Errors
///
/// Returns [`IsaError::Parse`] with a description of what failed.
pub fn assemble_line(line: &str) -> Result<Instruction, IsaError> {
    let code = line.split([';', '#']).next().unwrap_or("").trim();
    if code.is_empty() {
        return Err(IsaError::Parse("empty line".into()));
    }
    let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (code, ""),
    };
    let operands: Vec<&str> =
        rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let n_operands = operands.len();
    let expect = |n: usize| {
        if n_operands == n {
            Ok(())
        } else {
            Err(IsaError::Parse(format!("{mnemonic} expects {n} operand(s), got {n_operands}")))
        }
    };
    let upper = mnemonic.to_ascii_uppercase();
    match upper.as_str() {
        "INIT" => {
            expect(2)?;
            Ok(Instruction::Init { reg: parse_reg(operands[0])?, data: parse_int(operands[1])? })
        }
        "QUERY" => {
            expect(1)?;
            Ok(Instruction::Query { reg: parse_reg(operands[0])? })
        }
        "LDR" => {
            expect(2)?;
            Ok(Instruction::Ldr { buffer: parse_buf(operands[0])?, addr: parse_int(operands[1])? })
        }
        "STR" => {
            expect(2)?;
            Ok(Instruction::Str { buffer: parse_buf(operands[0])?, addr: parse_int(operands[1])? })
        }
        "MOVE" => {
            expect(2)?;
            Ok(Instruction::Move { dst: parse_buf(operands[0])?, src: parse_buf(operands[1])? })
        }
        "ADD_INT4" | "MUL_INT4" | "ADD_FP32" | "MUL_FP32" | "MUL_ADD_INT4" | "MUL_ADD_FP32" => {
            expect(2)?;
            let a = parse_buf(operands[0])?;
            let b = parse_buf(operands[1])?;
            Ok(match upper.as_str() {
                "ADD_INT4" => Instruction::AddInt4 { a, b },
                "MUL_INT4" => Instruction::MulInt4 { a, b },
                "ADD_FP32" => Instruction::AddFp32 { a, b },
                "MUL_FP32" => Instruction::MulFp32 { a, b },
                "MUL_ADD_INT4" => Instruction::MulAddInt4 { a, b },
                _ => Instruction::MulAddFp32 { a, b },
            })
        }
        "FILTER" => {
            expect(1)?;
            Ok(Instruction::Filter { buffer: parse_buf(operands[0])? })
        }
        "SOFTMAX" => expect(0).map(|_| Instruction::Softmax),
        "SIGMOID" => expect(0).map(|_| Instruction::Sigmoid),
        "BARRIER" => expect(0).map(|_| Instruction::Barrier),
        "NOP" => expect(0).map(|_| Instruction::Nop),
        "RETURN" => expect(0).map(|_| Instruction::Return),
        "CLR" => expect(0).map(|_| Instruction::Clr),
        other => Err(IsaError::Parse(format!("unknown mnemonic {other}"))),
    }
}

/// Parses a multi-line program, skipping blanks and comment-only lines.
///
/// # Errors
///
/// Returns the first [`IsaError::Parse`] with its line number prepended.
pub fn assemble(text: &str) -> Result<Vec<Instruction>, IsaError> {
    let mut out = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let code = raw.split([';', '#']).next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        out.push(
            assemble_line(code)
                .map_err(|e| IsaError::Parse(format!("line {}: {e}", ln + 1)))?,
        );
    }
    Ok(out)
}

fn parse_buf(s: &str) -> Result<BufferId, IsaError> {
    let idx = s
        .strip_prefix("buffer_")
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or(IsaError::BadOperand("expected buffer_N"))?;
    BufferId::from_code(idx).ok_or(IsaError::BadOperand("buffer index out of range"))
}

fn parse_reg(s: &str) -> Result<RegId, IsaError> {
    let idx = s
        .strip_prefix("reg_")
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or(IsaError::BadOperand("expected reg_N"))?;
    RegId::from_code(idx).ok_or(IsaError::BadOperand("register index out of range"))
}

fn parse_int(s: &str) -> Result<u64, IsaError> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| IsaError::BadOperand("expected an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_mnemonic() {
        let program = "\
            INIT reg_8, 1065353216 ; threshold = 1.0f bits\n\
            LDR buffer_0, 0x1000\n\
            LDR buffer_1, 0x2000\n\
            MUL_ADD_INT4 buffer_0, buffer_1\n\
            FILTER buffer_2\n\
            MUL_ADD_FP32 buffer_3, buffer_4\n\
            SOFTMAX\n\
            MOVE buffer_6, buffer_5\n\
            STR buffer_6, 0x3000\n\
            BARRIER\n\
            QUERY reg_9\n\
            RETURN\n\
            CLR\n";
        let insts = assemble(program).unwrap();
        assert_eq!(insts.len(), 13);
        for inst in &insts {
            let text = disassemble(inst);
            let back = assemble_line(&text).unwrap();
            assert_eq!(back, *inst, "via {text}");
        }
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let insts = assemble("; a comment\n\n# another\nNOP\n").unwrap();
        assert_eq!(insts, vec![Instruction::Nop]);
    }

    #[test]
    fn case_insensitive_mnemonics() {
        assert_eq!(assemble_line("softmax").unwrap(), Instruction::Softmax);
        assert_eq!(assemble_line("Nop").unwrap(), Instruction::Nop);
    }

    #[test]
    fn hex_and_decimal_ints() {
        let a = assemble_line("LDR buffer_0, 0x40").unwrap();
        let b = assemble_line("LDR buffer_0, 64").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("NOP\nBOGUS\n").unwrap_err();
        match err {
            IsaError::Parse(msg) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_operand_counts_rejected() {
        assert!(assemble_line("SOFTMAX buffer_0").is_err());
        assert!(assemble_line("MOVE buffer_0").is_err());
        assert!(assemble_line("INIT reg_0").is_err());
    }

    #[test]
    fn bad_operands_rejected() {
        assert!(assemble_line("FILTER buffer_99").is_err());
        assert!(assemble_line("QUERY reg_31").is_err());
        assert!(assemble_line("LDR buffer_0, notanumber").is_err());
    }
}
