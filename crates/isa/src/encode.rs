//! Binary encoding into the PRECHARGE-hijack frame (paper Fig. 8).
//!
//! A frame is the 13-bit command word carried on row-address lines A0–A12
//! of a PRECHARGE command, plus an optional 64-bit burst on the DQ bus:
//!
//! ```text
//! bits 12..8 : opcode (5 bits)
//! bits  7..0 : operands
//!   two-buffer ops : [7..4] = buffer A, [3..0] = buffer B
//!   one-buffer ops : [7..4] = buffer
//!   INIT/QUERY     : [7]    = WT(1)/RD(0), [6..2] = reg id (Fig. 8b)
//! ```
//!
//! INIT, LDR and STR additionally transmit a 64-bit value over DQ.

use crate::inst::{BufferId, Instruction, RegId};
use crate::IsaError;

/// Wire image of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// 13-bit command word (A0–A12).
    pub command: u16,
    /// Optional 64-bit DQ burst.
    pub data: Option<u64>,
}

impl Frame {
    /// `true` if the command word fits the 13 usable address bits.
    pub fn is_valid_width(&self) -> bool {
        self.command < (1 << 13)
    }
}

// Opcode assignments. QUERY and INIT share an opcode (Fig. 8b) and are
// distinguished by the RD/WT bit.
const OP_LDR: u8 = 0;
const OP_STR: u8 = 1;
const OP_MUL_ADD_FP32: u8 = 2; // Fig. 8(a): "Opcode=2  MUL_ADD_FP32"
const OP_MUL_ADD_INT4: u8 = 3;
const OP_ADD_INT4: u8 = 4;
const OP_MUL_INT4: u8 = 5;
const OP_ADD_FP32: u8 = 6;
const OP_MUL_FP32: u8 = 7;
const OP_MOVE: u8 = 8;
const OP_REG: u8 = 9; // Fig. 8(b): "Opcode=9  QUERY/INIT"
const OP_FILTER: u8 = 10;
const OP_SOFTMAX: u8 = 11;
const OP_SIGMOID: u8 = 12;
const OP_BARRIER: u8 = 13;
const OP_NOP: u8 = 14;
const OP_RETURN: u8 = 15;
const OP_CLR: u8 = 16;

fn two_buf(op: u8, a: BufferId, b: BufferId) -> u16 {
    ((op as u16) << 8) | ((a.code() as u16) << 4) | b.code() as u16
}

fn one_buf(op: u8, a: BufferId) -> u16 {
    ((op as u16) << 8) | ((a.code() as u16) << 4)
}

fn reg_word(write: bool, reg: RegId) -> u16 {
    ((OP_REG as u16) << 8) | ((write as u16) << 7) | ((reg.code() as u16) << 2)
}

impl Instruction {
    /// Encodes into the wire frame.
    pub fn encode(&self) -> Frame {
        let (command, data) = match *self {
            Instruction::Init { reg, data } => (reg_word(true, reg), Some(data)),
            Instruction::Query { reg } => (reg_word(false, reg), None),
            Instruction::Ldr { buffer, addr } => (one_buf(OP_LDR, buffer), Some(addr)),
            Instruction::Str { buffer, addr } => (one_buf(OP_STR, buffer), Some(addr)),
            Instruction::Move { dst, src } => (two_buf(OP_MOVE, dst, src), None),
            Instruction::AddInt4 { a, b } => (two_buf(OP_ADD_INT4, a, b), None),
            Instruction::MulInt4 { a, b } => (two_buf(OP_MUL_INT4, a, b), None),
            Instruction::AddFp32 { a, b } => (two_buf(OP_ADD_FP32, a, b), None),
            Instruction::MulFp32 { a, b } => (two_buf(OP_MUL_FP32, a, b), None),
            Instruction::MulAddInt4 { a, b } => (two_buf(OP_MUL_ADD_INT4, a, b), None),
            Instruction::MulAddFp32 { a, b } => (two_buf(OP_MUL_ADD_FP32, a, b), None),
            Instruction::Filter { buffer } => (one_buf(OP_FILTER, buffer), None),
            Instruction::Softmax => ((OP_SOFTMAX as u16) << 8, None),
            Instruction::Sigmoid => ((OP_SIGMOID as u16) << 8, None),
            Instruction::Barrier => ((OP_BARRIER as u16) << 8, None),
            Instruction::Nop => ((OP_NOP as u16) << 8, None),
            Instruction::Return => ((OP_RETURN as u16) << 8, None),
            Instruction::Clr => ((OP_CLR as u16) << 8, None),
        };
        Frame { command, data }
    }

    /// Decodes a wire frame.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError`] for unknown opcodes, invalid operand fields, or
    /// a missing DQ payload.
    pub fn decode(frame: &Frame) -> Result<Self, IsaError> {
        let op = (frame.command >> 8) as u8 & 0x1f;
        let operands = (frame.command & 0xff) as u8;
        let buf_a = || {
            BufferId::from_code(operands >> 4).ok_or(IsaError::BadOperand("buffer A"))
        };
        let buf_b = || BufferId::from_code(operands & 0xf).ok_or(IsaError::BadOperand("buffer B"));
        let data = || frame.data.ok_or(IsaError::MissingData);
        Ok(match op {
            OP_LDR => Instruction::Ldr { buffer: buf_a()?, addr: data()? },
            OP_STR => Instruction::Str { buffer: buf_a()?, addr: data()? },
            OP_MOVE => Instruction::Move { dst: buf_a()?, src: buf_b()? },
            OP_ADD_INT4 => Instruction::AddInt4 { a: buf_a()?, b: buf_b()? },
            OP_MUL_INT4 => Instruction::MulInt4 { a: buf_a()?, b: buf_b()? },
            OP_ADD_FP32 => Instruction::AddFp32 { a: buf_a()?, b: buf_b()? },
            OP_MUL_FP32 => Instruction::MulFp32 { a: buf_a()?, b: buf_b()? },
            OP_MUL_ADD_INT4 => Instruction::MulAddInt4 { a: buf_a()?, b: buf_b()? },
            OP_MUL_ADD_FP32 => Instruction::MulAddFp32 { a: buf_a()?, b: buf_b()? },
            OP_FILTER => Instruction::Filter { buffer: buf_a()? },
            OP_SOFTMAX => Instruction::Softmax,
            OP_SIGMOID => Instruction::Sigmoid,
            OP_BARRIER => Instruction::Barrier,
            OP_NOP => Instruction::Nop,
            OP_RETURN => Instruction::Return,
            OP_CLR => Instruction::Clr,
            OP_REG => {
                let write = operands & 0x80 != 0;
                let reg = RegId::from_code((operands >> 2) & 0x1f)
                    .ok_or(IsaError::BadOperand("register id"))?;
                if write {
                    Instruction::Init { reg, data: data()? }
                } else {
                    Instruction::Query { reg }
                }
            }
            other => return Err(IsaError::UnknownOpcode(other)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_instructions() -> Vec<Instruction> {
        let mut v = vec![
            Instruction::Softmax,
            Instruction::Sigmoid,
            Instruction::Barrier,
            Instruction::Nop,
            Instruction::Return,
            Instruction::Clr,
        ];
        for reg in RegId::ALL {
            v.push(Instruction::Init { reg, data: 0xdead_beef_0123_4567 });
            v.push(Instruction::Query { reg });
        }
        for a in BufferId::ALL {
            v.push(Instruction::Ldr { buffer: a, addr: 0x1000 });
            v.push(Instruction::Str { buffer: a, addr: 0x2040 });
            v.push(Instruction::Filter { buffer: a });
            for b in BufferId::ALL {
                v.push(Instruction::Move { dst: a, src: b });
                v.push(Instruction::AddInt4 { a, b });
                v.push(Instruction::MulInt4 { a, b });
                v.push(Instruction::AddFp32 { a, b });
                v.push(Instruction::MulFp32 { a, b });
                v.push(Instruction::MulAddInt4 { a, b });
                v.push(Instruction::MulAddFp32 { a, b });
            }
        }
        v
    }

    #[test]
    fn every_instruction_roundtrips() {
        for inst in all_instructions() {
            let frame = inst.encode();
            assert!(frame.is_valid_width(), "{inst:?} overflows 13 bits");
            let back = Instruction::decode(&frame).unwrap();
            assert_eq!(back, inst);
        }
    }

    #[test]
    fn data_instructions_carry_payload() {
        for inst in all_instructions() {
            assert_eq!(inst.encode().data.is_some(), inst.has_data(), "{inst:?}");
        }
    }

    #[test]
    fn figure8a_opcode_for_mul_add_fp32_is_2() {
        let inst =
            Instruction::MulAddFp32 { a: BufferId::FeatureInt4, b: BufferId::WeightInt4 };
        assert_eq!(inst.encode().command >> 8, 2);
    }

    #[test]
    fn figure8b_query_and_init_share_opcode_9() {
        let q = Instruction::Query { reg: RegId::Threshold };
        let i = Instruction::Init { reg: RegId::Threshold, data: 0 };
        assert_eq!(q.encode().command >> 8, 9);
        assert_eq!(i.encode().command >> 8, 9);
        // Distinguished by the RD/WT bit.
        assert_ne!(q.encode().command, i.encode().command);
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        let frame = Frame { command: 0x1f << 8, data: None };
        assert_eq!(Instruction::decode(&frame), Err(IsaError::UnknownOpcode(0x1f)));
    }

    #[test]
    fn decode_rejects_missing_payload() {
        let mut frame = Instruction::Ldr { buffer: BufferId::Output, addr: 0 }.encode();
        frame.data = None;
        assert_eq!(Instruction::decode(&frame), Err(IsaError::MissingData));
    }

    #[test]
    fn decode_rejects_bad_buffer() {
        // Buffer code 15 is unassigned.
        let frame = Frame { command: ((4u16) << 8) | 0xf0, data: None };
        assert!(matches!(Instruction::decode(&frame), Err(IsaError::BadOperand(_))));
    }

    #[test]
    fn distinct_instructions_have_distinct_frames() {
        let insts = all_instructions();
        let mut seen = std::collections::HashMap::new();
        for inst in insts {
            let f = inst.encode();
            if let Some(prev) = seen.insert((f.command, f.data), inst) {
                panic!("collision between {prev:?} and {inst:?}");
            }
        }
    }
}
