//! The ENMC instruction set (paper §5.3, Table 1, Fig. 8).
//!
//! ENMC instructions travel to the DIMM disguised as PRECHARGE commands: a
//! normal PRECHARGE needs no row address, so its row-address lines A0–A12
//! are free to carry a 13-bit instruction word, and the DQ bus can carry a
//! 64-bit operand burst for instructions that need data. This keeps the
//! DIMM fully compatible with the commodity DDR4 electrical interface —
//! regular memory requests still work.
//!
//! * [`Instruction`] — the typed instruction set: Initialization
//!   (INIT), Data Transfer (LDR/STR/MOVE), Compute (ADD/MUL/MUL_ADD at
//!   INT4/FP32, FILTER, SOFTMAX, SIGMOID, BARRIER, NOP) and Control
//!   (QUERY, RETURN, CLR);
//! * [`BufferId`] / [`RegId`] — the on-DIMM buffers and status registers
//!   operands name;
//! * [`Frame`] — the 13-bit + optional-64-bit wire image, with lossless
//!   [`Instruction::encode`] / [`Instruction::decode`];
//! * [`asm`] — a tiny assembler/disassembler for the textual mnemonics the
//!   paper uses (`MUL_ADD_FP32 buffer_0, buffer_1`);
//! * [`Program`] — an instruction sequence with summary statistics.
//!
//! # Example
//!
//! ```
//! use enmc_isa::{BufferId, Instruction};
//!
//! let inst = Instruction::MulAddFp32 { a: BufferId::FeatureFp32, b: BufferId::WeightFp32 };
//! let frame = inst.encode();
//! assert_eq!(Instruction::decode(&frame).unwrap(), inst);
//! ```

pub mod asm;
pub mod encode;
pub mod inst;
pub mod program;

pub use encode::Frame;
pub use inst::{BufferId, Instruction, RegId};
pub use program::Program;

/// Errors produced while decoding or assembling instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// The 13-bit command word holds an opcode that is not defined.
    UnknownOpcode(u8),
    /// An operand field does not name a valid buffer or register.
    BadOperand(&'static str),
    /// The instruction requires a DQ data burst that was not supplied.
    MissingData,
    /// Assembly text could not be parsed.
    Parse(String),
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            IsaError::BadOperand(what) => write!(f, "invalid operand: {what}"),
            IsaError::MissingData => write!(f, "instruction requires a DQ data burst"),
            IsaError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for IsaError {}
