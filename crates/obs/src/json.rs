//! Minimal self-contained JSON tree, writer, and parser.
//!
//! The observability layer must emit machine-readable output *and* read it
//! back (the trace round-trip tests, the report loader) without pulling a
//! serialization dependency into the workspace. This module implements the
//! small JSON core those paths need: the full value tree, string escapes
//! (including `\uXXXX` with surrogate pairs), and a recursive-descent
//! parser.
//!
//! # Example
//!
//! ```
//! use enmc_obs::json::Value;
//!
//! let v = Value::Obj(vec![
//!     ("name".to_string(), Value::Str("ACT".to_string())),
//!     ("ts".to_string(), Value::Int(42)),
//! ]);
//! let text = v.to_json();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("ts").and_then(Value::as_u64), Some(42));
//! ```

/// A JSON value.
///
/// Numbers keep an integer/float distinction so cycle counters survive a
/// round trip exactly; [`Value::as_f64`] widens either kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64` (exact integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `u64` (non-negative exact integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (either numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object pairs, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Num(n) => write_f64(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns a description with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes `n` as JSON (non-finite values become `null`, the only lossless
/// choice JSON offers).
fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(format!("invalid literal at byte {}", self.pos))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run stops at an ASCII
                // boundary byte, so the slice is valid UTF-8 too.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..=0xdbff).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.eat_literal("\\u") {
                                    return Err(format!(
                                        "lone high surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xdc00..=0xdfff).contains(&lo) {
                                    return Err(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + (((hi - 0xd800) << 10) | (lo - 0xdc00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid unicode escape".to_string())?,
                            );
                        }
                        _ => return Err(format!("unknown escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let slice = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(slice, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(format!("expected a value at byte {start}"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5"] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
    }

    #[test]
    fn integers_stay_exact() {
        let v = Value::parse("9007199254740993").unwrap();
        assert_eq!(v.as_i64(), Some(9007199254740993));
        assert_eq!(v.to_json(), "9007199254740993");
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{0001}";
        let v = Value::Str(s.to_string());
        let back = Value::parse(&v.to_json()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        let v = Value::parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "\"abc", "{\"a\":}", "tru", "1 2", "\"\\u12\""] {
            assert!(Value::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn object_get_on_non_object_is_none() {
        assert!(Value::Arr(vec![]).get("k").is_none());
    }
}
