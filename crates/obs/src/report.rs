//! Structured run reports: phase-scoped timing plus a metrics snapshot,
//! with a JSON round trip.
//!
//! A [`RunReport`] is the machine-readable summary of one simulated job:
//! what ran, how long each phase took on the host wall clock *and* in
//! simulated DRAM cycles, and every counter the run produced. The
//! invariant the evaluation relies on — per-phase cycle totals summing to
//! the headline latency — is checked by [`RunReport::is_consistent`].
//!
//! # Example
//!
//! ```
//! use enmc_obs::report::RunReport;
//!
//! let mut report = RunReport::new("simulate", "lstm", "enmc");
//! report.push_phase("screen", 1.0e6, 800, 666.4);
//! report.push_phase("gather", 2.5e5, 200, 166.6);
//! report.sim_cycles = 1000;
//! assert!(report.is_consistent());
//! let back = RunReport::from_json(&report.to_json()).unwrap();
//! assert_eq!(back.phases.len(), 2);
//! ```

use crate::json::Value;
use crate::metrics::MetricsReport;

/// Schema version stamped into every report.
///
/// # Field history (the single source of truth)
///
/// Every schema bump is **additive**: a report written at version `n`
/// parses under any reader that understands version `m >= n`, with the
/// newer fields defaulted as listed below. Readers must never require a
/// field introduced after the report's own `schema_version`.
///
/// | Version | Fields added | Default when absent |
/// |---|---|---|
/// | v1 | `command`, `workload`, `scheme`, `batch`, `candidates`, `headline_ns`, `sim_cycles`, `phases`, `metrics`, `notes` | — (required) |
/// | v2 | `threads` (worker count; 0 = representative-rank shortcut), `speedup` (observed parallel speedup; 1.0 sequential) | `0`, `1.0` |
/// | v3 | `protocol_violations` (DDR4 conformance violations under `--check-protocol`) | `0` |
/// | v4 | `slo_attainment` (fraction of completed requests meeting their deadline — serving runs only), `p99_ns` (99th-percentile request latency, ns), `shed` (requests rejected by admission control), `degrade_transitions` (screener degrade-tier steps, both directions) | `0.0`, `0.0`, `0`, `0` |
/// | v5 | `ber` (injected uniform bit-error rate — fault runs only), `refresh_multiplier` (refresh-interval multiplier; 1.0 nominal), `ecc_corrected` (SEC-DED single-bit corrections), `ecc_uncorrected` (detected-uncorrectable words), `quality_degradation_pct` (top-1 agreement loss vs the fault-free model, percent) | `0.0`, `1.0`, `0`, `0`, `0.0` |
/// | v6 | `energy_nj` (total attributed system energy; deterministic, derived from simulation counters only), `breakdown` (flattened cost-attribution leaves: `path`/`cycles`/`nj` rows whose sums reproduce the headline totals exactly) | `0.0`, `[]` |
/// | v7 | `cost_backend` (which cost model answered sweep points: `cycle-accurate` or `surrogate`), `fit_anchors` (cycle-accurate anchor simulations run by surrogate fits), `audit_points` (surrogate predictions re-run cycle-accurately), `audit_max_rel_err` (worst bound-normalized relative leaf error over the audited points) | `"cycle-accurate"`, `0`, `0`, `0.0` |
/// | v8 | `nodes` (simulated DIMM-group nodes — fleet runs only), `placement` (shard placement policy: `consistent-hash` or `popularity`), `hot_shard_replicas` (extra hot-shard copies the placement placed), `network_share` (fraction of completed-request latency cycles spent on the interconnect), `tenants` (per-tenant rows: `name`/`slo_attainment`/`p99_ns`/`shed`/`admitted`/`completed`/`degrade_transitions`) | `0`, `""`, `0`, `0.0`, `[]` |
/// | v9 | `space_size` (designs in the declared tune space), `evaluated_designs` (designs the search actually simulated), `audited_designs` (evaluated designs the audit lottery re-ran cycle-accurately), `frontier_points` (Pareto-optimal designs), `dominated_points` (evaluated designs dominated by the frontier), `max_area_mm2` (declared area budget; 0.0 = unconstrained), `max_power_mw` (declared power budget; 0.0 = unconstrained), `offload_nmp` (admission-time planner decisions that kept NMP execution), `offload_cpu` (planner decisions that chose the CPU roofline) | `0`, `0`, `0`, `0`, `0`, `0.0`, `0.0`, `0`, `0` |
/// | v10 | `memory_tech` (memory-technology preset the run simulated: `ddr4-2666`, `ddr5-4800`, `lpddr4-3200`, or `hbm2`; empty for analytic commands with no DRAM domain), `ber_scale` (the preset's bit-error-rate multiplier relative to the DDR4 baseline), `retention_base` (the preset's retention-failure coefficient; 0.0 when the run injected no faults), `weak_column_scale` (the preset's weak-column incidence multiplier) | `""`, `1.0`, `0.0`, `1.0` |
///
/// The v4 serving fields are only meaningful for `serve-sim` reports,
/// the v5 fault fields only for `fault-sweep` reports, the v6
/// attribution fields only for cycle-level runs (`profile`, sharded
/// `simulate`), the v7 surrogate fields only for commands that accept
/// `--cost-model`, the v8 fleet fields only for `fleet-sim` reports, and
/// the v9 tune fields only for `tune`/`offload-plan` runs and the
/// serving commands under `--offload`; other commands write them at
/// their defaults. The v10 memory fields are stamped by every command
/// that accepts `--memory`; the error-profile triplet is only
/// interpreted by fault sweeps.
pub const SCHEMA_VERSION: u32 = 10;

/// One timed phase of a run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PhaseSpan {
    /// Phase name (`synthesize`, `distill`, `screen`, …).
    pub name: String,
    /// Host wall-clock time spent in the phase, nanoseconds.
    pub wall_ns: f64,
    /// Simulated DRAM-clock cycles attributed to the phase (0 for
    /// host-only phases).
    pub sim_cycles: u64,
    /// Simulated nanoseconds attributed to the phase.
    pub sim_ns: f64,
}

/// One flattened leaf of a hierarchical cost attribution.
///
/// `path` is a `/`-separated position in the tree
/// (`energy/dram/access/ch0/act`); sibling leaves partition their parent,
/// so summing any complete leaf set reproduces the corresponding total
/// exactly. Rows are derived from simulation counters only — never host
/// wall time — which keeps them bit-identical across worker counts.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BreakdownRow {
    /// `/`-separated path of the leaf in the attribution tree.
    pub path: String,
    /// Simulated DRAM-clock cycles attributed to the leaf (0 for
    /// energy-only leaves).
    pub cycles: u64,
    /// Energy attributed to the leaf, nanojoules (0.0 for cycle-only
    /// leaves).
    pub nj: f64,
}

/// One tenant's serving outcome inside a fleet run.
///
/// Fleet reports fold per-node state in fixed shard order, so these rows
/// are listed in tenant-configuration order and carry simulation-derived
/// numbers only — never host wall clock.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TenantRow {
    /// Tenant name (`t0`, `t1`, … by CLI convention).
    pub name: String,
    /// Fraction of the tenant's completed requests that met its deadline.
    pub slo_attainment: f64,
    /// The tenant's 99th-percentile request latency, simulated ns.
    pub p99_ns: f64,
    /// Requests of this tenant rejected by admission control.
    pub shed: u64,
    /// Requests of this tenant admitted to a node queue.
    pub admitted: u64,
    /// Requests of this tenant that completed service.
    pub completed: u64,
    /// Degrade-tier steps the tenant's ladder took, both directions.
    pub degrade_transitions: u64,
}

/// Machine-readable summary of one run.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The command that produced the report (`simulate`, `demo`, …).
    pub command: String,
    /// Workload identifier.
    pub workload: String,
    /// Scheme identifier (`enmc`, `cpu`, …).
    pub scheme: String,
    /// Batch size.
    pub batch: u64,
    /// Exact candidates per batch item.
    pub candidates: u64,
    /// Headline simulated latency in nanoseconds.
    pub headline_ns: f64,
    /// Headline simulated latency in DRAM-clock cycles (0 for analytic
    /// models with no cycle-level simulation).
    pub sim_cycles: u64,
    /// Worker threads the simulation ran on (0 when the run had no
    /// parallelizable region, e.g. the representative-rank shortcut).
    pub threads: u64,
    /// Observed host-side parallel speedup of the simulation region
    /// (summed shard wall time over region wall time; 1.0 sequential).
    pub speedup: f64,
    /// DDR4 protocol violations the conformance checker observed (always
    /// 0 unless the run enabled `--check-protocol`).
    pub protocol_violations: u64,
    /// Fraction of completed requests that met their deadline (serving
    /// runs only; 0.0 for batch-simulation commands).
    pub slo_attainment: f64,
    /// 99th-percentile request latency in simulated nanoseconds (serving
    /// runs only; 0.0 otherwise).
    pub p99_ns: f64,
    /// Requests rejected by admission control (serving runs only).
    pub shed: u64,
    /// Screener degrade-tier transitions, counting steps in both
    /// directions (serving runs only).
    pub degrade_transitions: u64,
    /// Injected uniform bit-error rate (fault runs only; 0.0 otherwise).
    pub ber: f64,
    /// Refresh-interval multiplier the run modeled (1.0 = nominal
    /// schedule).
    pub refresh_multiplier: f64,
    /// SEC-DED words corrected (single-bit errors repaired).
    pub ecc_corrected: u64,
    /// SEC-DED words with a detected but uncorrectable multi-bit error.
    pub ecc_uncorrected: u64,
    /// Fraction of queries whose top-1 flipped due to injected faults,
    /// in percent (0.0 when no faults were injected).
    pub quality_degradation_pct: f64,
    /// Total attributed system energy in nanojoules (0.0 when the run
    /// produced no attribution; equals the sum of energy leaves in
    /// [`RunReport::breakdown`] when it did).
    pub energy_nj: f64,
    /// Flattened cost-attribution leaves (empty when the run produced no
    /// attribution).
    pub breakdown: Vec<BreakdownRow>,
    /// The cost backend that answered the run's sweep points
    /// (`cycle-accurate` or `surrogate`).
    pub cost_backend: String,
    /// Cycle-accurate anchor simulations the surrogate fits ran (0 on
    /// the cycle-accurate backend).
    pub fit_anchors: u64,
    /// Surrogate predictions that were re-run cycle-accurately by the
    /// audit lottery.
    pub audit_points: u64,
    /// Worst bound-normalized relative leaf error observed over the
    /// audited points (≤ the declared bound or the run would have
    /// failed with a `SurrogateViolation`).
    pub audit_max_rel_err: f64,
    /// Simulated DIMM-group nodes in a fleet run (0 for single-node
    /// commands).
    pub nodes: u64,
    /// Shard placement policy of a fleet run (`consistent-hash` or
    /// `popularity`; empty for single-node commands).
    pub placement: String,
    /// Extra hot-shard copies the placement actually placed.
    pub hot_shard_replicas: u64,
    /// Fraction of completed-request latency cycles spent on the
    /// interconnect (0.0 for single-node commands).
    pub network_share: f64,
    /// Per-tenant serving rows (fleet runs only; empty otherwise).
    pub tenants: Vec<TenantRow>,
    /// Designs in the declared tune space (tune runs only).
    pub space_size: u64,
    /// Designs the search driver actually evaluated (≤ `space_size`;
    /// equal on exhaustive search).
    pub evaluated_designs: u64,
    /// Evaluated designs whose surrogate prediction the audit lottery
    /// re-ran cycle-accurately (0 on the cycle-accurate backend).
    pub audited_designs: u64,
    /// Pareto-optimal designs on the emitted frontier.
    pub frontier_points: u64,
    /// Evaluated designs dominated by some frontier point.
    pub dominated_points: u64,
    /// Declared area budget in mm² (0.0 = unconstrained).
    pub max_area_mm2: f64,
    /// Declared power budget in mW (0.0 = unconstrained).
    pub max_power_mw: f64,
    /// Admission-time offload-planner decisions that kept NMP execution.
    pub offload_nmp: u64,
    /// Admission-time offload-planner decisions that chose the CPU
    /// roofline instead.
    pub offload_cpu: u64,
    /// Memory-technology preset the run simulated (`ddr4-2666`,
    /// `ddr5-4800`, `lpddr4-3200`, `hbm2`; empty when the command has no
    /// DRAM timing domain).
    pub memory_tech: String,
    /// The preset's bit-error-rate multiplier relative to the DDR4
    /// baseline (1.0 = baseline incidence).
    pub ber_scale: f64,
    /// The preset's retention-failure coefficient (0.0 when the run
    /// injected no retention faults).
    pub retention_base: f64,
    /// The preset's weak-column incidence multiplier relative to the
    /// DDR4 baseline (1.0 = baseline incidence).
    pub weak_column_scale: f64,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseSpan>,
    /// Metrics snapshot.
    pub metrics: MetricsReport,
    /// Free-form annotations.
    pub notes: Vec<String>,
}

impl RunReport {
    /// A fresh report for `command` on `workload` under `scheme`.
    pub fn new(command: &str, workload: &str, scheme: &str) -> Self {
        RunReport {
            schema_version: SCHEMA_VERSION,
            command: command.to_string(),
            workload: workload.to_string(),
            scheme: scheme.to_string(),
            speedup: 1.0,
            refresh_multiplier: 1.0,
            cost_backend: "cycle-accurate".to_string(),
            ber_scale: 1.0,
            weak_column_scale: 1.0,
            ..Default::default()
        }
    }

    /// Records a phase, merging into an existing phase of the same name.
    ///
    /// Repeated passes over the same phase (calibration loops, retries)
    /// accumulate into one row instead of producing a misleading list of
    /// duplicates; a genuinely new phase appends in execution order.
    pub fn push_phase(&mut self, name: &str, wall_ns: f64, sim_cycles: u64, sim_ns: f64) {
        if let Some(existing) = self.phases.iter_mut().find(|p| p.name == name) {
            existing.wall_ns += wall_ns;
            existing.sim_cycles += sim_cycles;
            existing.sim_ns += sim_ns;
        } else {
            self.phases.push(PhaseSpan { name: name.to_string(), wall_ns, sim_cycles, sim_ns });
        }
    }

    /// Sum of per-phase simulated cycles.
    pub fn phase_sim_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.sim_cycles).sum()
    }

    /// Sum of per-phase host wall time, nanoseconds.
    pub fn phase_wall_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.wall_ns).sum()
    }

    /// `true` when the per-phase cycle totals account exactly for the
    /// headline cycle count.
    pub fn is_consistent(&self) -> bool {
        self.phase_sim_cycles() == self.sim_cycles
    }

    /// Serializes the report to compact JSON.
    pub fn to_json(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(p.name.clone())),
                    ("wall_ns".to_string(), Value::Num(p.wall_ns)),
                    ("sim_cycles".to_string(), Value::Int(p.sim_cycles as i64)),
                    ("sim_ns".to_string(), Value::Num(p.sim_ns)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema_version".to_string(), Value::Int(self.schema_version as i64)),
            ("command".to_string(), Value::Str(self.command.clone())),
            ("workload".to_string(), Value::Str(self.workload.clone())),
            ("scheme".to_string(), Value::Str(self.scheme.clone())),
            ("batch".to_string(), Value::Int(self.batch as i64)),
            ("candidates".to_string(), Value::Int(self.candidates as i64)),
            ("headline_ns".to_string(), Value::Num(self.headline_ns)),
            ("sim_cycles".to_string(), Value::Int(self.sim_cycles as i64)),
            ("threads".to_string(), Value::Int(self.threads as i64)),
            ("speedup".to_string(), Value::Num(self.speedup)),
            ("protocol_violations".to_string(), Value::Int(self.protocol_violations as i64)),
            ("slo_attainment".to_string(), Value::Num(self.slo_attainment)),
            ("p99_ns".to_string(), Value::Num(self.p99_ns)),
            ("shed".to_string(), Value::Int(self.shed as i64)),
            ("degrade_transitions".to_string(), Value::Int(self.degrade_transitions as i64)),
            ("ber".to_string(), Value::Num(self.ber)),
            ("refresh_multiplier".to_string(), Value::Num(self.refresh_multiplier)),
            ("ecc_corrected".to_string(), Value::Int(self.ecc_corrected as i64)),
            ("ecc_uncorrected".to_string(), Value::Int(self.ecc_uncorrected as i64)),
            ("quality_degradation_pct".to_string(), Value::Num(self.quality_degradation_pct)),
            ("energy_nj".to_string(), Value::Num(self.energy_nj)),
            (
                "breakdown".to_string(),
                Value::Arr(
                    self.breakdown
                        .iter()
                        .map(|b| {
                            Value::Obj(vec![
                                ("path".to_string(), Value::Str(b.path.clone())),
                                ("cycles".to_string(), Value::Int(b.cycles as i64)),
                                ("nj".to_string(), Value::Num(b.nj)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cost_backend".to_string(), Value::Str(self.cost_backend.clone())),
            ("fit_anchors".to_string(), Value::Int(self.fit_anchors as i64)),
            ("audit_points".to_string(), Value::Int(self.audit_points as i64)),
            ("audit_max_rel_err".to_string(), Value::Num(self.audit_max_rel_err)),
            ("nodes".to_string(), Value::Int(self.nodes as i64)),
            ("placement".to_string(), Value::Str(self.placement.clone())),
            ("hot_shard_replicas".to_string(), Value::Int(self.hot_shard_replicas as i64)),
            ("network_share".to_string(), Value::Num(self.network_share)),
            (
                "tenants".to_string(),
                Value::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Value::Obj(vec![
                                ("name".to_string(), Value::Str(t.name.clone())),
                                ("slo_attainment".to_string(), Value::Num(t.slo_attainment)),
                                ("p99_ns".to_string(), Value::Num(t.p99_ns)),
                                ("shed".to_string(), Value::Int(t.shed as i64)),
                                ("admitted".to_string(), Value::Int(t.admitted as i64)),
                                ("completed".to_string(), Value::Int(t.completed as i64)),
                                (
                                    "degrade_transitions".to_string(),
                                    Value::Int(t.degrade_transitions as i64),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("space_size".to_string(), Value::Int(self.space_size as i64)),
            ("evaluated_designs".to_string(), Value::Int(self.evaluated_designs as i64)),
            ("audited_designs".to_string(), Value::Int(self.audited_designs as i64)),
            ("frontier_points".to_string(), Value::Int(self.frontier_points as i64)),
            ("dominated_points".to_string(), Value::Int(self.dominated_points as i64)),
            ("max_area_mm2".to_string(), Value::Num(self.max_area_mm2)),
            ("max_power_mw".to_string(), Value::Num(self.max_power_mw)),
            ("offload_nmp".to_string(), Value::Int(self.offload_nmp as i64)),
            ("offload_cpu".to_string(), Value::Int(self.offload_cpu as i64)),
            ("memory_tech".to_string(), Value::Str(self.memory_tech.clone())),
            ("ber_scale".to_string(), Value::Num(self.ber_scale)),
            ("retention_base".to_string(), Value::Num(self.retention_base)),
            ("weak_column_scale".to_string(), Value::Num(self.weak_column_scale)),
            ("phases".to_string(), Value::Arr(phases)),
            ("metrics".to_string(), self.metrics.to_json_value()),
            (
                "notes".to_string(),
                Value::Arr(self.notes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ])
        .to_json()
    }

    /// Parses a report produced by [`RunReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description when the text is not valid JSON or a field is
    /// missing or mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name).and_then(Value::as_u64).ok_or_else(|| format!("missing field '{name}'"))
        };
        let f64_field = |name: &str| -> Result<f64, String> {
            v.get(name).and_then(Value::as_f64).ok_or_else(|| format!("missing field '{name}'"))
        };
        let mut phases = Vec::new();
        for p in v
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing field 'phases'".to_string())?
        {
            phases.push(PhaseSpan {
                name: p
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "phase missing name".to_string())?
                    .to_string(),
                wall_ns: p
                    .get("wall_ns")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "phase missing wall_ns".to_string())?,
                sim_cycles: p
                    .get("sim_cycles")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| "phase missing sim_cycles".to_string())?,
                sim_ns: p
                    .get("sim_ns")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "phase missing sim_ns".to_string())?,
            });
        }
        let mut breakdown = Vec::new();
        if let Some(rows) = v.get("breakdown").and_then(Value::as_arr) {
            for b in rows {
                breakdown.push(BreakdownRow {
                    path: b
                        .get("path")
                        .and_then(Value::as_str)
                        .ok_or_else(|| "breakdown row missing path".to_string())?
                        .to_string(),
                    cycles: b
                        .get("cycles")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "breakdown row missing cycles".to_string())?,
                    nj: b
                        .get("nj")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "breakdown row missing nj".to_string())?,
                });
            }
        }
        // v8 fleet rows; default when reading an older report.
        let mut tenants = Vec::new();
        if let Some(rows) = v.get("tenants").and_then(Value::as_arr) {
            for t in rows {
                tenants.push(TenantRow {
                    name: t
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or_else(|| "tenant row missing name".to_string())?
                        .to_string(),
                    slo_attainment: t
                        .get("slo_attainment")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "tenant row missing slo_attainment".to_string())?,
                    p99_ns: t
                        .get("p99_ns")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "tenant row missing p99_ns".to_string())?,
                    shed: t
                        .get("shed")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "tenant row missing shed".to_string())?,
                    admitted: t
                        .get("admitted")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "tenant row missing admitted".to_string())?,
                    completed: t
                        .get("completed")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "tenant row missing completed".to_string())?,
                    degrade_transitions: t
                        .get("degrade_transitions")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "tenant row missing degrade_transitions".to_string())?,
                });
            }
        }
        let metrics = MetricsReport::from_json_value(
            v.get("metrics").ok_or_else(|| "missing field 'metrics'".to_string())?,
        )?;
        let mut notes = Vec::new();
        for n in v
            .get("notes")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing field 'notes'".to_string())?
        {
            notes.push(
                n.as_str().ok_or_else(|| "note must be a string".to_string())?.to_string(),
            );
        }
        Ok(RunReport {
            schema_version: u64_field("schema_version")? as u32,
            command: str_field("command")?,
            workload: str_field("workload")?,
            scheme: str_field("scheme")?,
            batch: u64_field("batch")?,
            candidates: u64_field("candidates")?,
            headline_ns: f64_field("headline_ns")?,
            sim_cycles: u64_field("sim_cycles")?,
            // v2/v3 fields; default when reading an older report.
            threads: v.get("threads").and_then(Value::as_u64).unwrap_or(0),
            speedup: v.get("speedup").and_then(Value::as_f64).unwrap_or(1.0),
            protocol_violations: v
                .get("protocol_violations")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            // v4 serving fields; default when reading an older report.
            slo_attainment: v.get("slo_attainment").and_then(Value::as_f64).unwrap_or(0.0),
            p99_ns: v.get("p99_ns").and_then(Value::as_f64).unwrap_or(0.0),
            shed: v.get("shed").and_then(Value::as_u64).unwrap_or(0),
            degrade_transitions: v
                .get("degrade_transitions")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            // v5 fault fields; default when reading an older report.
            ber: v.get("ber").and_then(Value::as_f64).unwrap_or(0.0),
            refresh_multiplier: v
                .get("refresh_multiplier")
                .and_then(Value::as_f64)
                .unwrap_or(1.0),
            ecc_corrected: v.get("ecc_corrected").and_then(Value::as_u64).unwrap_or(0),
            ecc_uncorrected: v.get("ecc_uncorrected").and_then(Value::as_u64).unwrap_or(0),
            quality_degradation_pct: v
                .get("quality_degradation_pct")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            // v6 attribution fields; default when reading an older report.
            energy_nj: v.get("energy_nj").and_then(Value::as_f64).unwrap_or(0.0),
            breakdown,
            // v7 surrogate fields; default when reading an older report.
            cost_backend: v
                .get("cost_backend")
                .and_then(Value::as_str)
                .unwrap_or("cycle-accurate")
                .to_string(),
            fit_anchors: v.get("fit_anchors").and_then(Value::as_u64).unwrap_or(0),
            audit_points: v.get("audit_points").and_then(Value::as_u64).unwrap_or(0),
            audit_max_rel_err: v
                .get("audit_max_rel_err")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            // v8 fleet fields; default when reading an older report.
            nodes: v.get("nodes").and_then(Value::as_u64).unwrap_or(0),
            placement: v
                .get("placement")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            hot_shard_replicas: v
                .get("hot_shard_replicas")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            network_share: v.get("network_share").and_then(Value::as_f64).unwrap_or(0.0),
            tenants,
            // v9 tune fields; default when reading an older report.
            space_size: v.get("space_size").and_then(Value::as_u64).unwrap_or(0),
            evaluated_designs: v
                .get("evaluated_designs")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            audited_designs: v.get("audited_designs").and_then(Value::as_u64).unwrap_or(0),
            frontier_points: v.get("frontier_points").and_then(Value::as_u64).unwrap_or(0),
            dominated_points: v.get("dominated_points").and_then(Value::as_u64).unwrap_or(0),
            max_area_mm2: v.get("max_area_mm2").and_then(Value::as_f64).unwrap_or(0.0),
            max_power_mw: v.get("max_power_mw").and_then(Value::as_f64).unwrap_or(0.0),
            offload_nmp: v.get("offload_nmp").and_then(Value::as_u64).unwrap_or(0),
            offload_cpu: v.get("offload_cpu").and_then(Value::as_u64).unwrap_or(0),
            // v10 memory-technology fields; default when reading an older
            // report (pre-preset reports always simulated the DDR4
            // baseline profile).
            memory_tech: v
                .get("memory_tech")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            ber_scale: v.get("ber_scale").and_then(Value::as_f64).unwrap_or(1.0),
            retention_base: v.get("retention_base").and_then(Value::as_f64).unwrap_or(0.0),
            weak_column_scale: v
                .get("weak_column_scale")
                .and_then(Value::as_f64)
                .unwrap_or(1.0),
            phases,
            metrics,
            notes,
        })
    }
}

/// A wall-clock stopwatch for phase-scoped timing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { start: std::time::Instant::now() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e9
    }

    /// Elapsed nanoseconds, restarting the watch for the next phase.
    pub fn lap_ns(&mut self) -> f64 {
        let ns = self.elapsed_ns();
        self.start = std::time::Instant::now();
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("simulate", "transformer", "enmc");
        r.batch = 4;
        r.candidates = 128;
        r.headline_ns = 12_345.5;
        r.sim_cycles = 900;
        r.push_phase("synthesize", 5.0e6, 0, 0.0);
        r.push_phase("screen", 1.0e6, 700, 583.1);
        r.push_phase("gather", 3.0e5, 200, 166.6);
        r.notes.push("one rank of 64".to_string());
        let mut reg = crate::metrics::MetricsRegistry::new();
        reg.counter_add("dram.reads", &[("scheme", "enmc")], 512);
        r.metrics = reg.snapshot();
        r
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let r = sample();
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn consistency_checks_cycle_totals() {
        let mut r = sample();
        assert!(r.is_consistent());
        r.sim_cycles += 1;
        assert!(!r.is_consistent());
    }

    #[test]
    fn from_json_rejects_missing_fields() {
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }

    #[test]
    fn v1_reports_parse_with_defaulted_parallel_fields() {
        // A v1 report has no threads/speedup keys.
        let mut r = sample();
        r.schema_version = 1;
        let v1_json = {
            let json = r.to_json();
            json.replace("\"threads\":0,", "").replace("\"speedup\":1,", "")
        };
        assert!(!v1_json.contains("threads"));
        let back = RunReport::from_json(&v1_json).unwrap();
        assert_eq!(back.threads, 0);
        assert_eq!(back.speedup, 1.0);
        assert_eq!(back.phases, r.phases);
    }

    #[test]
    fn v2_reports_parse_with_defaulted_protocol_field() {
        // A v2 report has no protocol_violations key.
        let mut r = sample();
        r.schema_version = 2;
        let v2_json = r.to_json().replace("\"protocol_violations\":0,", "");
        assert!(!v2_json.contains("protocol_violations"));
        let back = RunReport::from_json(&v2_json).unwrap();
        assert_eq!(back.protocol_violations, 0);
        assert_eq!(back.threads, r.threads);
    }

    #[test]
    fn v3_reports_parse_with_defaulted_serving_fields() {
        // A v3 report has none of the v4 serving keys.
        let mut r = sample();
        r.schema_version = 3;
        let v3_json = r
            .to_json()
            .replace("\"slo_attainment\":0,", "")
            .replace("\"p99_ns\":0,", "")
            .replace("\"shed\":0,", "")
            .replace("\"degrade_transitions\":0,", "");
        assert!(!v3_json.contains("slo_attainment"));
        let back = RunReport::from_json(&v3_json).unwrap();
        assert_eq!(back.slo_attainment, 0.0);
        assert_eq!(back.p99_ns, 0.0);
        assert_eq!(back.shed, 0);
        assert_eq!(back.degrade_transitions, 0);
        assert_eq!(back.protocol_violations, r.protocol_violations);
    }

    #[test]
    fn v4_reports_parse_with_defaulted_fault_fields() {
        // A v4 report has none of the v5 fault keys.
        let mut r = sample();
        r.schema_version = 4;
        let v4_json = r
            .to_json()
            .replace("\"ber\":0,", "")
            .replace("\"refresh_multiplier\":1,", "")
            .replace("\"ecc_corrected\":0,", "")
            .replace("\"ecc_uncorrected\":0,", "")
            .replace("\"quality_degradation_pct\":0,", "");
        assert!(!v4_json.contains("refresh_multiplier"));
        let back = RunReport::from_json(&v4_json).unwrap();
        assert_eq!(back.ber, 0.0);
        assert_eq!(back.refresh_multiplier, 1.0);
        assert_eq!(back.ecc_corrected, 0);
        assert_eq!(back.ecc_uncorrected, 0);
        assert_eq!(back.quality_degradation_pct, 0.0);
        assert_eq!(back.slo_attainment, r.slo_attainment);
    }

    #[test]
    fn v5_reports_parse_with_defaulted_attribution_fields() {
        // A v5 report has none of the v6 attribution keys.
        let mut r = sample();
        r.schema_version = 5;
        let v5_json =
            r.to_json().replace("\"energy_nj\":0,", "").replace("\"breakdown\":[],", "");
        assert!(!v5_json.contains("energy_nj"));
        let back = RunReport::from_json(&v5_json).unwrap();
        assert_eq!(back.energy_nj, 0.0);
        assert!(back.breakdown.is_empty());
        assert_eq!(back.ber, r.ber);
    }

    #[test]
    fn v7_reports_parse_with_defaulted_fleet_fields() {
        // A v7 report has none of the v8 fleet keys.
        let mut r = sample();
        r.schema_version = 7;
        let v7_json = r
            .to_json()
            .replace("\"nodes\":0,", "")
            .replace("\"placement\":\"\",", "")
            .replace("\"hot_shard_replicas\":0,", "")
            .replace("\"network_share\":0,", "")
            .replace("\"tenants\":[],", "");
        assert!(!v7_json.contains("hot_shard_replicas"));
        let back = RunReport::from_json(&v7_json).unwrap();
        assert_eq!(back.nodes, 0);
        assert_eq!(back.placement, "");
        assert_eq!(back.hot_shard_replicas, 0);
        assert_eq!(back.network_share, 0.0);
        assert!(back.tenants.is_empty());
        assert_eq!(back.cost_backend, r.cost_backend);
    }

    #[test]
    fn v8_reports_parse_with_defaulted_tune_fields() {
        // A v8 report has none of the v9 tune keys.
        let mut r = sample();
        r.schema_version = 8;
        let v8_json = r
            .to_json()
            .replace("\"space_size\":0,", "")
            .replace("\"evaluated_designs\":0,", "")
            .replace("\"audited_designs\":0,", "")
            .replace("\"frontier_points\":0,", "")
            .replace("\"dominated_points\":0,", "")
            .replace("\"max_area_mm2\":0,", "")
            .replace("\"max_power_mw\":0,", "")
            .replace("\"offload_nmp\":0,", "")
            .replace("\"offload_cpu\":0,", "");
        assert!(!v8_json.contains("frontier_points"));
        let back = RunReport::from_json(&v8_json).unwrap();
        assert_eq!(back.space_size, 0);
        assert_eq!(back.evaluated_designs, 0);
        assert_eq!(back.audited_designs, 0);
        assert_eq!(back.frontier_points, 0);
        assert_eq!(back.dominated_points, 0);
        assert_eq!(back.max_area_mm2, 0.0);
        assert_eq!(back.max_power_mw, 0.0);
        assert_eq!(back.offload_nmp, 0);
        assert_eq!(back.offload_cpu, 0);
        assert_eq!(back.nodes, r.nodes);
    }

    #[test]
    fn v9_reports_parse_with_defaulted_memory_fields() {
        // A v9 report has none of the v10 memory-technology keys.
        let mut r = sample();
        r.schema_version = 9;
        let v9_json = r
            .to_json()
            .replace("\"memory_tech\":\"\",", "")
            .replace("\"ber_scale\":1,", "")
            .replace("\"retention_base\":0,", "")
            .replace("\"weak_column_scale\":1,", "");
        assert!(!v9_json.contains("memory_tech"));
        let back = RunReport::from_json(&v9_json).unwrap();
        assert_eq!(back.memory_tech, "");
        assert_eq!(back.ber_scale, 1.0);
        assert_eq!(back.retention_base, 0.0);
        assert_eq!(back.weak_column_scale, 1.0);
        assert_eq!(back.space_size, r.space_size);
    }

    #[test]
    fn tenant_rows_round_trip() {
        let mut r = sample();
        r.nodes = 4;
        r.placement = "popularity".to_string();
        r.hot_shard_replicas = 2;
        r.network_share = 0.125;
        r.tenants.push(TenantRow {
            name: "t0".to_string(),
            slo_attainment: 0.995,
            p99_ns: 41_000.0,
            shed: 0,
            admitted: 192,
            completed: 192,
            degrade_transitions: 3,
        });
        r.tenants.push(TenantRow {
            name: "t1".to_string(),
            slo_attainment: 0.75,
            p99_ns: 220_000.0,
            shed: 17,
            admitted: 175,
            completed: 175,
            degrade_transitions: 9,
        });
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn breakdown_rows_round_trip() {
        let mut r = sample();
        r.energy_nj = 10.5;
        r.breakdown.push(BreakdownRow {
            path: "energy/dram/access/ch0/act".to_string(),
            cycles: 0,
            nj: 4.2,
        });
        r.breakdown.push(BreakdownRow { path: "cycles/screen".to_string(), cycles: 700, nj: 0.0 });
        let back = RunReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn push_phase_merges_duplicate_names() {
        let mut r = RunReport::new("demo", "lstm", "enmc");
        r.push_phase("calibrate", 10.0, 100, 83.0);
        r.push_phase("screen", 5.0, 50, 41.5);
        r.push_phase("calibrate", 30.0, 200, 166.0);
        assert_eq!(r.phases.len(), 2, "duplicate phase merged, order kept");
        assert_eq!(r.phases[0].name, "calibrate");
        assert_eq!(r.phases[0].wall_ns, 40.0);
        assert_eq!(r.phases[0].sim_cycles, 300);
        assert_eq!(r.phases[0].sim_ns, 249.0);
        assert_eq!(r.phases[1].name, "screen");
        assert_eq!(r.phase_sim_cycles(), 350);
    }

    #[test]
    fn every_documented_schema_version_parses() {
        // Emit the sample report at each historical schema version by
        // stripping exactly the fields that version lacked, per the field
        // history on SCHEMA_VERSION, and assert each still parses.
        const V5_KEYS: [&str; 5] = [
            "\"ber\":0,",
            "\"refresh_multiplier\":1,",
            "\"ecc_corrected\":0,",
            "\"ecc_uncorrected\":0,",
            "\"quality_degradation_pct\":0,",
        ];
        const V6_KEYS: [&str; 2] = ["\"energy_nj\":0,", "\"breakdown\":[],"];
        const V7_KEYS: [&str; 4] = [
            "\"cost_backend\":\"cycle-accurate\",",
            "\"fit_anchors\":0,",
            "\"audit_points\":0,",
            "\"audit_max_rel_err\":0,",
        ];
        const V8_KEYS: [&str; 5] = [
            "\"nodes\":0,",
            "\"placement\":\"\",",
            "\"hot_shard_replicas\":0,",
            "\"network_share\":0,",
            "\"tenants\":[],",
        ];
        const V9_KEYS: [&str; 9] = [
            "\"space_size\":0,",
            "\"evaluated_designs\":0,",
            "\"audited_designs\":0,",
            "\"frontier_points\":0,",
            "\"dominated_points\":0,",
            "\"max_area_mm2\":0,",
            "\"max_power_mw\":0,",
            "\"offload_nmp\":0,",
            "\"offload_cpu\":0,",
        ];
        const V10_KEYS: [&str; 4] = [
            "\"memory_tech\":\"\",",
            "\"ber_scale\":1,",
            "\"retention_base\":0,",
            "\"weak_column_scale\":1,",
        ];
        let strip: [&[&str]; 10] = [
            // v1: no v2/v3/v4/v5/v6/v7/v8/v9 fields.
            &[
                "\"threads\":0,",
                "\"speedup\":1,",
                "\"protocol_violations\":0,",
                "\"slo_attainment\":0,",
                "\"p99_ns\":0,",
                "\"shed\":0,",
                "\"degrade_transitions\":0,",
                V5_KEYS[0],
                V5_KEYS[1],
                V5_KEYS[2],
                V5_KEYS[3],
                V5_KEYS[4],
                V6_KEYS[0],
                V6_KEYS[1],
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v2: no v3/v4/v5/v6/v7/v8/v9 fields.
            &[
                "\"protocol_violations\":0,",
                "\"slo_attainment\":0,",
                "\"p99_ns\":0,",
                "\"shed\":0,",
                "\"degrade_transitions\":0,",
                V5_KEYS[0],
                V5_KEYS[1],
                V5_KEYS[2],
                V5_KEYS[3],
                V5_KEYS[4],
                V6_KEYS[0],
                V6_KEYS[1],
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v3: no v4/v5/v6/v7/v8/v9 fields.
            &[
                "\"slo_attainment\":0,",
                "\"p99_ns\":0,",
                "\"shed\":0,",
                "\"degrade_transitions\":0,",
                V5_KEYS[0],
                V5_KEYS[1],
                V5_KEYS[2],
                V5_KEYS[3],
                V5_KEYS[4],
                V6_KEYS[0],
                V6_KEYS[1],
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v4: no v5/v6/v7/v8/v9 fields.
            &[
                V5_KEYS[0],
                V5_KEYS[1],
                V5_KEYS[2],
                V5_KEYS[3],
                V5_KEYS[4],
                V6_KEYS[0],
                V6_KEYS[1],
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v5: no v6/v7/v8/v9 fields.
            &[
                V6_KEYS[0],
                V6_KEYS[1],
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v6: no v7/v8/v9 fields.
            &[
                V7_KEYS[0],
                V7_KEYS[1],
                V7_KEYS[2],
                V7_KEYS[3],
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v7: no v8/v9 fields.
            &[
                V8_KEYS[0],
                V8_KEYS[1],
                V8_KEYS[2],
                V8_KEYS[3],
                V8_KEYS[4],
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v8: no v9 fields.
            &[
                V9_KEYS[0],
                V9_KEYS[1],
                V9_KEYS[2],
                V9_KEYS[3],
                V9_KEYS[4],
                V9_KEYS[5],
                V9_KEYS[6],
                V9_KEYS[7],
                V9_KEYS[8],
                V10_KEYS[0],
                V10_KEYS[1],
                V10_KEYS[2],
                V10_KEYS[3],
            ],
            // v9: no v10 fields.
            &[V10_KEYS[0], V10_KEYS[1], V10_KEYS[2], V10_KEYS[3]],
            // v10: current — nothing stripped.
            &[],
        ];
        for (i, removals) in strip.iter().enumerate() {
            let version = (i + 1) as u32;
            let mut r = sample();
            r.schema_version = version;
            let mut json = r.to_json();
            for needle in removals.iter() {
                assert!(json.contains(needle), "v{version} sample must carry {needle}");
                json = json.replace(needle, "");
            }
            let back = RunReport::from_json(&json)
                .unwrap_or_else(|e| panic!("v{version} report failed to parse: {e}"));
            assert_eq!(back.schema_version, version);
            assert_eq!(back.phases, r.phases, "v{version} phases survived");
        }
        assert_eq!(strip.len() as u32, SCHEMA_VERSION, "history covers every version");
    }

    #[test]
    fn stopwatch_measures_something() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let lap = sw.lap_ns();
        assert!(lap > 0.0);
        assert!(sw.elapsed_ns() >= 0.0);
    }
}
