//! Cycle-level event tracing: a sink facade, a ring-buffered collector,
//! and a Chrome/Perfetto `trace_event` exporter.
//!
//! Producers (the DRAM controller, the rank-unit pipelines) emit
//! [`TraceEvent`]s into whatever implements [`TraceSink`]. The hot paths
//! hold an `Option<TraceBuffer>`, so a disabled trace costs one branch —
//! no allocation, no formatting, no virtual dispatch.
//!
//! Timestamps are **DRAM-clock cycles**; conversion to wall time happens
//! only at export. [`export_chrome`] produces a JSON document loadable by
//! `chrome://tracing` or <https://ui.perfetto.dev>, and
//! [`validate_chrome`] re-parses such a document and checks the
//! structural invariants the test-suite relies on (monotone timestamps,
//! balanced begin/end pairs per track).

use crate::json::{write_escaped, Value};
use std::collections::VecDeque;

/// Event category for DRAM command-bus activity.
pub const CAT_DRAM: &str = "dram";
/// Event category for NMP pipeline-stage activity.
pub const CAT_PIPELINE: &str = "pipeline";
/// Event category for DDR4 protocol-conformance violations.
pub const CAT_PROTOCOL: &str = "protocol";

/// Track id used for per-phase summary spans.
pub const TID_PHASES: u32 = 999;
/// Track id for the integer (screening) MAC pipeline.
pub const TID_SCREENER: u32 = 1000;
/// Track id for the FP32 (executor) MAC pipeline.
pub const TID_EXECUTOR: u32 = 1001;
/// Track id for the special-function unit.
pub const TID_SFU: u32 = 1002;
/// Track id for instruction decode / buffer-fill issue markers.
pub const TID_DECODE: u32 = 1003;
/// Track id for sampled counter series (queue depth, busy lanes, open
/// rows). Counter events render as their own value graph per name, so a
/// single track id is enough.
pub const TID_COUNTERS: u32 = 1100;

/// What kind of mark an event is (mirrors the Chrome `ph` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Opens a span on its `(pid, tid)` track (`ph: "B"`).
    Begin,
    /// Closes the innermost open span on its track (`ph: "E"`).
    End,
    /// A zero-duration marker (`ph: "i"`).
    Instant,
    /// A sampled counter value (`ph: "C"`); the event's args are the
    /// series values the viewer plots over time.
    Counter,
}

/// One trace event, timestamped in DRAM-clock cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (shown by the viewer; `Begin`/`End` pairs must match).
    pub name: &'static str,
    /// Category (e.g. [`CAT_DRAM`], [`CAT_PIPELINE`]).
    pub category: &'static str,
    /// The mark kind.
    pub phase: SpanPhase,
    /// Timestamp in DRAM-clock cycles.
    pub ts: u64,
    /// Process id (by convention: the DRAM channel / unit index).
    pub pid: u32,
    /// Thread id (by convention: a bank or pipeline track).
    pub tid: u32,
    /// Numeric key/value annotations.
    pub args: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// A span-opening event.
    pub fn begin(name: &'static str, category: &'static str, ts: u64, pid: u32, tid: u32) -> Self {
        TraceEvent { name, category, phase: SpanPhase::Begin, ts, pid, tid, args: Vec::new() }
    }

    /// A span-closing event.
    pub fn end(name: &'static str, category: &'static str, ts: u64, pid: u32, tid: u32) -> Self {
        TraceEvent { name, category, phase: SpanPhase::End, ts, pid, tid, args: Vec::new() }
    }

    /// A zero-duration marker.
    pub fn instant(
        name: &'static str,
        category: &'static str,
        ts: u64,
        pid: u32,
        tid: u32,
    ) -> Self {
        TraceEvent { name, category, phase: SpanPhase::Instant, ts, pid, tid, args: Vec::new() }
    }

    /// A sampled counter value; attach the plotted series via
    /// [`TraceEvent::with_arg`] (arg key = series name, value = sample).
    pub fn counter(
        name: &'static str,
        category: &'static str,
        ts: u64,
        pid: u32,
        tid: u32,
    ) -> Self {
        TraceEvent { name, category, phase: SpanPhase::Counter, ts, pid, tid, args: Vec::new() }
    }

    /// Attaches a numeric annotation (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: u64) -> Self {
        self.args.push((key, value));
        self
    }
}

/// Destination for trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// `true` if records will be kept; producers may skip event
    /// construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything (the zero-overhead default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A bounded ring buffer of trace events.
///
/// When full, the oldest events are evicted and counted in
/// [`TraceBuffer::dropped`]. Use [`TraceBuffer::unbounded`] when a
/// complete trace matters more than memory (the CLI exporter does).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceBuffer { events: VecDeque::new(), capacity: capacity.max(1), dropped: 0 }
    }

    /// A buffer that never evicts.
    pub fn unbounded() -> Self {
        TraceBuffer { events: VecDeque::new(), capacity: usize::MAX, dropped: 0 }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events in record order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Removes and returns all held events in record order.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.events.drain(..).collect()
    }

    /// Consumes the buffer into its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Serializes `events` as a Chrome `trace_event` JSON document.
///
/// Events are stably sorted by timestamp (record order breaks ties, which
/// keeps same-cycle `End`-before-`Begin` sequences valid). `ns_per_cycle`
/// converts cycle timestamps to the microsecond `ts` field the format
/// requires.
pub fn export_chrome(events: &[TraceEvent], ns_per_cycle: f64) -> String {
    let mut order: Vec<&TraceEvent> = events.iter().collect();
    order.sort_by_key(|e| e.ts);
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_escaped(&mut out, e.name);
        out.push_str(",\"cat\":");
        write_escaped(&mut out, e.category);
        let ph = match e.phase {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
            SpanPhase::Counter => "C",
        };
        out.push_str(&format!(",\"ph\":\"{ph}\""));
        if e.phase == SpanPhase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        let us = e.ts as f64 * ns_per_cycle / 1000.0;
        out.push_str(&format!(",\"ts\":{us},\"pid\":{},\"tid\":{}", e.pid, e.tid));
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (j, (k, v)) in e.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_escaped(&mut out, k);
                out.push_str(&format!(":{v}"));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Summary returned by [`validate_chrome`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events in the document.
    pub events: usize,
    /// Span-opening events.
    pub begins: usize,
    /// Span-closing events.
    pub ends: usize,
    /// Instant markers.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
    /// Distinct categories observed, sorted.
    pub categories: Vec<String>,
}

impl ChromeSummary {
    /// `true` if `category` appeared in the trace.
    pub fn has_category(&self, category: &str) -> bool {
        self.categories.iter().any(|c| c == category)
    }
}

/// Parses a Chrome `trace_event` document and checks its structural
/// invariants: every event carries `name`/`ph`/`ts`/`pid`/`tid`,
/// timestamps are non-decreasing in document order, and on every
/// `(pid, tid)` track the `B`/`E` events form balanced, well-nested pairs
/// with matching names.
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn validate_chrome(text: &str) -> Result<ChromeSummary, String> {
    let doc = Value::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut summary = ChromeSummary { events: events.len(), ..Default::default() };
    let mut categories: Vec<String> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: std::collections::HashMap<(u64, u64), Vec<String>> =
        std::collections::HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ts < last_ts {
            return Err(format!("event {i}: timestamp {ts} precedes {last_ts}"));
        }
        last_ts = ts;
        if let Some(cat) = e.get("cat").and_then(Value::as_str) {
            if !categories.iter().any(|c| c == cat) {
                categories.push(cat.to_string());
            }
        }
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => {
                summary.begins += 1;
                stack.push(name.to_string());
            }
            "E" => {
                summary.ends += 1;
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(format!(
                            "event {i}: end '{name}' closes span '{open}' on {pid}/{tid}"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: end '{name}' with no open span on {pid}/{tid}"
                        ));
                    }
                }
            }
            "i" | "I" => summary.instants += 1,
            "C" => {
                summary.counters += 1;
                if e.get("args").and_then(Value::as_obj).is_none_or(|a| a.is_empty()) {
                    return Err(format!("event {i}: counter '{name}' carries no args"));
                }
            }
            other => return Err(format!("event {i}: unsupported ph '{other}'")),
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("span '{open}' left open on {pid}/{tid}"));
        }
    }
    categories.sort();
    summary.categories = categories;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut buf = TraceBuffer::new(2);
        buf.record(TraceEvent::instant("a", CAT_DRAM, 0, 0, 0));
        buf.record(TraceEvent::instant("b", CAT_DRAM, 1, 0, 0));
        buf.record(TraceEvent::instant("c", CAT_DRAM, 2, 0, 0));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let names: Vec<&str> = buf.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent::instant("x", CAT_DRAM, 0, 0, 0));
    }

    #[test]
    fn export_round_trips_through_validation() {
        let events = vec![
            TraceEvent::begin("screen_tile", CAT_PIPELINE, 0, 0, TID_SCREENER)
                .with_arg("tile", 0),
            TraceEvent::instant("ACT", CAT_DRAM, 1, 0, 3).with_arg("row", 17),
            TraceEvent::end("screen_tile", CAT_PIPELINE, 5, 0, TID_SCREENER),
        ];
        let json = export_chrome(&events, 0.833);
        let summary = validate_chrome(&json).expect("valid trace");
        assert_eq!(summary.events, 3);
        assert_eq!(summary.begins, 1);
        assert_eq!(summary.ends, 1);
        assert_eq!(summary.instants, 1);
        assert!(summary.has_category(CAT_DRAM));
        assert!(summary.has_category(CAT_PIPELINE));
    }

    #[test]
    fn export_sorts_events_stably() {
        // End recorded before a same-cycle Begin must stay before it.
        let events = vec![
            TraceEvent::begin("s", CAT_PIPELINE, 0, 0, 1),
            TraceEvent::end("s", CAT_PIPELINE, 4, 0, 1),
            TraceEvent::begin("s", CAT_PIPELINE, 4, 0, 1),
            TraceEvent::end("s", CAT_PIPELINE, 9, 0, 1),
        ];
        let json = export_chrome(&events, 1.0);
        validate_chrome(&json).expect("stable order keeps pairs balanced");
    }

    #[test]
    fn counter_events_round_trip() {
        let events = vec![
            TraceEvent::counter("queue_depth", CAT_DRAM, 0, 0, TID_COUNTERS).with_arg("value", 3),
            TraceEvent::counter("open_rows", CAT_DRAM, 8, 0, TID_COUNTERS).with_arg("value", 1),
            TraceEvent::counter("queue_depth", CAT_DRAM, 16, 0, TID_COUNTERS)
                .with_arg("value", 0),
        ];
        let json = export_chrome(&events, 0.833);
        assert!(json.contains("\"ph\":\"C\""));
        let summary = validate_chrome(&json).expect("valid counter trace");
        assert_eq!(summary.counters, 3);
        assert_eq!(summary.begins, 0);
        assert_eq!(summary.ends, 0);
    }

    #[test]
    fn validation_rejects_counter_without_args() {
        let json = r#"{"traceEvents":[
            {"name":"queue_depth","ph":"C","ts":1,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome(json).is_err());
    }

    #[test]
    fn validation_rejects_unbalanced_spans() {
        let events = vec![TraceEvent::begin("s", CAT_PIPELINE, 0, 0, 1)];
        let json = export_chrome(&events, 1.0);
        assert!(validate_chrome(&json).is_err());
    }

    #[test]
    fn validation_rejects_mismatched_names() {
        let events = vec![
            TraceEvent::begin("a", CAT_PIPELINE, 0, 0, 1),
            TraceEvent::end("b", CAT_PIPELINE, 1, 0, 1),
        ];
        let json = export_chrome(&events, 1.0);
        assert!(validate_chrome(&json).is_err());
    }

    #[test]
    fn validation_rejects_non_monotone_timestamps() {
        let json = r#"{"traceEvents":[
            {"name":"a","ph":"i","ts":5,"pid":0,"tid":0},
            {"name":"b","ph":"i","ts":4,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome(json).is_err());
    }
}
