//! # `enmc-obs` — workspace-wide observability
//!
//! The instrumentation layer every other crate reports through: a
//! simulator only becomes a *system* once its internals are observable
//! without recompiling. This crate is deliberately dependency-free so the
//! lowest layers (the DRAM model, the rank units) can emit into it without
//! dragging anything extra into their build.
//!
//! Three pillars:
//!
//! * **Event tracing** ([`trace`]) — a [`trace::TraceSink`] facade with a
//!   ring-buffered collector ([`trace::TraceBuffer`]) and a
//!   Chrome/Perfetto `trace_event` exporter ([`trace::export_chrome`]).
//!   The DRAM controller emits ACT/PRE/RD/WR/REF command events; the NMP
//!   unit models emit per-stage pipeline spans. A disabled trace costs a
//!   single branch on the hot path.
//! * **Metrics** ([`metrics`]) — typed counters, gauges, and histograms
//!   with canonicalized labels, snapshotted into a serializable
//!   [`metrics::MetricsReport`].
//! * **Run reports** ([`report`]) — phase-scoped wall-clock + simulated
//!   cycle timing rolled into a [`report::RunReport`] with a JSON round
//!   trip, the machine-readable result format shared by the CLI and the
//!   figure/table harness.
//!
//! Serialization uses the built-in [`json`] codec, so none of this
//! requires external crates; enabling the `serde` feature additionally
//! derives `Serialize`/`Deserialize` on the report and metrics types.
//!
//! # Conventions
//!
//! Trace timestamps are **DRAM-clock cycles**; wall-time conversion
//! happens once, at export. `pid` identifies a DRAM channel or unit,
//! `tid` a bank (DRAM command events) or a pipeline track
//! ([`trace::TID_SCREENER`], [`trace::TID_EXECUTOR`], [`trace::TID_SFU`],
//! [`trace::TID_PHASES`]). Metric names are dot-separated
//! (`dram.reads`, `unit.screen_bytes`) with labels for dimensions that
//! fan out (channel, scheme, workload).

pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

pub use json::Value;
pub use metrics::{MetricsRegistry, MetricsReport};
pub use report::{BreakdownRow, PhaseSpan, RunReport, Stopwatch};
pub use trace::{
    export_chrome, validate_chrome, ChromeSummary, NullSink, SpanPhase, TraceBuffer, TraceEvent,
    TraceSink,
};
