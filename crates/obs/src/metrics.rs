//! A unified metrics registry: typed counters, gauges, and histograms
//! with labels, snapshotted into a serializable [`MetricsReport`].
//!
//! Producers register samples under a metric name plus a label set
//! (`("channel", "0")`-style pairs); labels are canonicalized by sorting,
//! so `[("a","1"),("b","2")]` and `[("b","2"),("a","1")]` address the same
//! series. A [`MetricsRegistry`] is cheap to create, mergeable, and turns
//! into a [`MetricsReport`] — plain data with a JSON round trip — via
//! [`MetricsRegistry::snapshot`].
//!
//! # Example
//!
//! ```
//! use enmc_obs::metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.counter_add("dram.reads", &[("channel", "0")], 128);
//! reg.gauge_set("dram.row_hit_rate", &[("channel", "0")], 0.93);
//! reg.observe("dram.request_latency_cycles", &[], 37.0);
//! let report = reg.snapshot();
//! assert_eq!(report.counters.len(), 1);
//! assert_eq!(report.counters[0].value, 128);
//! ```

use crate::json::Value;
use std::collections::BTreeMap;

/// Canonical identity of one metric series: name + sorted labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention (`dram.reads`).
    pub name: String,
    /// Label pairs, sorted by key then value.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, canonicalizing the label order.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

/// A histogram with explicit upper bucket bounds plus an overflow bucket.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+inf` bucket
    /// follows.
    pub bounds: Vec<f64>,
    /// Observation counts per bucket (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Histogram {
    /// An empty histogram over `bounds` (must be ascending).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Power-of-two bounds `1, 2, 4, … 2^(n-1)` — a sensible default for
    /// cycle counts and byte sizes.
    pub fn exponential(n: usize) -> Self {
        let bounds: Vec<f64> = (0..n as u32).map(|i| (1u64 << i.min(62)) as f64).collect();
        Histogram::with_bounds(&bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`).
    ///
    /// Returns the inclusive upper bound of the bucket containing the
    /// quantile rank — a conservative (never-understating) estimate whose
    /// error is bounded by the bucket width. Observations that landed in
    /// the overflow bucket report the last explicit bound; an empty
    /// histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based, in bucket order.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let idx = i.min(self.bounds.len() - 1);
                return self.bounds[idx];
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Merges another histogram with identical bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match to merge");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// One counter series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Last set value.
    pub value: f64,
}

/// One histogram series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The histogram state.
    pub histogram: Histogram,
}

/// An immutable snapshot of a [`MetricsRegistry`], ordered by metric key.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsReport {
    /// Counter series.
    pub counters: Vec<CounterSample>,
    /// Gauge series.
    pub gauges: Vec<GaugeSample>,
    /// Histogram series.
    pub histograms: Vec<HistogramSample>,
}

fn labels_to_json(labels: &[(String, String)]) -> Value {
    Value::Obj(
        labels.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
    )
}

fn labels_from_json(v: &Value) -> Result<Vec<(String, String)>, String> {
    let pairs = v.as_obj().ok_or_else(|| "labels must be an object".to_string())?;
    let mut out = Vec::with_capacity(pairs.len());
    for (k, v) in pairs {
        let v = v.as_str().ok_or_else(|| format!("label '{k}' must be a string"))?;
        out.push((k.clone(), v.to_string()));
    }
    Ok(out)
}

impl MetricsReport {
    /// The value of a counter series (0 when absent).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let key = MetricKey::new(name, labels);
        self.counters
            .iter()
            .find(|c| c.name == key.name && c.labels == key.labels)
            .map_or(0, |c| c.value)
    }

    /// The value of a gauge series, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges
            .iter()
            .find(|g| g.name == key.name && g.labels == key.labels)
            .map(|g| g.value)
    }

    /// Serializes the report as a JSON value tree.
    pub fn to_json_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(c.name.clone())),
                    ("labels".to_string(), labels_to_json(&c.labels)),
                    ("value".to_string(), Value::Int(c.value as i64)),
                ])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|g| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(g.name.clone())),
                    ("labels".to_string(), labels_to_json(&g.labels)),
                    ("value".to_string(), Value::Num(g.value)),
                ])
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Value::Obj(vec![
                    ("name".to_string(), Value::Str(h.name.clone())),
                    ("labels".to_string(), labels_to_json(&h.labels)),
                    (
                        "bounds".to_string(),
                        Value::Arr(h.histogram.bounds.iter().map(|b| Value::Num(*b)).collect()),
                    ),
                    (
                        "counts".to_string(),
                        Value::Arr(
                            h.histogram.counts.iter().map(|c| Value::Int(*c as i64)).collect(),
                        ),
                    ),
                    ("count".to_string(), Value::Int(h.histogram.count as i64)),
                    ("sum".to_string(), Value::Num(h.histogram.sum)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("counters".to_string(), Value::Arr(counters)),
            ("gauges".to_string(), Value::Arr(gauges)),
            ("histograms".to_string(), Value::Arr(histograms)),
        ])
    }

    /// Reconstructs a report from [`MetricsReport::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// Returns a description when a field is missing or mistyped.
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        let mut report = MetricsReport::default();
        let counters = v
            .get("counters")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing counters".to_string())?;
        for c in counters {
            report.counters.push(CounterSample {
                name: c
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "counter missing name".to_string())?
                    .to_string(),
                labels: labels_from_json(
                    c.get("labels").ok_or_else(|| "counter missing labels".to_string())?,
                )?,
                value: c
                    .get("value")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| "counter missing value".to_string())?,
            });
        }
        let gauges = v
            .get("gauges")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing gauges".to_string())?;
        for g in gauges {
            report.gauges.push(GaugeSample {
                name: g
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "gauge missing name".to_string())?
                    .to_string(),
                labels: labels_from_json(
                    g.get("labels").ok_or_else(|| "gauge missing labels".to_string())?,
                )?,
                value: g
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| "gauge missing value".to_string())?,
            });
        }
        let histograms = v
            .get("histograms")
            .and_then(Value::as_arr)
            .ok_or_else(|| "missing histograms".to_string())?;
        for h in histograms {
            let bounds: Vec<f64> = h
                .get("bounds")
                .and_then(Value::as_arr)
                .ok_or_else(|| "histogram missing bounds".to_string())?
                .iter()
                .map(|b| b.as_f64().ok_or_else(|| "histogram bound must be numeric".to_string()))
                .collect::<Result<_, _>>()?;
            let counts: Vec<u64> = h
                .get("counts")
                .and_then(Value::as_arr)
                .ok_or_else(|| "histogram missing counts".to_string())?
                .iter()
                .map(|c| c.as_u64().ok_or_else(|| "histogram count must be integer".to_string()))
                .collect::<Result<_, _>>()?;
            if counts.len() != bounds.len() + 1 {
                return Err("histogram counts/bounds length mismatch".to_string());
            }
            report.histograms.push(HistogramSample {
                name: h
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| "histogram missing name".to_string())?
                    .to_string(),
                labels: labels_from_json(
                    h.get("labels").ok_or_else(|| "histogram missing labels".to_string())?,
                )?,
                histogram: Histogram {
                    bounds,
                    counts,
                    count: h
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| "histogram missing count".to_string())?,
                    sum: h
                        .get("sum")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "histogram missing sum".to_string())?,
                },
            });
        }
        Ok(report)
    }
}

/// The mutable registry producers write into.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter series, creating it at zero if needed.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(MetricKey::new(name, labels)).or_insert(0) += delta;
    }

    /// Increments a counter series by one.
    pub fn counter_inc(&mut self, name: &str, labels: &[(&str, &str)]) {
        self.counter_add(name, labels, 1);
    }

    /// Current value of a counter series (0 when absent).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&MetricKey::new(name, labels)).copied().unwrap_or(0)
    }

    /// Sets a gauge series.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(MetricKey::new(name, labels), value);
    }

    /// Records `value` into a histogram series with the default
    /// power-of-two buckets.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram::exponential(24))
            .observe(value);
    }

    /// Records `value` into a histogram series with explicit bounds (used
    /// on first touch; later observations reuse the existing buckets).
    pub fn observe_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        self.histograms
            .entry(MetricKey::new(name, labels))
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .observe(value);
    }

    /// Folds another registry into this one: counters add, gauges take the
    /// other's value, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => mine.merge(h),
                Some(_) | None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Number of live series across all kinds.
    pub fn series(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Snapshots the registry into plain ordered data.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| CounterSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: *v,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| GaugeSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    value: *v,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| HistogramSample {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    histogram: h.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.quantile(0.99), 0.0); // empty
        for v in [0.5, 1.5, 1.5, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), 1.0); // first occupied bucket
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.75), 2.0);
        assert_eq!(h.quantile(1.0), 4.0);
        // Overflow observations clamp to the last explicit bound.
        h.observe(100.0);
        assert_eq!(h.quantile(1.0), 8.0);
    }

    #[test]
    fn label_order_is_canonicalized() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("x", &[("a", "1"), ("b", "2")], 3);
        reg.counter_add("x", &[("b", "2"), ("a", "1")], 4);
        assert_eq!(reg.counter_value("x", &[("a", "1"), ("b", "2")]), 7);
        assert_eq!(reg.snapshot().counters.len(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let mut reg = MetricsRegistry::new();
        reg.counter_inc("reads", &[("channel", "0")]);
        reg.counter_inc("reads", &[("channel", "1")]);
        reg.counter_inc("reads", &[]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 3);
        assert_eq!(snap.counter("reads", &[("channel", "0")]), 1);
        assert_eq!(snap.counter("reads", &[("channel", "7")]), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("util", &[], 0.2);
        reg.gauge_set("util", &[], 0.9);
        assert_eq!(reg.snapshot().gauge("util", &[]), Some(0.9));
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![1, 1, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 138.875).abs() < 1e-9);
    }

    #[test]
    fn registry_merge_sums_counters() {
        let mut a = MetricsRegistry::new();
        a.counter_add("n", &[], 2);
        a.observe("lat", &[], 3.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("n", &[], 5);
        b.observe("lat", &[], 9.0);
        a.merge(&b);
        assert_eq!(a.counter_value("n", &[]), 7);
        let snap = a.snapshot();
        assert_eq!(snap.histograms[0].histogram.count, 2);
    }

    #[test]
    fn report_json_round_trip() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("dram.reads", &[("channel", "0")], 42);
        reg.gauge_set("bus_util", &[], 0.75);
        reg.observe_with("latency", &[], &[8.0, 64.0], 17.0);
        let report = reg.snapshot();
        let v = report.to_json_value();
        let text = v.to_json();
        let parsed = crate::json::Value::parse(&text).unwrap();
        let back = MetricsReport::from_json_value(&parsed).unwrap();
        assert_eq!(back, report);
    }
}
