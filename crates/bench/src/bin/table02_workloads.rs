//! Regenerates paper Table 2: evaluated models and datasets.

use enmc_bench::report::Reporter;
use enmc_bench::table::Table;
use enmc_model::workloads::{TaskKind, WorkloadId};

fn main() {
    println!("Table 2: Evaluated models and datasets\n");
    let mut t = Table::new(&["Abbr.", "Task", "Categories", "Hidden", "Classifier bytes"]);
    for id in WorkloadId::table2().iter().chain(WorkloadId::scaling().iter()) {
        let w = id.workload();
        let task = match w.task {
            TaskKind::LanguageModeling => "Language Modeling",
            TaskKind::Translation => "Translation",
            TaskKind::Recommendation => "Multi-label Classification",
        };
        t.row_owned(vec![
            w.abbr.to_string(),
            task.to_string(),
            w.categories.to_string(),
            w.hidden.to_string(),
            enmc_bench::table::fmt_bytes(w.classifier_bytes()),
        ]);
    }
    t.print();
    let mut rep = Reporter::from_env("table02_workloads");
    rep.table("workloads", &t);
    rep.finish();
}
