//! Regenerates paper Fig. 13: speedup of CPU+AS, NDA, Chameleon,
//! TensorDIMM and ENMC over the vanilla (full-classification) CPU, for the
//! four Table 2 workloads at batch sizes 1, 2 and 4.
//!
//! All NMP schemes run the approximate screening algorithm (as in the
//! paper); the CPU normalization baseline runs full classification.

use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::{candidate_fraction, par_rows, sim_config};
use enmc_bench::table::{fmt_speedup, Table};
use enmc_model::workloads::WorkloadId;
use enmc_tensor::stats::geometric_mean;

fn main() {
    let sys = SystemModel::table3();
    println!("Figure 13: performance normalized to the full-classification CPU\n");

    let mut per_scheme: Vec<(String, Vec<f64>)> = vec![
        ("CPU+AS".into(), Vec::new()),
        ("NDA".into(), Vec::new()),
        ("Chameleon".into(), Vec::new()),
        ("TensorDIMM".into(), Vec::new()),
        ("ENMC".into(), Vec::new()),
    ];

    let mut t = Table::new(&[
        "Workload", "Batch", "CPU+AS", "NDA", "Chameleon", "TensorDIMM", "ENMC",
    ]);
    let cfg = sim_config();
    let points: Vec<(WorkloadId, usize)> = WorkloadId::table2()
        .iter()
        .flat_map(|&id| [1usize, 2, 4].map(|batch| (id, batch)))
        .collect();
    let mut bench = BenchEmitter::from_env("fig13_performance");
    // Every (workload, batch) point simulates independently; shard them
    // across the bench workers. Rows come back in sweep order.
    let rows = bench.timed("harness/sweep_ns", || par_rows(&cfg, points, |&(id, batch)| {
        let w = id.workload();
        let job = ClassificationJob {
            categories: w.categories,
            hidden: w.hidden,
            reduced: (w.hidden / 4).max(1),
            batch,
            candidates: ((w.categories as f64) * candidate_fraction(id)).round() as usize,
        };
        let cpu_full = sys.run(&job, Scheme::CpuFull);
        let speedups: Vec<f64> = sys
            .run_figure13_schemes(&job)
            .iter()
            .map(|r| r.speedup_over(&cpu_full))
            .collect();
        (w.abbr, batch, speedups)
    }));
    for (abbr, batch, speedups) in rows {
        let mut cells = vec![abbr.to_string(), batch.to_string()];
        // The last scheme column is ENMC; its per-point speedup is a pure
        // function of simulated cycles, so it gates at zero tolerance.
        if let Some(enmc) = speedups.last() {
            bench.det(&format!("speedup/{abbr}/b{batch}/enmc"), *enmc);
        }
        for (i, s) in speedups.into_iter().enumerate() {
            per_scheme[i].1.push(s);
            cells.push(fmt_speedup(s));
        }
        t.row_owned(cells);
    }
    t.print();
    let mut rep = Reporter::from_env("fig13_performance");
    rep.table("speedups", &t);

    println!("\nGeometric-mean speedups over CPU-full:");
    let mut means = Vec::new();
    for (name, vals) in &per_scheme {
        let g = geometric_mean(vals);
        means.push((name.clone(), g));
        println!("  {name:<12} {}", fmt_speedup(g));
        rep.note(&format!("geomean {name}: {}", fmt_speedup(g)));
        bench.det(&format!("speedup/geomean/{}", name.to_lowercase()), g);
    }
    rep.finish();
    bench.finish();
    let enmc = means.last().expect("five schemes").1;
    println!("\nENMC advantage over baselines:");
    for (name, g) in &means[..means.len() - 1] {
        println!("  vs {name:<12} {}", fmt_speedup(enmc / g));
    }
    println!("\nPaper reference: AS on CPU 7.3x; ENMC 56.5x over CPU;");
    println!("3.5x / 5.6x / 2.7x over NDA / Chameleon / TensorDIMM.");
}
