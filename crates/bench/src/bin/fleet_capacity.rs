//! Fleet capacity planning (extension): queries/sec per DIMM at 99% SLO
//! attainment vs model size, for both shard-placement policies, on the
//! synthetic S1M / S10M / S100M datasets.
//!
//! For each dataset and placement policy the harness bisects the offered
//! Poisson rate to the largest load at which at least 99% of *generated*
//! queries complete within the SLO — a shed query counts as a miss, so
//! the admission controller cannot buy attainment by dropping work. The
//! headline is the capacity *ratio*: under a Zipf-skewed shard
//! population, popularity-aware placement (hot head replicated, traffic
//! spread across copies) must beat the popularity-oblivious
//! consistent-hash baseline, whose hot shard pins one node at
//! saturation while the rest idle.
//!
//! Pass `--scale N` to simulate `1/N` of each category space and
//! extrapolate linearly, exactly as `fig15_scalability` does (the
//! pipelines are streaming, so per-query service time is linear in the
//! slice). The capacity search runs on the surrogate cost backend by
//! default (audit lottery at 10%) because a bisection re-calibrates the
//! same service table dozens of times — the textbook surrogate win;
//! `--cost-model cycle-accurate` forces the slow path.

use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::{candidate_fraction, cost_backend, par_rows, sim_config};
use enmc_fleet::{simulate_fleet, FleetConfig, FleetOutcome, PlacementPolicy, TenantConfig};
use enmc_model::workloads::WorkloadId;
use enmc_obs::MetricsRegistry;
use enmc_par::SimConfig;
use enmc_serve::tier::DegradeTier;
use enmc_serve::ArrivalProcess;
use enmc_surrogate::{CostBackend, CostModel};

const NODES: usize = 4;
const SHARDS: usize = 8;
const REPLICAS: usize = 3;
const ZIPF_S: f64 = 1.5;
const LANES: usize = 2;
const BATCH_MAX: usize = 4;
const REQUESTS: usize = 240;
/// The attainment bar: ≥ 99% of generated queries meet the SLO.
const TARGET: f64 = 0.99;
/// Table 3 platform: 8 channels × 8 ranks per node, one 8-rank DIMM per
/// channel — the per-DIMM normalization the capacity curve reports.
const DIMMS_PER_NODE: usize = 8;
const SEED: u64 = 7;
const POLICIES: [PlacementPolicy; 2] =
    [PlacementPolicy::ConsistentHash, PlacementPolicy::PopularityAware];

fn capacity_job(id: WorkloadId, scale: usize) -> ClassificationJob {
    let w = id.workload();
    let categories = (w.categories / scale).max(SHARDS);
    ClassificationJob {
        categories,
        hidden: w.hidden,
        reduced: (w.hidden / 4).max(1),
        batch: 1,
        candidates: ((categories as f64) * candidate_fraction(id)).round().max(1.0) as usize,
    }
}

/// One capacity probe: a single tenant offering a Poisson load of `rate`
/// requests per kilocycle against the fixed Zipf-skewed fleet. The
/// ladder is a single full-quality tier so the only degree of freedom
/// between the two policies is *where shards live* — no degrade ladder
/// to mask a hot node.
fn probe(
    sys: &SystemModel,
    job: &ClassificationJob,
    placement: PlacementPolicy,
    rate: f64,
    slo_cycles: u64,
    cost: &mut CostModel,
) -> FleetOutcome {
    let tiers = vec![DegradeTier { candidates: job.candidates, screen_shift: 0 }];
    let tenant = TenantConfig::new(
        "t0",
        ArrivalProcess::Poisson { rate },
        REQUESTS,
        slo_cycles,
        tiers,
        SEED,
    );
    let cfg = FleetConfig {
        nodes: NODES,
        shards: SHARDS,
        replicas: REPLICAS,
        placement,
        zipf_s: ZIPF_S,
        batch_max: BATCH_MAX,
        linger_cycles: 500,
        lanes: LANES,
        tenants: vec![tenant],
        seed: SEED,
        ..Default::default()
    };
    let mut registry = MetricsRegistry::new();
    simulate_fleet(sys, job, &cfg, &SimConfig::sequential(), &mut registry, cost)
        .expect("audited calibration points must stay within the surrogate bound")
}

/// Fraction of *generated* queries that met the SLO — sheds are misses.
fn strict_attainment(out: &FleetOutcome) -> f64 {
    let generated: u64 = out.tenants.iter().map(|t| t.generated).sum();
    let met: u64 = out.tenants.iter().map(|t| t.slo_met).sum();
    met as f64 / generated.max(1) as f64
}

/// Bisects the offered rate to the capacity edge: the largest rate (to
/// ~0.1% resolution) whose probe still clears [`TARGET`].
fn capacity_search(
    sys: &SystemModel,
    job: &ClassificationJob,
    placement: PlacementPolicy,
    slo_cycles: u64,
    ideal_rate: f64,
    cost: &mut CostModel,
) -> f64 {
    let mut lo = 0.0;
    let mut hi = ideal_rate * 2.0;
    // Grow until the upper bracket fails (it practically always does at
    // 2x the loss-free ideal; the cap keeps a degenerate probe finite).
    while strict_attainment(&probe(sys, job, placement, hi, slo_cycles, cost)) >= TARGET {
        lo = hi;
        hi *= 2.0;
        if hi > ideal_rate * 64.0 {
            return lo;
        }
    }
    for _ in 0..10 {
        let mid = 0.5 * (lo + hi);
        if strict_attainment(&probe(sys, job, placement, mid, slo_cycles, cost)) >= TARGET {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: usize = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let backend = if args.iter().any(|a| a == "--cost-model") {
        cost_backend()
    } else {
        CostBackend::Surrogate { audit_rate: 0.1 }
    };
    let sys = SystemModel::table3();
    let cfg = sim_config();
    println!(
        "Fleet capacity: qps/DIMM at {:.0}% SLO vs model size, sim scale 1/{scale}, \
         {NODES} nodes x {SHARDS} shards (zipf {ZIPF_S}), cost model {}\n",
        TARGET * 100.0,
        backend.name(),
    );

    // The three datasets search independently; shard them across the
    // bench workers. Each worker reuses one surrogate across every probe
    // of its dataset, so anchors fitted bracketing the capacity edge pay
    // off on all later bisection steps.
    let rows = par_rows(&cfg, WorkloadId::scaling().to_vec(), |&id| {
        let job = capacity_job(id, scale);
        let mut cost = CostModel::new(backend, SEED);

        // A warm probe at negligible load yields the calibrated service
        // table; the SLO and the loss-free ideal rate derive from it.
        // The table is placement-independent, so both policies face the
        // same bar.
        let warm = probe(&sys, &job, PlacementPolicy::ConsistentHash, 0.01, u64::MAX / 4, &mut cost);
        let full_batch = warm.tenants[0].service_cycles[0][BATCH_MAX - 1].max(1);
        let slo_cycles = 16 * full_batch;
        let ideal_rate = 1000.0 * (NODES * LANES * BATCH_MAX) as f64 / full_batch as f64;

        let caps: Vec<f64> = POLICIES
            .iter()
            .map(|&p| capacity_search(&sys, &job, p, slo_cycles, ideal_rate, &mut cost))
            .collect();
        // requests/kilocycle → queries/sec, unscaled back to the full
        // category space, normalized per DIMM.
        let qps_per_dimm = |rate: f64| {
            rate * 1e6 / warm.ns_per_cycle / scale as f64 / (NODES * DIMMS_PER_NODE) as f64
        };
        (id, qps_per_dimm(caps[0]), qps_per_dimm(caps[1]))
    });

    let mut t = Table::new(&["Dataset", "qps/DIMM (hash)", "qps/DIMM (popularity)", "ratio"]);
    let mut bench = BenchEmitter::from_env("fleet_capacity");
    let mut failures = Vec::new();
    for (id, ch, pa) in rows {
        let abbr = id.workload().abbr;
        let ratio = pa / ch.max(f64::MIN_POSITIVE);
        t.row_owned(vec![
            abbr.to_string(),
            fmt(ch, 1),
            fmt(pa, 1),
            format!("{ratio:.2}x"),
        ]);
        bench.det(&format!("qps_per_dimm/{abbr}/consistent-hash"), ch);
        bench.det(&format!("qps_per_dimm/{abbr}/popularity"), pa);
        bench.det(&format!("capacity_ratio/{abbr}"), ratio);
        if ratio < 1.2 {
            failures.push(format!("{abbr}: {ratio:.2}x"));
        }
    }
    t.print();
    bench.finish();

    let mut rep = Reporter::from_env("fleet_capacity");
    rep.table("capacity", &t);
    rep.note(&format!(
        "capacity = max Poisson rate with >= {:.0}% of generated queries meeting a \
         16x-full-batch SLO (sheds count as misses); sim scale 1/{scale}",
        TARGET * 100.0
    ));
    rep.finish();

    println!(
        "\nPopularity-aware placement spreads the Zipf hot head over its replicas; \
         consistent hashing saturates the hot shard's node first."
    );
    assert!(
        failures.is_empty(),
        "popularity-aware capacity must be >= 1.2x consistent hashing under zipf {ZIPF_S}: {}",
        failures.join(", ")
    );
}
