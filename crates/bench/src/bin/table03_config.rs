//! Regenerates paper Table 3: DRAM and ENMC configurations.

use enmc_arch::config::EnmcConfig;
use enmc_bench::report::Reporter;
use enmc_bench::table::Table;
use enmc_dram::DramConfig;

fn main() {
    let dram = DramConfig::enmc_table3();
    let enmc = EnmcConfig::table3();
    let mut rep = Reporter::from_env("table03_config");
    println!("Table 3: ENMC Configurations\n");

    let mut t = Table::new(&["DRAM parameter", "Value"]);
    let org = dram.organization;
    let tim = dram.timing;
    t.row_owned(vec!["Spec".into(), format!("DDR4-{} MT/s", 2_000_000 / tim.tck_ps)]);
    t.row_owned(vec!["Channels".into(), org.channels.to_string()]);
    t.row_owned(vec!["Ranks/CH".into(), org.ranks.to_string()]);
    t.row_owned(vec![
        "Capacity/CH".into(),
        enmc_bench::table::fmt_bytes(org.channel_bytes()),
    ]);
    t.row_owned(vec!["Queue".into(), format!("{}-entry", dram.queue_depth)]);
    t.row_owned(vec![
        "CL-tRCD-tRP".into(),
        format!("{}-{}-{}", tim.cl, tim.trcd, tim.trp),
    ]);
    t.row_owned(vec![
        "tRC/tCCD/tRRD/tFAW".into(),
        format!("{}/{}/{}/{}", tim.trc, tim.tccd_s, tim.trrd_s, tim.tfaw),
    ]);
    t.row_owned(vec![
        "Peak BW/CH".into(),
        format!("{:.1} GB/s", tim.peak_channel_bandwidth() / 1e9),
    ]);
    t.print();
    rep.table("dram", &t);

    println!();
    let mut t = Table::new(&["ENMC parameter", "Value"]);
    t.row_owned(vec!["Tech node".into(), "28nm (modeled)".into()]);
    t.row_owned(vec!["Frequency".into(), format!("{} MHz", enmc.freq_mhz)]);
    t.row_owned(vec!["INT4 MACs".into(), enmc.int4_macs.to_string()]);
    t.row_owned(vec!["FP32 MACs".into(), enmc.fp32_macs.to_string()]);
    t.row_owned(vec![
        "Screener/Executor buffers".into(),
        format!("{}B+{}B each", enmc.buffer_bytes, enmc.buffer_bytes),
    ]);
    t.print();
    rep.table("enmc", &t);
    rep.finish();
}
