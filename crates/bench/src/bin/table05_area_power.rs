//! Regenerates paper Table 5: ENMC area and power breakdown.
//!
//! Beyond printing the table, this harness *gates* on it: every row and
//! the composed totals must reproduce the paper's numbers exactly (the
//! primitive costs are back-derived from these figures, so composition
//! must invert without drift), and the per-row metrics stream into the
//! bench-trajectory record so `bench-diff` catches any model drift.

use enmc_arch::physical::{table5_rows, PhysicalModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;

/// Paper Table 5, verbatim: per-component area (mm²) and power (mW).
const PAPER_ROWS: [(&str, f64, f64); 6] = [
    ("INT4 MAC", 0.013, 10.4),
    ("FP32 MAC", 0.145, 58.0),
    ("Compute Buffer", 0.061, 56.8),
    ("Control Buffer", 0.053, 49.3),
    ("ENMC Ctrl", 0.035, 32.9),
    ("DRAM Ctrl", 0.135, 78.0),
];
const PAPER_TOTAL_AREA_MM2: f64 = 0.442;
const PAPER_TOTAL_POWER_MW: f64 = 285.4;

fn main() {
    let m = PhysicalModel::tsmc28();
    println!("Table 5: ENMC area and power estimation\n");
    let mut t = Table::new(&["Component", "Area (mm^2)", "Power (mW)", "Area %", "Power %"]);
    let mut bench = BenchEmitter::from_env("table05_area_power");
    let total = m.enmc_unit();
    let rows = table5_rows(&m);
    assert_eq!(rows.len(), PAPER_ROWS.len(), "Table 5 must list every component");
    for ((name, ap), (pname, parea, ppower)) in rows.iter().zip(PAPER_ROWS) {
        assert_eq!(*name, pname);
        assert!(
            (ap.area_mm2 - parea).abs() < 1e-12,
            "{name} area {} != paper {parea}",
            ap.area_mm2
        );
        assert!(
            (ap.power_mw - ppower).abs() < 1e-12,
            "{name} power {} != paper {ppower}",
            ap.power_mw
        );
        t.row_owned(vec![
            (*name).into(),
            fmt(ap.area_mm2, 3),
            fmt(ap.power_mw, 1),
            format!("{:.1}%", 100.0 * ap.area_mm2 / total.area_mm2),
            format!("{:.1}%", 100.0 * ap.power_mw / total.power_mw),
        ]);
        let key = name.to_ascii_lowercase().replace(' ', "_");
        bench.det(&format!("area_mm2/{key}"), ap.area_mm2);
        bench.det(&format!("power_mw/{key}"), ap.power_mw);
    }
    // The composed unit must land on the paper totals within rounding of
    // the published per-row figures (they are quoted to 3 / 1 decimals).
    assert!(
        (total.area_mm2 - PAPER_TOTAL_AREA_MM2).abs() < 5e-3,
        "total area {} != paper {PAPER_TOTAL_AREA_MM2}",
        total.area_mm2
    );
    assert!(
        (total.power_mw - PAPER_TOTAL_POWER_MW).abs() < 0.5,
        "total power {} != paper {PAPER_TOTAL_POWER_MW}",
        total.power_mw
    );
    let row_area: f64 = PAPER_ROWS.iter().map(|r| r.1).sum();
    let row_power: f64 = PAPER_ROWS.iter().map(|r| r.2).sum();
    assert!((total.area_mm2 - row_area).abs() < 1e-12, "rows must sum to the unit");
    assert!((total.power_mw - row_power).abs() < 1e-12, "rows must sum to the unit");
    t.row_owned(vec![
        "TOTAL".into(),
        fmt(total.area_mm2, 3),
        fmt(total.power_mw, 1),
        "100%".into(),
        "100%".into(),
    ]);
    t.print();
    bench.det("total/area_mm2", total.area_mm2);
    bench.det("total/power_mw", total.power_mw);
    bench.finish();
    let mut rep = Reporter::from_env("table05_area_power");
    rep.table("area_power", &t);
    rep.note("every row and both totals asserted against the paper's Table 5 figures");
    rep.finish();
    println!("\nPaper reference: total 0.442 mm^2, 285.4 mW;");
    println!("compute units 40.8% area / 25% power, buffers 23.5% / 32.2%.");
}
