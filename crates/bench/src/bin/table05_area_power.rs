//! Regenerates paper Table 5: ENMC area and power breakdown.

use enmc_arch::physical::{table5_rows, PhysicalModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};

fn main() {
    let m = PhysicalModel::tsmc28();
    println!("Table 5: ENMC area and power estimation\n");
    let mut t = Table::new(&["Component", "Area (mm^2)", "Power (mW)", "Area %", "Power %"]);
    let total = m.enmc_unit();
    for (name, ap) in table5_rows(&m) {
        t.row_owned(vec![
            name.into(),
            fmt(ap.area_mm2, 3),
            fmt(ap.power_mw, 1),
            format!("{:.1}%", 100.0 * ap.area_mm2 / total.area_mm2),
            format!("{:.1}%", 100.0 * ap.power_mw / total.power_mw),
        ]);
    }
    t.row_owned(vec![
        "TOTAL".into(),
        fmt(total.area_mm2, 3),
        fmt(total.power_mw, 1),
        "100%".into(),
        "100%".into(),
    ]);
    t.print();
    let mut rep = Reporter::from_env("table05_area_power");
    rep.table("area_power", &t);
    rep.finish();
    println!("\nPaper reference: total 0.442 mm^2, 285.4 mW;");
    println!("compute units 40.8% area / 25% power, buffers 23.5% / 32.2%.");
}
