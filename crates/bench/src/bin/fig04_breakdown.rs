//! Regenerates paper Fig. 4: parameter/operation breakdown into
//! classification vs non-classification.

use enmc_bench::report::Reporter;
use enmc_bench::table::Table;
use enmc_model::breakdown::figure4_breakdown;

fn main() {
    println!("Figure 4: classification vs non-classification breakdown\n");
    let mut t = Table::new(&[
        "Workload",
        "Classifier params",
        "Front-end params",
        "Classifier % (params)",
        "Classifier % (ops)",
    ]);
    for row in figure4_breakdown() {
        t.row_owned(vec![
            row.workload.to_string(),
            row.classifier_params.to_string(),
            row.front_end_params.to_string(),
            format!("{:.1}%", 100.0 * row.param_fraction),
            format!("{:.1}%", 100.0 * row.ops_fraction),
        ]);
    }
    t.print();
    let mut rep = Reporter::from_env("fig04_breakdown");
    rep.table("breakdown", &t);
    rep.finish();
    println!("\nShape check: classification share grows with category count and");
    println!("dominates (>99%) for the million-category recommendation points.");
}
