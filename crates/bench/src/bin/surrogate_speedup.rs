//! Surrogate throughput benchmark: answers the resilience grid's energy
//! joins — 4 Table 2 workloads × 6 refresh multipliers × ECC on/off —
//! once with the cycle-accurate system run and once with the fitted
//! surrogate, and reports sweep points per second for both backends.
//!
//! The surrogate's anchor fits run in a warmup pass (they are the
//! backend's one-time capital cost, amortized over every sweep that
//! reuses the shape) and the timed surrogate pass audits nothing —
//! audit correctness is the CI gate's job (`--audit-rate 0.1` on the
//! grid benches); this binary measures steady-state throughput. The
//! binary asserts the surrogate answers the grid at least 50× faster
//! and emits `BENCH_surrogate_speedup.json` when asked
//! (`--bench-json <file>` or `ENMC_BENCH_DIR`).

use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::candidate_fraction;
use enmc_dram::energy::EnergyModel;
use enmc_fault::ECC_NJ_PER_BURST;
use enmc_model::workloads::WorkloadId;
use enmc_surrogate::{CostBackend, CostModel};
use std::time::Instant;

const MULTIPLIERS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
const SEED: u64 = 7;
const REQUIRED_SPEEDUP: f64 = 50.0;

fn grid_job(id: WorkloadId) -> ClassificationJob {
    let w = id.workload();
    ClassificationJob {
        categories: w.categories,
        hidden: w.hidden,
        reduced: (w.hidden / 4).max(1),
        batch: 8,
        candidates: ((w.categories as f64) * candidate_fraction(id)).round() as usize,
    }
}

/// Answers every (multiplier, ecc) join of one workload's grid row and
/// returns how many points were answered. Identical work for both
/// backends: build the relaxed-refresh energy model, rebind the system,
/// ask the cost model for the ENMC run.
fn answer_row(cost: &mut CostModel, sys: &SystemModel, job: &ClassificationJob) -> usize {
    let mut points = 0;
    for &m in &MULTIPLIERS {
        for ecc in [false, true] {
            let mut dram = EnergyModel::ddr4_2400_rank(1).with_refresh_multiplier(m);
            if ecc {
                dram = dram.with_ecc_surcharge(ECC_NJ_PER_BURST);
            }
            let bound = sys.clone().with_energy_model(dram);
            let result = cost
                .run_enmc(&bound, job, "surrogate-speedup grid")
                .unwrap_or_else(|v| panic!("audit-free pass cannot violate: {v}"));
            assert!(result.ns > 0.0, "every join must produce a latency");
            points += 1;
        }
    }
    points
}

fn main() {
    let sys = SystemModel::table3();
    let mut bench = BenchEmitter::from_env("surrogate_speedup");
    println!(
        "Surrogate vs cycle-accurate throughput on the resilience grid \
         ({} workloads x {} multipliers x ECC on/off)\n",
        WorkloadId::table2().len(),
        MULTIPLIERS.len()
    );

    let mut t = Table::new(&[
        "Workload", "Points", "Cycle pts/s", "Surrogate pts/s", "Speedup",
    ]);
    let (mut cycle_total_ns, mut surr_total_ns, mut total_points) = (0.0f64, 0.0f64, 0usize);
    for id in WorkloadId::table2() {
        let job = grid_job(id);

        let mut cycle = CostModel::new(CostBackend::CycleAccurate, SEED);
        let start = Instant::now();
        let points = answer_row(&mut cycle, &sys, &job);
        let cycle_ns = start.elapsed().as_nanos() as f64;

        // Warmup: fit the shape's anchors outside the timed region, then
        // measure pure prediction throughput (audit rate 0).
        let mut surr = CostModel::new(CostBackend::Surrogate { audit_rate: 0.0 }, SEED);
        let warm = EnergyModel::ddr4_2400_rank(1);
        surr.run_enmc(&sys.clone().with_energy_model(warm), &job, "surrogate-speedup warmup")
            .expect("audit-free warmup cannot violate");
        let start = Instant::now();
        let surr_points = answer_row(&mut surr, &sys, &job);
        let surr_ns = (start.elapsed().as_nanos() as f64).max(1.0);
        assert_eq!(points, surr_points, "both backends answer the same grid");

        let abbr = id.workload().abbr;
        t.row_owned(vec![
            abbr.to_string(),
            format!("{points}"),
            fmt(points as f64 / (cycle_ns / 1e9), 1),
            fmt(points as f64 / (surr_ns / 1e9), 0),
            fmt(cycle_ns / surr_ns, 0),
        ]);
        bench.wall_ns(&format!("{abbr}.cycle_accurate_ns"), &[cycle_ns]);
        bench.wall_ns(&format!("{abbr}.surrogate_ns"), &[surr_ns]);
        cycle_total_ns += cycle_ns;
        surr_total_ns += surr_ns;
        total_points += points;
    }
    t.print();

    let speedup = cycle_total_ns / surr_total_ns.max(1.0);
    println!(
        "\nGrid total: {} points; cycle-accurate {:.1} pts/s, surrogate {:.0} pts/s \
         => {speedup:.0}x",
        total_points,
        total_points as f64 / (cycle_total_ns / 1e9),
        total_points as f64 / (surr_total_ns / 1e9),
    );
    bench.det("grid_points", total_points as f64);
    bench.wall_ns("grid.cycle_accurate_ns", &[cycle_total_ns]);
    bench.wall_ns("grid.surrogate_ns", &[surr_total_ns]);
    bench.finish();
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "surrogate must answer the grid at least {REQUIRED_SPEEDUP}x faster than \
         cycle-accurate, measured {speedup:.1}x"
    );
}
