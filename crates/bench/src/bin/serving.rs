//! Steady-state serving study (extension): latency vs offered load for
//! ENMC and TensorDIMM on a Transformer-like rank slice, with batching.
//!
//! Single-job latency (Fig. 13) understates the deployment difference:
//! under a query stream, ENMC's batch reuse raises its saturation
//! throughput while its low service time keeps tail latency flat.

use enmc_arch::baseline::{BaselineKind, NmpBaseline};
use enmc_arch::config::EnmcConfig;
use enmc_arch::throughput::{saturation_period_ns, serve, ServeConfig};
use enmc_arch::unit::{RankJob, RankUnit, UnitParams};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{par_rows, sim_config};

fn main() {
    let template = RankJob {
        categories: 4184, // Transformer-W268K / 64 ranks
        hidden: 512,
        reduced: 128,
        batch: 1,
        candidates_per_item: vec![209],
    };
    let enmc = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
    let td = NmpBaseline::new(BaselineKind::TensorDimm);

    println!("Serving study: Transformer-like rank slice, max batch 4\n");
    let mut t = Table::new(&[
        "engine", "load (kQPS)", "mean lat (us)", "p95 lat (us)", "mean batch", "state",
    ]);
    let grid: Vec<(&str, &RankUnit, f64)> = [("ENMC", &enmc), ("TensorDIMM", td.unit())]
        .into_iter()
        .flat_map(|(name, unit)| [0.3, 0.7, 1.2, 2.0].map(|load| (name, unit, load)))
        .collect();
    // Every (engine, load) point serves its own 400-query stream; shard
    // the grid across the bench workers.
    let rows = par_rows(&sim_config(), grid, |&(name, unit, load)| {
        let svc1 = unit.simulate(&template).ns;
        let period = svc1 / load;
        let r = serve(
            unit,
            &template,
            &ServeConfig { arrival_period_ns: period, max_batch: 4, queries: 400 },
        );
        vec![
            name.into(),
            fmt(1e6 / period, 1),
            fmt(r.mean_ns / 1e3, 1),
            fmt(r.p95_ns / 1e3, 1),
            fmt(r.mean_batch, 2),
            if r.saturated { "SATURATED" } else { "stable" }.into(),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t.print();
    let mut rep = Reporter::from_env("serving");
    rep.table("load_sweep", &t);

    let enmc_sat = saturation_period_ns(&enmc, &template, 4, 300);
    let td_sat = saturation_period_ns(td.unit(), &template, 4, 300);
    println!("\nsaturation throughput (batch<=4):");
    println!("  ENMC       {:.1} kQPS per rank", 1e6 / enmc_sat);
    println!("  TensorDIMM {:.1} kQPS per rank", 1e6 / td_sat);
    println!("  ratio      {:.1}x", td_sat / enmc_sat);
    rep.note(&format!("saturation kQPS: ENMC {:.1}, TensorDIMM {:.1}", 1e6 / enmc_sat, 1e6 / td_sat));
    rep.finish();
}
