//! Regenerates paper Fig. 14: energy breakdown (DRAM static / DRAM access
//! / computation & control) of ENMC vs TensorDIMM and TensorDIMM-Large,
//! normalized to TensorDIMM.

use enmc_arch::baseline::BaselineKind;
use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::{candidate_fraction, par_rows, sim_config};
use enmc_model::workloads::WorkloadId;

fn main() {
    let sys = SystemModel::table3();
    println!("Figure 14: energy breakdown normalized to TensorDIMM\n");
    let mut t = Table::new(&[
        "Workload", "Scheme", "DRAM static", "DRAM access", "Compute+ctrl", "Total",
    ]);
    let mut ratios_td = Vec::new();
    let mut ratios_tdl = Vec::new();
    let cfg = sim_config();
    let mut bench = BenchEmitter::from_env("fig14_energy");
    // One independent three-scheme simulation per workload; shard them
    // across the bench workers.
    let runs = bench.timed("harness/sweep_ns", || par_rows(&cfg, WorkloadId::table2().to_vec(), |&id| {
        let w = id.workload();
        let job = ClassificationJob {
            categories: w.categories,
            hidden: w.hidden,
            reduced: (w.hidden / 4).max(1),
            batch: 1,
            candidates: ((w.categories as f64) * candidate_fraction(id)).round() as usize,
        };
        let td = sys
            .run(&job, Scheme::Baseline(BaselineKind::TensorDimm))
            .energy
            .expect("simulated");
        let tdl = sys
            .run(&job, Scheme::Baseline(BaselineKind::TensorDimmLarge))
            .energy
            .expect("simulated");
        let enmc = sys.run(&job, Scheme::Enmc).energy.expect("simulated");
        (w.abbr, td, tdl, enmc)
    }));
    for (abbr, td, tdl, enmc) in &runs {
        let norm = td.total_nj();
        bench.det(&format!("energy_nj/{abbr}/enmc"), enmc.total_nj());
        bench.det(&format!("energy_ratio/{abbr}/td_over_enmc"), td.total_nj() / enmc.total_nj());
        for (name, e) in [("TensorDIMM", td), ("TensorDIMM-L", tdl), ("ENMC", enmc)] {
            t.row_owned(vec![
                abbr.to_string(),
                name.to_string(),
                fmt(e.dram_static_nj / norm, 3),
                fmt(e.dram_access_nj / norm, 3),
                fmt(e.logic_nj / norm, 3),
                fmt(e.total_nj() / norm, 3),
            ]);
        }
        ratios_td.push(td.total_nj() / enmc.total_nj());
        ratios_tdl.push(tdl.total_nj() / enmc.total_nj());
    }
    t.print();
    let mut rep = Reporter::from_env("fig14_energy");
    rep.table("energy_breakdown", &t);
    rep.finish();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    bench.det("energy_ratio/avg/td_over_enmc", avg(&ratios_td));
    bench.det("energy_ratio/avg/tdl_over_enmc", avg(&ratios_tdl));
    bench.finish();
    println!("\nAverage energy reduction of ENMC: {:.1}x vs TensorDIMM, {:.1}x vs TensorDIMM-Large",
        avg(&ratios_td), avg(&ratios_tdl));
    println!("Paper reference: 5.0x and 8.4x (static-energy reductions 9.3x / 4.8x).");
}
