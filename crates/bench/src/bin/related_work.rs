//! Related-work comparison (paper §8): Approximate Screening vs MACH
//! (count-min-sketch classification) vs two-level hierarchical softmax.
//!
//! The paper argues MACH "cannot mitigate overall memory usage much and
//! suffers from classification accuracy drop" and that pure approximation
//! methods truncate the output distribution; this harness quantifies both
//! on the same synthetic workload.

use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, fmt_speedup, Table};
use enmc_bench::{fit_pipeline, sim_config};
use enmc_model::quality::{QualityAccumulator, QualityReport};
use enmc_model::synth::Query;
use enmc_model::workloads::WorkloadId;
use enmc_par::SimConfig;
use enmc_screen::cost::{ClassificationCost, CpuCostModel};
use enmc_screen::hierarchical::Hierarchical;
use enmc_screen::mach::{Mach, MachConfig};
use enmc_tensor::quant::Precision;
use enmc_tensor::Vector;

const QUERIES: usize = 100;

/// Scores one method over the query set, sharded across the bench
/// workers (8 fixed shards merged in order — worker-count independent).
fn score<F>(
    cfg: &SimConfig,
    queries: &[Query],
    full_logits: impl Fn(&Query) -> Vector + Sync,
    f: F,
) -> (QualityReport, ClassificationCost)
where
    F: Fn(&Query) -> (Vector, ClassificationCost) + Sync,
{
    let shards = enmc_par::shard_ranges(queries.len(), 8);
    let parts = enmc_par::par_map(cfg.worker_count(), shards, |_, range| {
        let mut acc = QualityAccumulator::new(10);
        let mut cost = ClassificationCost::default();
        for q in &queries[range] {
            let full = full_logits(q);
            let (logits, c) = f(q);
            acc.add(full.as_slice(), logits.as_slice(), q.target);
            cost = cost.add(&c);
        }
        (acc, cost)
    });
    let mut acc = QualityAccumulator::new(10);
    let mut cost = ClassificationCost::default();
    for (a, c) in &parts {
        acc.merge(a);
        cost = cost.add(c);
    }
    (acc.finish(), cost)
}

fn main() {
    let cpu = CpuCostModel::default();
    let cfg = sim_config();
    let id = WorkloadId::Xmlcnn670K;
    let fitted = fit_pipeline(id, 0.25, Precision::Int4, 42);
    let (l, d) = fitted.shape;
    println!("Related-work comparison on {} (eval shape {l}x{d})\n", fitted.workload.abbr);
    let queries = fitted.synth.sample_queries_seeded(QUERIES, 99);
    let full = |q: &Query| fitted.synth.full_logits(&q.hidden);
    let full_cost = ClassificationCost::full(l, d, 1);

    let mut t = Table::new(&["method", "setting", "top-1 agree", "P@10", "memory", "speedup"]);

    // Approximate Screening at the paper's configuration.
    {
        let (r, cost) = score(&cfg, &queries, full, |q| {
            let out = fitted.classifier.classify_ref(&q.hidden);
            (out.logits, out.cost)
        });
        let mean = mean_cost(&cost, QUERIES);
        t.row_owned(vec![
            "AS".into(),
            "k=d/4, INT4".into(),
            fmt(r.top1_agreement, 3),
            fmt(r.precision_at_k, 3),
            "1.03x full".into(), // full W + 3% screener
            fmt_speedup(cpu.speedup(&full_cost, &mean)),
        ]);
    }

    // MACH at two compression points.
    for (reps, buckets) in [(2usize, 128usize), (6, 512)] {
        let mach = Mach::distill(
            fitted.synth.weights(),
            &MachConfig { repetitions: reps, buckets, seed: 1 },
            &[],
        )
        .expect("valid MACH config");
        let (r, cost) = score(&cfg, &queries, full, |q| mach.classify(&q.hidden));
        let mean = mean_cost(&cost, QUERIES);
        t.row_owned(vec![
            "MACH".into(),
            format!("R={reps},B={buckets}"),
            fmt(r.top1_agreement, 3),
            fmt(r.precision_at_k, 3),
            format!("1/{:.0} of full", mach.compression()),
            fmt_speedup(cpu.speedup(&full_cost, &mean)),
        ]);
    }

    // Hierarchical softmax at two beam widths.
    let hier = Hierarchical::build(
        fitted.synth.weights().clone(),
        fitted.synth.bias().clone(),
        (l as f64).sqrt() as usize,
        6,
    )
    .expect("valid hierarchy");
    for top in [2usize, 8] {
        let (r, cost) = score(&cfg, &queries, full, |q| {
            let (logits, _, c) = hier.classify(&q.hidden, top);
            (logits, c)
        });
        let mean = mean_cost(&cost, QUERIES);
        t.row_owned(vec![
            "Hier. softmax".into(),
            format!("top-{top} clusters"),
            fmt(r.top1_agreement, 3),
            fmt(r.precision_at_k, 3),
            "~1x full".into(),
            fmt_speedup(cpu.speedup(&full_cost, &mean)),
        ]);
    }

    t.print();
    let mut rep = Reporter::from_env("related_work");
    rep.table("methods", &t);
    rep.finish();
    println!("\nReading: MACH trades accuracy for memory exactly as the paper");
    println!("claims; hierarchical softmax is fast but truncates unvisited");
    println!("clusters; AS keeps full-output fidelity at comparable speedups.");
}

fn mean_cost(total: &ClassificationCost, n: usize) -> ClassificationCost {
    ClassificationCost {
        fp32_macs: total.fp32_macs / n as u64,
        int_macs: total.int_macs / n as u64,
        bytes_read: total.bytes_read / n as u64,
        bytes_written: total.bytes_written / n as u64,
    }
}
