//! Workload-realism report: measures the statistical properties the
//! DESIGN.md substitution argument relies on, for every Table 2 workload's
//! synthetic instantiation.

use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{eval_shape, fit_pipelines, sim_config};
use enmc_model::statistics::measure;
use enmc_model::workloads::WorkloadId;
use enmc_tensor::quant::Precision;

fn main() {
    println!("Synthetic workload statistics (the screenability properties)\n");
    let mut t = Table::new(&[
        "Workload", "eval shape", "top-10 mass", "entropy (nats)", "spectral mass", "head mass",
    ]);
    let fitted_all =
        fit_pipelines(&WorkloadId::table2(), 0.25, Precision::Int4, 42, &sim_config());
    for fitted in &fitted_all {
        let (l, d) = eval_shape(&fitted.workload);
        let s = measure(&fitted.synth, 80, 7);
        t.row_owned(vec![
            fitted.workload.abbr.to_string(),
            format!("{l}x{d}"),
            fmt(s.top10_mass, 3),
            format!("{:.2} / {:.2} max", s.entropy, (l as f64).ln()),
            fmt(s.spectral_mass, 3),
            fmt(s.head_mass, 3),
        ]);
    }
    t.print();
    let mut rep = Reporter::from_env("workload_stats");
    rep.table("statistics", &t);
    rep.finish();
    println!("\ntop-10 mass well above uniform (10/l), entropy below the uniform");
    println!("maximum, high spectral mass (low effective rank) and a popular head:");
    println!("the geometry approximate screening exploits, verified per workload.");
}
