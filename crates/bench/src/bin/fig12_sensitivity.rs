//! Regenerates paper Fig. 12: sensitivity of Approximate Screening to
//! (a) the parameter-reduction scale and (b) the quantization level.

use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{eval_shape, fit_pipeline, par_rows, sim_config};
use enmc_model::quality::QualityAccumulator;
use enmc_model::workloads::WorkloadId;
use enmc_screen::infer::SelectionPolicy;
use enmc_tensor::quant::Precision;

const QUERIES: usize = 100;
/// A deliberately tight candidate budget (1% of categories): with fewer
/// exact slots, errors in the *screening* step become visible — which is
/// exactly what the sensitivity study measures.
const TIGHT_FRACTION: f64 = 0.01;

fn evaluate(id: WorkloadId, scale: f64, precision: Precision) -> (f64, f64, f64) {
    let mut fitted = fit_pipeline(id, scale, precision, 42);
    let l = fitted.shape.0;
    let m = ((l as f64 * TIGHT_FRACTION).round() as usize).max(1);
    fitted.classifier.set_policy(SelectionPolicy::TopM(m));
    let queries = fitted.synth.sample_queries_seeded(QUERIES, 99);
    let mut acc = QualityAccumulator::new(10);
    for q in &queries {
        let full = fitted.synth.full_logits(&q.hidden);
        let out = fitted.classifier.classify(&q.hidden);
        acc.add(full.as_slice(), out.logits.as_slice(), q.target);
    }
    let r = acc.finish();
    (r.top1_agreement, r.perplexity_ratio(), r.precision_at_k)
}

fn main() {
    let mut rep = Reporter::from_env("fig12_sensitivity");
    let id = WorkloadId::TransformerW268K;
    let w = id.workload();
    let (l, d) = eval_shape(&w);
    println!(
        "Figure 12: AS sensitivity on {} (eval shape {}x{}, tight m = {:.0}% of l)\n",
        w.abbr,
        l,
        d,
        100.0 * TIGHT_FRACTION
    );

    let cfg = sim_config();
    println!("(a) Parameter-reduction scale (at INT4):\n");
    let mut t = Table::new(&["scale", "k", "top-1 agree", "ppl ratio", "P@10"]);
    let scales = vec![0.0625, 0.125, 0.25, 0.5];
    // Every sweep point refits from scratch — shard them across workers.
    let rows = par_rows(&cfg, scales, |&scale| (scale, evaluate(id, scale, Precision::Int4)));
    for (scale, (agree, ppl, p10)) in rows {
        t.row_owned(vec![
            format!("{scale}"),
            format!("{}", ((d as f64) * scale).round() as usize),
            fmt(agree, 3),
            fmt(ppl, 3),
            fmt(p10, 3),
        ]);
    }
    t.print();
    rep.table("fig12a_scale", &t);

    println!("\n(b) Quantization level (at scale 0.25):\n");
    let mut t = Table::new(&["precision", "top-1 agree", "ppl ratio", "P@10"]);
    let rows = par_rows(&cfg, Precision::sweep().to_vec(), |&precision| {
        (precision, evaluate(id, 0.25, precision))
    });
    for (precision, (agree, ppl, p10)) in rows {
        t.row_owned(vec![precision.to_string(), fmt(agree, 3), fmt(ppl, 3), fmt(p10, 3)]);
    }
    t.print();
    rep.table("fig12b_precision", &t);
    rep.finish();

    println!("\nShape check: quality saturates around scale 0.25 (the paper's pick)");
    println!("and INT4 matches FP32 while INT2 degrades — Fig. 12's conclusions.");
}
