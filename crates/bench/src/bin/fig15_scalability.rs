//! Regenerates paper Fig. 15: end-to-end scalability on the synthetic
//! S1M / S10M / S100M datasets (XMLCNN front-end), comparing ENMC with
//! TensorDIMM and TensorDIMM-Large, normalized to the host-only CPU.
//!
//! Pass `--scale N` to simulate `1/N` of each rank's category slice and
//! extrapolate linearly (the pipelines are streaming, so time is linear in
//! the slice size); the default scale keeps the full runs tractable.

use enmc_arch::baseline::BaselineKind;
use enmc_arch::cpu::CpuModel;
use enmc_arch::endtoend::end_to_end;
use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt_speedup, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::{candidate_fraction, par_rows, sim_config};
use enmc_model::workloads::WorkloadId;

fn main() {
    let scale: usize = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let sys = SystemModel::table3();
    let cpu = CpuModel::xeon_8280();
    println!("Figure 15: end-to-end scalability (XMLCNN front-end), sim scale 1/{scale}\n");

    let mut t = Table::new(&["Dataset", "CPU", "TensorDIMM", "TensorDIMM-L", "ENMC"]);
    let mut adv_td = Vec::new();
    let mut adv_tdl = Vec::new();
    let cfg = sim_config();
    // The three datasets simulate independently; shard them across the
    // bench workers.
    let rows = par_rows(&cfg, WorkloadId::scaling().to_vec(), |&id| {
        let w = id.workload();
        let fe_ops = w.front_end.ops_per_query();
        // Scaled job: each rank simulates 1/scale of its slice; streaming
        // pipelines are linear in slice size, so latency extrapolates by
        // the same factor (validated on the smaller datasets).
        let job = ClassificationJob {
            categories: w.categories / scale,
            hidden: w.hidden,
            reduced: (w.hidden / 4).max(1),
            batch: 1,
            candidates: (((w.categories / scale) as f64) * candidate_fraction(id)).round()
                as usize,
        };
        let unscale = |ns: f64| ns * scale as f64;

        let cpu_serial = cpu.front_end_ns(fe_ops, 1)
            + unscale(sys.run(&job, Scheme::CpuFull).ns);
        let mut row = vec![w.abbr.to_string(), "1.0x".to_string()];
        let mut scheme_ns = Vec::new();
        for scheme in [
            Scheme::Baseline(BaselineKind::TensorDimm),
            Scheme::Baseline(BaselineKind::TensorDimmLarge),
            Scheme::Enmc,
        ] {
            let e = end_to_end(&sys, &cpu, &job, fe_ops, scheme);
            let ns = e.front_end_ns.max(unscale(e.classification_ns));
            scheme_ns.push(ns);
            row.push(fmt_speedup(cpu_serial / ns));
        }
        (row, scheme_ns)
    });
    let mut bench = BenchEmitter::from_env("fig15_scalability");
    for (row, scheme_ns) in rows {
        let abbr = row[0].clone();
        adv_td.push(scheme_ns[0] / scheme_ns[2]);
        adv_tdl.push(scheme_ns[1] / scheme_ns[2]);
        bench.det(&format!("end_to_end_ns/{abbr}/tensordimm"), scheme_ns[0]);
        bench.det(&format!("end_to_end_ns/{abbr}/tensordimm-large"), scheme_ns[1]);
        bench.det(&format!("end_to_end_ns/{abbr}/enmc"), scheme_ns[2]);
        bench.det(
            &format!("advantage/{abbr}/vs-tensordimm"),
            scheme_ns[0] / scheme_ns[2],
        );
        t.row_owned(row);
    }
    t.print();
    bench.finish();
    let mut rep = Reporter::from_env("fig15_scalability");
    rep.table("scalability", &t);
    rep.note(&format!("sim scale 1/{scale}"));
    rep.finish();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nENMC advantage: {:.1}x vs TensorDIMM, {:.1}x vs TensorDIMM-Large (average)",
        avg(&adv_td), avg(&adv_tdl));
    println!("and it grows with dataset size: vs TensorDIMM {:?}",
        adv_td.iter().map(|x| format!("{x:.1}x")).collect::<Vec<_>>());
    println!("\nPaper reference: 4.7x / 2.9x average; 2.2x/1.6x on the small and");
    println!("7.1x/4.2x on the largest datasets.");
}
