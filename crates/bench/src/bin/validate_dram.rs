//! DRAM-model validation: checks the simulator's first-order behaviour
//! against analytic DDR4 expectations (the calibration a Ramulator user
//! would do before trusting results).
//!
//! * idle read latency = tRCD + CL + tBL;
//! * streaming bandwidth approaches the 19.2 GB/s channel peak;
//! * random traffic collapses to row-miss service rate;
//! * bank-group interleave beats single-bank streaming (tCCD_S vs tCCD_L);
//! * refresh steals ~tRFC/tREFI of time.
//!
//! Every pattern runs with the DDR4 protocol conformance checker shadowing
//! the controller; the analytic expectations are *asserted*, not just
//! printed, so a regression fails the binary instead of needing a human
//! to eyeball the table.

use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{par_rows, sim_config};
use enmc_dram::{AddressMapping, DramConfig, DramSystem, MemRequest};

fn run_pattern(mapping: AddressMapping, addrs: &[u64]) -> (f64, f64, f64) {
    let mut sys = DramSystem::with_mapping(DramConfig::enmc_single_rank(), mapping);
    sys.enable_protocol_check();
    let mut sent = 0usize;
    let mut done = 0usize;
    while done < addrs.len() {
        while sent < addrs.len() && sys.enqueue(MemRequest::read(addrs[sent])).is_some() {
            sent += 1;
        }
        sys.tick();
        done += sys.drain_completions().len();
        assert!(sys.cycle() < 100_000_000, "stalled");
    }
    assert_eq!(
        sys.protocol_violation_count(),
        0,
        "DDR4 conformance violations under {mapping:?}: {:?}",
        sys.take_protocol_violations()
    );
    let stats = sys.stats();
    (sys.achieved_bandwidth_gbs(), stats.row_hit_rate(), stats.bus_utilization())
}

fn main() {
    let cfg = DramConfig::enmc_single_rank();
    let t = cfg.timing;
    println!("DRAM model validation (single rank, DDR4-2400)\n");

    // 1. Cold-read latency — must equal the analytic value exactly.
    let mut sys = DramSystem::new(cfg);
    sys.enable_protocol_check();
    sys.enqueue(MemRequest::read(0)).expect("queue empty");
    let done = sys.run_until_idle(100_000);
    let lat = done[0].latency();
    assert_eq!(lat, t.trcd + t.cl + t.tbl, "cold read latency diverged from tRCD+CL+tBL");
    assert_eq!(sys.protocol_violation_count(), 0, "cold read violated DDR4 timing");
    println!(
        "cold read latency: {} cycles (analytic tRCD+CL+tBL = {})",
        lat,
        t.trcd + t.cl + t.tbl
    );

    let n = 16_384u64;
    let mut table = Table::new(&["pattern", "GB/s", "row-hit rate", "bus util"]);

    // 2. Sequential stream with the bank-group-interleaved mapping.
    let seq: Vec<u64> = (0..n).map(|i| i * 64).collect();

    // 3. Single-bank column walk (pays tCCD_L).
    let org = cfg.organization;
    let bank_stride = 64 * org.bank_groups as u64; // stay in bank group 0, bank 0
    let single: Vec<u64> = (0..n).map(|i| i * bank_stride).collect();

    // 4. Random rows (every access a fresh row).
    let mut lcg: u64 = 12345;
    let rand: Vec<u64> = (0..n / 4)
        .map(|_| {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((lcg >> 20) % org.channel_bytes()) & !63
        })
        .collect();

    // The three patterns drive independent simulator instances; shard
    // them across the bench workers.
    let patterns: Vec<(&str, Vec<u64>)> = vec![
        ("sequential (Bg-interleaved)", seq),
        ("single-bank column walk", single),
        ("random rows", rand),
    ];
    let peak_gbs = t.peak_channel_bandwidth() / 1e9;
    let ccd_cap = t.tbl as f64 / t.tccd_l as f64;
    let rows = par_rows(&sim_config(), patterns, |(name, addrs)| {
        let (bw, hit, util) = run_pattern(AddressMapping::RoRaBaCoBg, addrs);
        match *name {
            "sequential (Bg-interleaved)" => {
                assert!(hit > 0.95, "sequential row-hit rate {hit} below 95%");
                assert!(bw > 0.8 * peak_gbs, "sequential {bw} GB/s far below {peak_gbs} peak");
            }
            "single-bank column walk" => {
                assert!(
                    bw <= ccd_cap * peak_gbs * 1.01,
                    "single-bank {bw} GB/s exceeds the tBL/tCCD_L cap"
                );
            }
            "random rows" => {
                assert!(hit < 0.1, "random-row hit rate {hit} suspiciously high");
                // Bank-level parallelism hides much of tRC, but misses must
                // still cost something relative to the streaming peak.
                assert!(bw < 0.8 * peak_gbs, "random rows {bw} GB/s should trail streaming");
            }
            _ => unreachable!("unknown pattern {name}"),
        }
        vec![(*name).into(), fmt(bw, 1), fmt(hit, 3), fmt(util, 3)]
    });
    for row in rows {
        table.row_owned(row);
    }

    table.print();
    let mut rep = Reporter::from_env("validate_dram");
    rep.table("patterns", &table);
    rep.note(&format!("cold read latency: {lat} cycles"));
    rep.finish();
    println!(
        "\nexpectations: sequential ≈ {:.1} GB/s peak with ~100% hits;",
        t.peak_channel_bandwidth() / 1e9
    );
    println!("single-bank capped at tBL/tCCD_L = {:.0}% of peak;", 100.0 * t.tbl as f64 / t.tccd_l as f64);
    println!("random-row traffic far below both with ~0% hits.");
}
