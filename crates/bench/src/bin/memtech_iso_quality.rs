//! Iso-quality memory-technology sweep: the same ENMC design point run
//! on each memory preset (DDR4-2666, DDR5-4800, LPDDR4-3200, HBM2) over
//! the paper shapes plus the S1M scale point.
//!
//! "Iso-quality" is by construction: the screening configuration
//! (candidate fraction, screener bitwidth, selection policy) is held
//! fixed across presets, so every preset classifies with *identical*
//! quality and the sweep isolates what the memory technology alone does
//! to latency and energy/query. The headline BENCH metrics rank the four
//! presets by energy/query per shape; every metric is a pure function of
//! simulated cycles and the preset's energy coefficients, so records are
//! byte-identical at any `--threads` / `ENMC_THREADS` setting and gate
//! at zero tolerance through `enmc bench-diff`.

use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_bench::{candidate_fraction, par_rows, sim_config};
use enmc_mem::MemTech;
use enmc_model::workloads::WorkloadId;

fn main() {
    println!("Iso-quality memory-technology sweep (ENMC scheme, batch 1)\n");
    let shapes: Vec<WorkloadId> = {
        let mut v = WorkloadId::table2().to_vec();
        v.push(WorkloadId::S1M);
        v
    };
    let points: Vec<(WorkloadId, MemTech)> = shapes
        .iter()
        .flat_map(|&id| MemTech::ALL.map(|tech| (id, tech)))
        .collect();
    let cfg = sim_config();
    let mut bench = BenchEmitter::from_env("memtech_iso_quality");
    // Every (shape, preset) point simulates independently; shard them
    // across the bench workers. Rows come back in sweep order.
    let rows = bench.timed("harness/sweep_ns", || {
        par_rows(&cfg, points, |&(id, tech)| {
            let w = id.workload();
            let job = ClassificationJob {
                categories: w.categories,
                hidden: w.hidden,
                reduced: (w.hidden / 4).max(1),
                batch: 1,
                candidates: ((w.categories as f64) * candidate_fraction(id)).round() as usize,
            };
            let sys = SystemModel::table3().with_memory(tech);
            let run = sys.run(&job, Scheme::Enmc);
            let energy = run.energy.expect("ENMC is a simulated scheme");
            (w.abbr, tech, run.ns, energy.total_nj())
        })
    });

    let mut t = Table::new(&["Shape", "Preset", "Latency ns", "Energy/query nJ", "vs DDR4"]);
    for shape in &shapes {
        let abbr = shape.workload().abbr;
        let per_tech: Vec<&(&str, MemTech, f64, f64)> =
            rows.iter().filter(|(a, ..)| *a == abbr).collect();
        let ddr4_nj = per_tech
            .iter()
            .find(|(_, tech, ..)| *tech == MemTech::Ddr4_2666)
            .expect("baseline preset in sweep")
            .3;
        // Rank the presets by energy/query at this (iso-quality) point;
        // ties break by preset order, which is deterministic.
        let mut ranked: Vec<&&(&str, MemTech, f64, f64)> = per_tech.iter().collect();
        ranked.sort_by(|a, b| a.3.total_cmp(&b.3));
        for (_, tech, ns, nj) in &per_tech {
            bench.det(&format!("latency_ns/{abbr}/{}", tech.short()), *ns);
            bench.det(&format!("energy_nj_per_query/{abbr}/{}", tech.short()), *nj);
            let rank = ranked.iter().position(|r| r.1 == *tech).expect("ranked") + 1;
            bench.det(&format!("rank_by_energy/{abbr}/{}", tech.short()), rank as f64);
            t.row_owned(vec![
                abbr.to_string(),
                tech.name().to_string(),
                fmt(*ns, 1),
                fmt(*nj, 1),
                fmt(ddr4_nj / nj, 2),
            ]);
        }
    }
    t.print();

    let mut rep = Reporter::from_env("memtech_iso_quality");
    rep.table("iso_quality_sweep", &t);
    let s1m: Vec<&(&str, MemTech, f64, f64)> =
        rows.iter().filter(|(a, ..)| *a == "S1M").collect();
    let mut s1m_ranked = s1m.clone();
    s1m_ranked.sort_by(|a, b| a.3.total_cmp(&b.3));
    let order: Vec<&str> = s1m_ranked.iter().map(|(_, tech, ..)| tech.name()).collect();
    println!("\nS1M energy/query ranking (iso-quality): {}", order.join(" < "));
    rep.note(&format!("s1m energy ranking: {}", order.join(" < ")));
    rep.finish();
    bench.finish();
}
