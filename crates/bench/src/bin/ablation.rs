//! Ablation study of ENMC's design choices (beyond the paper's figures —
//! each row removes or resizes one mechanism DESIGN.md calls out).
//!
//! * screening precision (INT4 → INT8 → FP32 storage/compute)
//! * the comparator-array inline filter vs spill-and-refilter
//! * dual-module Screener ∥ Executor overlap vs serial phases
//! * prefetch (double-buffering) depth
//! * INT4 MAC array width

use enmc_arch::config::EnmcConfig;
use enmc_arch::unit::{RankJob, RankUnit, UnitParams};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{par_rows, sim_config};

fn job() -> RankJob {
    // One rank's slice of a Transformer-W268K-like job with ~5% candidates.
    RankJob {
        categories: 4184,
        hidden: 512,
        reduced: 128,
        batch: 2,
        candidates_per_item: vec![209; 2],
    }
}

fn run(params: UnitParams) -> f64 {
    RankUnit::new(params).simulate(&job()).ns
}

fn main() {
    let base = UnitParams::enmc(&EnmcConfig::table3());
    let base_ns = run(base);
    println!("ENMC design-choice ablations (one rank, Transformer-like slice, batch 2)\n");
    let mut t = Table::new(&["variant", "latency (us)", "slowdown vs ENMC"]);

    let variants: Vec<(&str, UnitParams)> = vec![
        ("ENMC (Table 3)", base),
        // Screening precision: wider storage = more DRAM traffic; the MAC
        // count stays at 128 lanes of the corresponding width.
        ("screening at INT8", UnitParams { screen_bits: 8, ..base }),
        ("screening at FP32", UnitParams { screen_bits: 32, ..base }),
        // Remove the comparator array: logits spill to DRAM and are re-read
        // for a compute-based filter (the naive-NMP path of §7.2).
        ("no inline filter (spill + refilter)", UnitParams { inline_filter: false, ..base }),
        // Serialize the dual modules: the Executor waits for screening.
        ("serial Screener→Executor", UnitParams { serial_phases: true, ..base }),
        // Prefetch depth (double buffering).
        ("prefetch depth 1 (no double buffer)", UnitParams { prefetch_depth: 1, ..base }),
        ("prefetch depth 4", UnitParams { prefetch_depth: 4, ..base }),
        // MAC array width.
        ("32 INT4 MACs", UnitParams { screen_macs_per_cycle: 32.0, ..base }),
        ("64 INT4 MACs", UnitParams { screen_macs_per_cycle: 64.0, ..base }),
        ("256 INT4 MACs", UnitParams { screen_macs_per_cycle: 256.0, ..base }),
    ];
    // Each variant simulates independently; shard them across the bench
    // workers (rows keep the listed order).
    let rows = par_rows(&sim_config(), variants, |&(name, params)| (name, run(params)));
    for (name, ns) in rows {
        t.row_owned(vec![name.into(), fmt(ns / 1e3, 2), format!("{:.2}x", ns / base_ns)]);
    }

    t.print();
    let mut rep = Reporter::from_env("ablation");
    rep.table("ablations", &t);
    rep.finish();
    println!("\nReading: INT4 storage and the inline filter are the big levers");
    println!("(they set DRAM traffic); MAC width beyond 128 buys little because");
    println!("screening is bandwidth-bound (Fig. 5b).");
}
