//! Design-space tuning harness (extension): Pareto frontiers over the
//! default small lattice, with the frontier-validity and
//! guided-equals-exhaustive invariants asserted inline.
//!
//! The harness runs both search strategies over the same budgeted space
//! and gates on the tuner's contract:
//!
//! 1. the frontier is mutually non-dominating and within budget,
//! 2. guided search renders the byte-identical `tune-frontier-v1`
//!    fixture brute force does, while evaluating no more designs,
//! 3. the whole run is worker-invariant (1 vs 4 evaluation workers).
//!
//! Frontier coordinates stream into the bench-trajectory record so
//! `bench-diff` catches any silent drift in the evaluated objectives.

use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::trajectory::BenchEmitter;
use enmc_tune::{
    dominates, frontier_json, tune, Budget, SearchMode, TuneConfig, TuneResult, TuneSpace,
};

const SEED: u64 = 7;
/// DIMM-population budget: excludes the priciest quarter of the default
/// space, so the budget path is exercised without emptying the lattice.
const MAX_AREA_MM2: f64 = 28.3;

fn job() -> ClassificationJob {
    ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
}

fn cfg(mode: SearchMode, workers: usize) -> TuneConfig {
    TuneConfig {
        space: TuneSpace::small(),
        budget: Budget { max_area_mm2: Some(MAX_AREA_MM2), max_power_mw: None },
        seed: SEED,
        workers,
        mode,
        ..TuneConfig::default()
    }
}

fn assert_frontier_valid(r: &TuneResult) {
    assert!(!r.frontier.is_empty(), "a non-empty space always has a frontier");
    for a in &r.frontier {
        assert!(
            a.design.cost.area_mm2 <= MAX_AREA_MM2,
            "budget-violating design {} on the frontier",
            a.design.point.label()
        );
        for b in &r.frontier {
            assert!(
                !dominates(&a.design, &b.design),
                "dominated design {} on the frontier",
                b.design.point.label()
            );
        }
    }
}

fn main() {
    let sys = SystemModel::table3();
    let job = job();
    let mut bench = BenchEmitter::from_env("tune_pareto");
    println!("Design-space tuning: Pareto frontier over the default small lattice\n");

    let ex = bench
        .timed("wall/exhaustive", || tune(&sys, &job, &cfg(SearchMode::Exhaustive, 4)))
        .expect("audited evaluations stay within the surrogate bound");
    let gd = bench
        .timed("wall/guided", || tune(&sys, &job, &cfg(SearchMode::Guided, 4)))
        .expect("audited evaluations stay within the surrogate bound");

    assert_frontier_valid(&ex);
    assert_frontier_valid(&gd);
    let budget = cfg(SearchMode::Exhaustive, 4).budget;
    assert_eq!(
        frontier_json("bench", ex.space_size, &budget, &ex.frontier),
        frontier_json("bench", gd.space_size, &budget, &gd.frontier),
        "guided search must render the frontier brute force finds"
    );
    assert!(
        gd.evaluated.len() <= ex.evaluated.len(),
        "guided search may not evaluate more designs than brute force"
    );
    // Worker invariance: the whole result, not just the frontier.
    let solo = tune(&sys, &job, &cfg(SearchMode::Exhaustive, 1)).unwrap();
    assert_eq!(solo, ex, "evaluation must be bit-identical at any worker count");

    let mut t = Table::new(&["Design", "Latency (ns)", "nJ/query", "Quality %", "mm^2", "mW"]);
    for p in &ex.frontier {
        let d = &p.design;
        let label = d.point.label();
        t.row_owned(vec![
            label.clone(),
            fmt(d.latency_ns, 1),
            fmt(d.energy_per_query_nj, 1),
            fmt(d.quality_pct, 2),
            fmt(d.cost.area_mm2, 3),
            fmt(d.cost.power_mw, 1),
        ]);
        bench.det(&format!("latency_ns/{label}"), d.latency_ns);
        bench.det(&format!("energy_nj/{label}"), d.energy_per_query_nj);
        bench.det(&format!("quality_pct/{label}"), d.quality_pct);
    }
    t.print();
    bench.det("space_size", ex.space_size as f64);
    bench.det("rejected", ex.rejected as f64);
    bench.det("frontier_points", ex.frontier.len() as f64);
    bench.det("dominated_points", ex.dominated as f64);
    bench.det("guided_evaluated", gd.evaluated.len() as f64);
    bench.finish();

    let mut rep = Reporter::from_env("tune_pareto");
    rep.table("frontier", &t);
    rep.note(&format!(
        "{} designs, {} rejected by the {MAX_AREA_MM2} mm^2 budget; exhaustive evaluated {}, \
         guided {}; identical frontiers ({} points, {} dominated)",
        ex.space_size,
        ex.rejected,
        ex.evaluated.len(),
        gd.evaluated.len(),
        ex.frontier.len(),
        ex.dominated
    ));
    rep.finish();
    println!(
        "\nGuided search evaluated {}/{} designs and reproduced the exhaustive frontier exactly.",
        gd.evaluated.len(),
        ex.evaluated.len()
    );
}
