//! Regenerates paper Fig. 11: quality vs speedup trade-off of Approximate
//! Screening (AS) against the SVD-softmax and FGD baselines, on all four
//! Table 2 workloads.
//!
//! Quality is measured against the exact full classification on the same
//! queries (top-1 agreement = BLEU/accuracy proxy, perplexity ratio for
//! the LM tasks, precision@10 for recommendation); speedup is the CPU
//! roofline time of full classification divided by the method's time.
//! Workloads run at their algorithm-level eval shapes (see DESIGN.md) —
//! relative positions of the three frontiers are the result.

use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, fmt_speedup, Table};
use enmc_bench::{eval_shape, fit_pipeline, par_rows, sim_config};
use enmc_model::quality::QualityAccumulator;
use enmc_model::workloads::WorkloadId;
use enmc_screen::cost::{ClassificationCost, CpuCostModel};
use enmc_screen::fgd::{FgdConfig, FgdIndex};
use enmc_screen::infer::SelectionPolicy;
use enmc_screen::svd::SvdSoftmax;
use enmc_tensor::quant::Precision;

const QUERIES: usize = 100;
const FRACTIONS: [f64; 5] = [0.01, 0.02, 0.05, 0.10, 0.15];

fn main() {
    let cpu = CpuCostModel::default();
    let cfg = sim_config();
    let mut rep = Reporter::from_env("fig11_quality_speedup");
    println!("Figure 11: quality vs speedup — AS vs SVD-softmax vs FGD");
    println!("(eval shapes; quality vs exact full classification on the same queries)\n");

    // Each workload's frontier is independent; shard them across the bench
    // workers (the output order stays fixed).
    let tables = par_rows(&cfg, WorkloadId::table2().to_vec(), |&id| {
        let w = id.workload();
        let (l, d) = eval_shape(&w);
        let mut t = Table::new(&["method", "setting", "top-1 agree", "ppl ratio", "P@10", "speedup"]);

        // --- Approximate Screening (the paper's method, INT4, scale 0.25).
        let mut fitted = fit_pipeline(id, 0.25, Precision::Int4, 42);
        let queries = fitted.synth.sample_queries_seeded(QUERIES, 99);
        let full_cost = ClassificationCost::full(l, d, 1);
        for frac in FRACTIONS {
            let m = ((l as f64 * frac).round() as usize).max(1);
            fitted.classifier.set_policy(SelectionPolicy::TopM(m));
            let mut acc = QualityAccumulator::new(10);
            let mut cost_sum = ClassificationCost::default();
            for q in &queries {
                let full = fitted.synth.full_logits(&q.hidden);
                let out = fitted.classifier.classify(&q.hidden);
                acc.add(full.as_slice(), out.logits.as_slice(), q.target);
                cost_sum = cost_sum.add(&out.cost);
            }
            let r = acc.finish();
            let mean_cost = scale_cost(&cost_sum, QUERIES);
            t.row_owned(vec![
                "AS".into(),
                format!("m={m}"),
                fmt(r.top1_agreement, 3),
                fmt(r.perplexity_ratio(), 3),
                fmt(r.precision_at_k, 3),
                fmt_speedup(cpu.speedup(&full_cost, &mean_cost)),
            ]);
        }

        // --- SVD-softmax: preview window d/8, refine count swept
        // (factorized once, reused across the sweep).
        let window = (d / 8).max(1);
        let svd = SvdSoftmax::new(
            fitted.synth.weights(),
            fitted.synth.bias().clone(),
            window,
            1,
        )
        .expect("valid SVD config");
        for frac in FRACTIONS {
            let n = ((l as f64 * frac).round() as usize).max(1);
            let mut acc = QualityAccumulator::new(10);
            let mut cost_sum = ClassificationCost::default();
            for q in &queries {
                let full = fitted.synth.full_logits(&q.hidden);
                let (logits, _, cost) = svd.classify_refined(&q.hidden, n);
                acc.add(full.as_slice(), logits.as_slice(), q.target);
                cost_sum = cost_sum.add(&cost);
            }
            let r = acc.finish();
            let mean_cost = scale_cost(&cost_sum, QUERIES);
            t.row_owned(vec![
                "SVD".into(),
                format!("r={window},N={n}"),
                fmt(r.top1_agreement, 3),
                fmt(r.perplexity_ratio(), 3),
                fmt(r.precision_at_k, 3),
                fmt_speedup(cpu.speedup(&full_cost, &mean_cost)),
            ]);
        }

        // --- FGD: graph search with swept beam width.
        let index = FgdIndex::build(
            fitted.synth.weights().clone(),
            fitted.synth.bias().clone(),
            &FgdConfig::default(),
        )
        .expect("valid FGD config");
        for ef in [16usize, 32, 64, 128, 256] {
            let mut acc = QualityAccumulator::new(10);
            let mut cost_sum = ClassificationCost::default();
            for q in &queries {
                let full = fitted.synth.full_logits(&q.hidden);
                let (logits, _, cost) = index.classify(&q.hidden, 10, ef);
                acc.add(full.as_slice(), logits.as_slice(), q.target);
                cost_sum = cost_sum.add(&cost);
            }
            let r = acc.finish();
            let mean_cost = scale_cost(&cost_sum, QUERIES);
            t.row_owned(vec![
                "FGD".into(),
                format!("ef={ef}"),
                fmt(r.top1_agreement, 3),
                fmt(r.perplexity_ratio(), 3),
                fmt(r.precision_at_k, 3),
                fmt_speedup(cpu.speedup(&full_cost, &mean_cost)),
            ]);
        }
        (w, l, d, t)
    });
    for (w, l, d, t) in &tables {
        println!("== {} (eval shape {}x{}) ==", w.abbr, l, d);
        t.print();
        rep.table(w.abbr, t);
        println!();
    }
    rep.finish();
    println!("Shape check: at matched quality, AS sits at higher speedup than SVD");
    println!("(whose FP32 preview costs ~4x AS's INT4 screening). FGD's ppl ratio");
    println!("is far below 1 because its truncated output concentrates all mass on");
    println!("the visited categories — its distribution is degenerate, which is why");
    println!("the paper evaluates it only on top-k tasks.");
}

fn scale_cost(total: &ClassificationCost, n: usize) -> ClassificationCost {
    ClassificationCost {
        fp32_macs: total.fp32_macs / n as u64,
        int_macs: total.int_macs / n as u64,
        bytes_read: total.bytes_read / n as u64,
        bytes_written: total.bytes_written / n as u64,
    }
}
