//! Quality-vs-refresh-energy resilience grid (the EDEN-style trade-off
//! applied to ENMC): for every Table 2 workload, with and without
//! SEC-DED, sweep the refresh-interval multiplier and print the Pareto
//! table of screening quality against refresh energy.
//!
//! The grid cells are independent (one fitted pipeline each), so they
//! shard across the bench workers via `par_rows`; within a cell the
//! sweep itself is worker-count invariant. The frontier is monotone
//! nonincreasing in both axes by construction — the binary verifies that
//! on every cell before printing.
//!
//! `--cost-model surrogate [--audit-rate R]` answers every energy join
//! with the fitted surrogate instead of the cycle-accurate system run;
//! audited points that miss the declared bound abort the grid (the CI
//! surrogate gate runs exactly that and requires zero violations).

use enmc_arch::system::{ClassificationJob, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{candidate_fraction, cost_backend, fit_pipeline, par_rows, sim_config};
use enmc_fault::{
    pareto_frontier, run_resilience_sweep_with_cost, FaultModel, FaultSweepSpec, SweepError,
    SweepPoint,
};
use enmc_model::workloads::WorkloadId;
use enmc_surrogate::{CostBackend, CostModel};
use enmc_tensor::quant::Precision;

const MULTIPLIERS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
const QUERIES: usize = 96;
const SEED: u64 = 7;

fn sweep_cell(
    id: WorkloadId,
    ecc: bool,
    workers: usize,
    backend: CostBackend,
) -> (WorkloadId, bool, Vec<SweepPoint>) {
    let fitted = fit_pipeline(id, 0.25, Precision::Int4, SEED);
    let w = &fitted.workload;
    let job = ClassificationJob {
        categories: w.categories,
        hidden: w.hidden,
        reduced: (w.hidden / 4).max(1),
        // Stretch the run past several tREFI windows so the refresh
        // schedule is observable in the energy join.
        batch: 8,
        candidates: ((w.categories as f64) * candidate_fraction(id)).round() as usize,
    };
    let k = match fitted.classifier.policy() {
        enmc_screen::infer::SelectionPolicy::TopM(m) => m,
        _ => unreachable!("fit_pipeline always configures top-M"),
    };
    let spec = FaultSweepSpec {
        model: FaultModel::nominal(SEED),
        multipliers: MULTIPLIERS.to_vec(),
        ecc,
        queries: QUERIES,
        query_seed: SEED ^ 0xfa17,
        tiers: vec![k, (k / 2).max(1)],
    };
    let mut cost = CostModel::new(backend, SEED);
    let points = run_resilience_sweep_with_cost(
        &fitted.synth,
        &fitted.classifier,
        &SystemModel::table3(),
        &job,
        &spec,
        workers,
        None,
        None,
        &mut cost,
    )
    .unwrap_or_else(|e| match e {
        SweepError::Tensor(t) => panic!("frozen per-tensor screeners inject cleanly: {t}"),
        SweepError::Surrogate(v) => panic!("surrogate audit failed: {v}"),
    });
    (id, ecc, points)
}

fn main() {
    let cfg = sim_config();
    println!("Resilience grid: screening quality vs refresh energy (retention faults)\n");
    let mut grid = Vec::new();
    for id in WorkloadId::table2() {
        for ecc in [false, true] {
            grid.push((id, ecc));
        }
    }
    // One independent fitted pipeline per cell; shard cells across the
    // bench workers (within a cell the sweep runs sequentially).
    let backend = cost_backend();
    let cells = par_rows(&cfg, grid, |&(id, ecc)| sweep_cell(id, ecc, 1, backend));

    let mut t = Table::new(&[
        "Workload", "ECC", "Mult", "Refresh uJ", "Top-1 %", "Fault degr %", "Masked rows",
        "ECC corr/uncorr",
    ]);
    for (id, ecc, points) in &cells {
        let abbr = id.workload().abbr;
        let frontier = pareto_frontier(points);
        for w in frontier.windows(2) {
            assert!(
                w[1].top1_agreement <= w[0].top1_agreement
                    && w[1].refresh_energy_nj <= w[0].refresh_energy_nj,
                "{abbr}: Pareto frontier must be monotone nonincreasing"
            );
        }
        for (p, row) in points.iter().zip(&frontier) {
            t.row_owned(vec![
                abbr.to_string(),
                if *ecc { "secded" } else { "off" }.to_string(),
                fmt(p.refresh_multiplier, 0),
                fmt(row.refresh_energy_nj / 1e3, 1),
                fmt(100.0 * row.top1_agreement, 2),
                fmt(p.quality_degradation_pct(), 3),
                format!("{}", p.primary().corrupted_rows_masked),
                format!("{}/{}", p.ecc_corrected(), p.ecc_uncorrected()),
            ]);
        }
    }
    t.print();
    let mut rep = Reporter::from_env("fault_sweep");
    rep.table("resilience_grid", &t);
    rep.finish();
    println!(
        "\nEDEN-style reading: relaxed refresh cuts REF energy linearly while screening \
         quality holds until the retention-failure tail, and SEC-DED extends the usable range."
    );
}
