//! Regenerates paper Table 4: NMP designs at iso area/power budget.

use enmc_arch::physical::PhysicalModel;
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};

fn main() {
    let m = PhysicalModel::tsmc28();
    println!("Table 4: NMP designs at comparable area and power budget\n");
    let mut t = Table::new(&["NMP design", "Configuration", "Est. Area (mm^2)", "Est. Power (mW)"]);
    let rows = [
        ("NDA", "4x4 Functional Units + 1KB Memory", m.nda_unit()),
        ("Chameleon", "4x4 Systolic Array + 1KB Memory", m.chameleon_unit()),
        ("TensorDIMM", "16-lane VPU + 512B Queue x 3", m.tensordimm_unit()),
        ("ENMC (ours)", "FP32x16 + INT4x128 + 256B Buffer x 4", m.enmc_table4()),
    ];
    for (name, cfg, ap) in rows {
        t.row_owned(vec![
            name.into(),
            cfg.into(),
            fmt(ap.area_mm2, 3),
            fmt(ap.power_mw, 1),
        ]);
    }
    t.print();
    let mut rep = Reporter::from_env("table04_baselines");
    rep.table("budgets", &t);
    rep.finish();
    println!("\nPaper reference: NDA 0.445/293.6, Chameleon 0.398/249.0,");
    println!("TensorDIMM 0.457/303.5, ENMC 0.442/285.4");
}
