//! Distributed scale-out projection (paper §8's future-work direction):
//! shard an S10M-class catalogue over 1-32 nodes, each running ENMC DIMMs,
//! with a 100 Gb/s fabric for broadcast/gather.

use enmc_arch::scaleout::{scale_out, Network};
use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{par_rows, sim_config};

fn main() {
    let sys = SystemModel::table3();
    let net = Network::roce_100g();
    // An S10M-class shardable job (scaled 1/8 like fig15; latencies are
    // per-shard so relative scaling is exact).
    let job = ClassificationJob {
        categories: 1_250_000,
        hidden: 512,
        reduced: 128,
        batch: 1,
        candidates: 7_500,
    };
    println!("ENMC scale-out: S10M-class catalogue sharded over N nodes\n");
    let mut t = Table::new(&["nodes", "latency (us)", "speedup", "network share", "efficiency"]);
    let base = scale_out(&sys, &net, &job, Scheme::Enmc, 1);
    // Node counts simulate independently; shard them across the workers.
    let rows = par_rows(&sim_config(), vec![1usize, 2, 4, 8, 16, 32], |&nodes| {
        let r = scale_out(&sys, &net, &job, Scheme::Enmc, nodes);
        vec![
            nodes.to_string(),
            fmt(r.ns / 1e3, 1),
            format!("{:.1}x", base.ns / r.ns),
            format!("{:.1}%", 100.0 * r.network_share),
            format!("{:.0}%", 100.0 * r.efficiency),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t.print();
    let mut rep = Reporter::from_env("scaleout");
    rep.table("node_sweep", &t);
    rep.finish();
    println!("\nScreening makes the gathered payload tiny (candidates only), so the");
    println!("fabric stays a small share of latency until deep into the node sweep.");
}
