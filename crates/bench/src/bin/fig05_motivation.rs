//! Regenerates paper Fig. 5: (a) classifier footprint and CPU execution
//! time vs category count; (b) roofline placement of the major kernels.

use enmc_arch::cpu::CpuModel;
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, fmt_bytes, Table};
use enmc_model::footprint::figure5a_sweep;
use enmc_model::roofline::{figure5b_points, Roofline};

fn main() {
    let mut rep = Reporter::from_env("fig05_motivation");
    println!("Figure 5(a): classifier memory footprint and CPU time (d = 512)\n");
    let cpu = CpuModel::xeon_8280();
    let mut t = Table::new(&["Categories", "Classifier bytes", "Screener bytes", "CPU time (ms)"]);
    for f in figure5a_sweep() {
        let ms = cpu.full_classification_ns(f.categories, f.hidden, 1) / 1e6;
        t.row_owned(vec![
            f.categories.to_string(),
            fmt_bytes(f.classifier_bytes),
            fmt_bytes(f.screener_bytes),
            fmt(ms, 2),
        ]);
    }
    t.print();
    rep.table("fig05a_footprint", &t);

    println!("\nFigure 5(b): roofline placement (Xeon 8280, ridge at {:.1} FLOP/B)\n",
        Roofline::xeon_8280().ridge_point());
    let roof = Roofline::xeon_8280();
    let mut t = Table::new(&["Kernel", "Batch", "FLOP/byte", "Attainable GFLOP/s", "Bound"]);
    for batch in [1usize, 2, 4] {
        for p in figure5b_points(267_744, 512, 128, 13_387, 0.5, batch) {
            let oi = p.intensity();
            t.row_owned(vec![
                p.name.to_string(),
                batch.to_string(),
                fmt(oi, 2),
                fmt(roof.attainable_gflops(oi), 0),
                if roof.is_memory_bound(oi) { "memory" } else { "compute" }.to_string(),
            ]);
        }
    }
    t.print();
    rep.table("fig05b_roofline", &t);
    rep.finish();
    println!("\nShape check: screening and candidate-only classification sit left of");
    println!("the ridge (memory-bound) at deployment batch sizes; the front-end");
    println!("moves right with batch size.");
}
