//! Online serving study (extension): offered load × degrade policy over
//! the four paper workloads, on the whole-system serving simulator.
//!
//! The rank-level `serving` study compares engines on a fixed slice;
//! this one asks the deployment question the paper leaves open: when a
//! query stream overruns an ENMC appliance, is it better to shed
//! requests at full quality or to degrade the screening budget and keep
//! serving? Each row runs `enmc_serve::simulate` at a utilization
//! relative to the workload's own measured capacity, under either a
//! single full-quality tier ("fixed") or a three-step degrade ladder
//! ("adaptive").
//!
//! The candidate budget is capped at 1% of the category space so the
//! calibration pass stays tractable for XMLCNN-670K; the relative
//! ordering of policies is insensitive to the cap (see `DESIGN.md`,
//! "Serving simulation").

use enmc_arch::system::{ClassificationJob, Scheme, SystemModel};
use enmc_bench::report::Reporter;
use enmc_bench::table::{fmt, Table};
use enmc_bench::{par_rows, sim_config};
use enmc_model::workloads::WorkloadId;
use enmc_obs::MetricsRegistry;
use enmc_serve::tier::default_tiers;
use enmc_serve::{simulate, ArrivalProcess, ServeConfig};

const WORKLOADS: [WorkloadId; 4] = [
    WorkloadId::LstmW33K,
    WorkloadId::TransformerW268K,
    WorkloadId::GnmtE32K,
    WorkloadId::Xmlcnn670K,
];
const UTILIZATIONS: [f64; 2] = [0.7, 1.5];
const POLICIES: [&str; 2] = ["fixed", "adaptive"];
const LANES: usize = 2;
const BATCH_MAX: usize = 2;

fn serving_job(id: WorkloadId) -> ClassificationJob {
    let w = id.workload();
    ClassificationJob {
        categories: w.categories,
        hidden: w.hidden,
        reduced: (w.hidden / 4).max(1),
        batch: 1,
        candidates: ((w.categories as f64) * 0.01).round() as usize,
    }
}

fn main() {
    let sim = sim_config();
    let sys = SystemModel::table3();

    println!("Serving load sweep: utilization x degrade policy, 4 paper shapes\n");
    let mut t = Table::new(&[
        "workload", "util", "policy", "completed", "shed", "p99 (us)", "slo %", "transitions",
    ]);

    // Probe each workload's saturation rate once: a full batch on the
    // full-quality tier, converted to requests per kilocycle across all
    // lanes. The sweep's utilizations are multiples of this capacity.
    let capacities = par_rows(&sim, WORKLOADS.to_vec(), |&id| {
        let job = serving_job(id);
        let run = sys.run_sharded(&job.with_load(BATCH_MAX, job.candidates), Scheme::Enmc, &sim);
        let cycles = run.result.rank_report.expect("ENMC runs are cycle-simulated").dram_cycles;
        1000.0 * (LANES * BATCH_MAX) as f64 / cycles.max(1) as f64
    });

    let grid: Vec<(WorkloadId, f64, f64, &str)> = WORKLOADS
        .iter()
        .zip(&capacities)
        .flat_map(|(&id, &cap)| {
            UTILIZATIONS
                .iter()
                .flat_map(move |&u| POLICIES.map(|p| (id, cap, u, p)))
                .collect::<Vec<_>>()
        })
        .collect();

    let rows = par_rows(&sim, grid, |&(id, cap, util, policy)| {
        let job = serving_job(id);
        let ladder = default_tiers(&job);
        let cfg = ServeConfig {
            arrival: ArrivalProcess::Poisson { rate: cap * util },
            requests: 96,
            slo_cycles: 60_000,
            batch_max: BATCH_MAX,
            linger_cycles: 1_500,
            lanes: LANES,
            tiers: if policy == "fixed" { ladder[..1].to_vec() } else { ladder },
            degrade_queue_depth: 6,
            upgrade_queue_depth: 2,
            shed_queue_depth: 24,
            seed: 0x5e12,
            offload: None,
        };
        let mut registry = MetricsRegistry::new();
        let out = simulate(&sys, &job, &cfg, &sim_config(), &mut registry, None);
        let us = |cycles: f64| cycles * out.ns_per_cycle / 1e3;
        vec![
            id.workload().abbr.to_string(),
            fmt(util, 1),
            policy.to_string(),
            out.completed.to_string(),
            out.shed.to_string(),
            fmt(us(out.latency.p99()), 1),
            fmt(100.0 * out.slo_attainment(), 1),
            out.degrade_transitions.to_string(),
        ]
    });
    for row in rows {
        t.row_owned(row);
    }
    t.print();

    let mut rep = Reporter::from_env("serve_load");
    rep.table("load_sweep", &t);
    rep.note(
        "utilization is relative to each workload's probed full-quality capacity; \
         candidates capped at 1% of categories to bound calibration time",
    );
    rep.finish();
}
