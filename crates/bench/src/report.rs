//! Shared machine-readable report emitter for the harness binaries.
//!
//! Every `fig*` / `table*` binary prints fixed-width tables for humans; a
//! [`Reporter`] mirrors those tables into one JSON document so downstream
//! tooling (plotting scripts, CI diffs) can consume the same numbers
//! without scraping stdout.
//!
//! The destination is opt-in and resolved once at startup:
//!
//! 1. a `--json <file>` argument wins;
//! 2. otherwise, if the `ENMC_REPORT_DIR` environment variable is set, the
//!    report lands in `<dir>/<name>.json`;
//! 3. otherwise the reporter is inert and costs nothing.

use crate::table::Table;
use enmc_obs::Value;
use std::path::PathBuf;

/// Collects tables and notes from one harness binary and writes them as a
/// single JSON document on [`Reporter::finish`].
#[derive(Debug)]
pub struct Reporter {
    name: String,
    dest: Option<PathBuf>,
    tables: Vec<(String, Value)>,
    notes: Vec<String>,
}

impl Reporter {
    /// A reporter for the binary `name`, resolving its destination from
    /// the process arguments (`--json <file>`) and the `ENMC_REPORT_DIR`
    /// environment variable.
    pub fn from_env(name: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let dest = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var_os("ENMC_REPORT_DIR")
                    .map(|dir| PathBuf::from(dir).join(format!("{name}.json")))
            });
        Reporter { name: name.to_string(), dest, tables: Vec::new(), notes: Vec::new() }
    }

    /// A reporter writing to an explicit path (primarily for tests).
    pub fn to_path(name: &str, path: impl Into<PathBuf>) -> Self {
        Reporter {
            name: name.to_string(),
            dest: Some(path.into()),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// `true` when [`Reporter::finish`] will write somewhere.
    pub fn active(&self) -> bool {
        self.dest.is_some()
    }

    /// Records `table` under `key`. Cheap no-op when inactive.
    pub fn table(&mut self, key: &str, table: &Table) {
        if !self.active() {
            return;
        }
        let columns =
            Value::Arr(table.headers().iter().map(|h| Value::Str(h.clone())).collect());
        let rows = Value::Arr(
            table
                .rows()
                .iter()
                .map(|r| Value::Arr(r.iter().map(|c| Value::Str(c.clone())).collect()))
                .collect(),
        );
        self.tables.push((
            key.to_string(),
            Value::Obj(vec![("columns".to_string(), columns), ("rows".to_string(), rows)]),
        ));
    }

    /// Attaches a free-form annotation.
    pub fn note(&mut self, text: &str) {
        if self.active() {
            self.notes.push(text.to_string());
        }
    }

    /// Serializes everything collected so far.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("tables".to_string(), Value::Obj(self.tables.clone())),
            (
                "notes".to_string(),
                Value::Arr(self.notes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ])
        .to_json()
    }

    /// Writes the report to the resolved destination, if any. Failures are
    /// reported on stderr but never abort the harness run — the printed
    /// tables remain the source of truth.
    pub fn finish(&self) {
        let Some(dest) = &self.dest else { return };
        match std::fs::write(dest, self.to_json()) {
            Ok(()) => eprintln!("report written to {}", dest.display()),
            Err(e) => eprintln!("cannot write report {}: {e}", dest.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(&["workload", "speedup"]);
        t.row(&["GNMT-E32K", "11.8"]);
        t.row(&["XMLCNN-670K", "17.4"]);
        t
    }

    #[test]
    fn inactive_reporter_collects_nothing() {
        let mut rep = Reporter {
            name: "x".to_string(),
            dest: None,
            tables: Vec::new(),
            notes: Vec::new(),
        };
        rep.table("t", &sample_table());
        rep.note("ignored");
        assert!(!rep.active());
        assert!(rep.tables.is_empty() && rep.notes.is_empty());
        rep.finish(); // no destination: must be a no-op
    }

    #[test]
    fn json_mirrors_tables_and_notes() {
        let mut rep = Reporter::to_path("fig99", "/nonexistent/ignored.json");
        rep.table("speedups", &sample_table());
        rep.note("scaled shapes");
        let v = Value::parse(&rep.to_json()).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig99"));
        let t = v.get("tables").and_then(|t| t.get("speedups")).expect("table present");
        let cols = t.get("columns").and_then(Value::as_arr).unwrap();
        assert_eq!(cols.len(), 2);
        let rows = t.get("rows").and_then(Value::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].as_arr().unwrap()[0].as_str(), Some("GNMT-E32K"));
        let notes = v.get("notes").and_then(Value::as_arr).unwrap();
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn finish_writes_the_file() {
        let path = std::env::temp_dir().join("enmc-bench-report-test.json");
        let mut rep = Reporter::to_path("fig00", &path);
        rep.table("t", &sample_table());
        rep.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = Value::parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig00"));
        let _ = std::fs::remove_file(&path);
    }
}
