//! Shared infrastructure for the figure/table regeneration harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). This library holds what they share:
//!
//! * [`eval_shape`] — the scaled-down "evaluation shapes" used for
//!   algorithm-level experiments (quality needs real matrices in memory;
//!   performance experiments always use the full nominal shapes);
//! * [`candidate_fraction`] — the per-workload candidate budgets implied
//!   by the paper's reported speedups;
//! * [`fit_pipeline`] — synthesize + distill for one workload;
//! * [`table`] — fixed-width table printing for harness output;
//! * [`report`] — the shared JSON report emitter: every binary mirrors its
//!   printed tables into `<name>.json` when `--json <file>` or
//!   `ENMC_REPORT_DIR` asks for it;
//! * [`trajectory`] — the bench-trajectory emitter: headline metrics land
//!   in `BENCH_<name>.json` records that `enmc bench-diff` gates on.

pub mod report;
pub mod table;
pub mod trajectory;

use enmc_par::SimConfig;
use enmc_model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc_model::workloads::{Workload, WorkloadId};
use enmc_screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc_screen::screener::{Screener, ScreenerConfig};
use enmc_screen::train::fit_least_squares;
use enmc_tensor::quant::Precision;

/// Bench-wide execution policy: `--threads N` on the command line wins,
/// then the `ENMC_THREADS` environment hook, else sequential. Every
/// figure/table binary reads its policy from here so the CI matrix can
/// drive the whole harness through one environment variable.
pub fn sim_config() -> SimConfig {
    let args: Vec<String> = std::env::args().collect();
    let flag = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    SimConfig::resolve(flag, false)
}

/// Bench-wide cost backend: `--cost-model {cycle-accurate|surrogate}`
/// picks who answers sweep points, `--audit-rate R` (surrogate only,
/// default 0.1) sets the fraction of predictions re-run cycle-accurately.
/// Mirrors the `enmc` CLI flags so the CI surrogate gate drives the grid
/// benches the same way it drives the serving and fault commands.
///
/// # Panics
///
/// Panics (with the offending value) on an unknown model name or an
/// audit rate outside `[0, 1]` — bench binaries fail fast on bad flags.
pub fn cost_backend() -> enmc_surrogate::CostBackend {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    match get("--cost-model").as_deref() {
        None | Some("cycle-accurate") | Some("cycle") => {
            enmc_surrogate::CostBackend::CycleAccurate
        }
        Some("surrogate") => {
            let audit_rate = get("--audit-rate")
                .map(|r| {
                    r.parse::<f64>()
                        .ok()
                        .filter(|v| v.is_finite() && (0.0..=1.0).contains(v))
                        .unwrap_or_else(|| panic!("--audit-rate must be in [0, 1], got '{r}'"))
                })
                .unwrap_or(0.1);
            enmc_surrogate::CostBackend::Surrogate { audit_rate }
        }
        Some(other) => panic!("--cost-model must be 'cycle-accurate' or 'surrogate', got '{other}'"),
    }
}

/// Maps `f` over `items` under the bench execution policy. Results keep
/// the input order, so a parallel harness run prints exactly the
/// sequential output — `--threads` only changes wall-clock time.
pub fn par_rows<T, U, F>(cfg: &SimConfig, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    enmc_par::par_map(cfg.worker_count(), items, |_, item| f(&item))
}

/// Fits several workloads under the bench execution policy; the results
/// always come back in `ids` order.
pub fn fit_pipelines(
    ids: &[WorkloadId],
    scale: f64,
    precision: Precision,
    seed: u64,
    cfg: &SimConfig,
) -> Vec<FittedWorkload> {
    par_rows(cfg, ids.to_vec(), |&id| fit_pipeline(id, scale, precision, seed))
}

/// Algorithm-level evaluation shape for a workload: a representative slice
/// of the category space that fits comfortably in memory, with the hidden
/// dimension capped so the SVD baseline's `O(d³)` factorization stays
/// tractable. The caps preserve each workload's relative geometry (LSTM
/// keeps the widest hidden dimension, XMLCNN the most categories).
/// Performance experiments never use this — they use the nominal `(l, d)`.
pub fn eval_shape(w: &Workload) -> (usize, usize) {
    let (l_cap, d_cap) = match w.id {
        WorkloadId::LstmW33K => (4000, 256),
        WorkloadId::TransformerW268K => (5500, 224),
        WorkloadId::GnmtE32K => (4500, 240),
        _ => (6000, 192),
    };
    (w.categories.min(l_cap), w.hidden.min(d_cap))
}

/// Stable per-workload seed perturbation so each workload's synthetic data
/// is distinct even under a shared base seed.
fn workload_seed(id: WorkloadId, seed: u64) -> u64 {
    let tag = match id {
        WorkloadId::LstmW33K => 1u64,
        WorkloadId::TransformerW268K => 2,
        WorkloadId::GnmtE32K => 3,
        WorkloadId::Xmlcnn670K => 4,
        WorkloadId::S1M => 5,
        WorkloadId::S10M => 6,
        WorkloadId::S100M => 7,
    };
    seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Fraction of categories that must be computed exactly for each workload,
/// back-derived from the paper's Fig. 11 speedups via
/// `speedup ≈ 1 / (3.1% screening + candidate fraction)`.
pub fn candidate_fraction(id: WorkloadId) -> f64 {
    match id {
        WorkloadId::LstmW33K => 0.144,         // 5.7×
        WorkloadId::TransformerW268K => 0.128, // 6.3×
        WorkloadId::GnmtE32K => 0.054,         // 11.8×
        WorkloadId::Xmlcnn670K => 0.020,       // 17.4× ("candidates reduced by 50×")
        // Quality needs a roughly fixed *absolute* top-K candidate set, so
        // the fraction decays as the synthetic catalogues scale (this is
        // what lets ENMC's streaming advantage widen in Fig. 15).
        WorkloadId::S1M => 0.015,
        WorkloadId::S10M => 0.006,
        WorkloadId::S100M => 0.0025,
    }
}

/// A fitted algorithm-level pipeline for one workload's eval shape.
pub struct FittedWorkload {
    /// The workload description.
    pub workload: Workload,
    /// The synthetic classifier.
    pub synth: SyntheticClassifier,
    /// The approximate classifier (screener distilled, policy top-m).
    pub classifier: ApproxClassifier,
    /// Evaluation shape `(l_eval, d_eval)`.
    pub shape: (usize, usize),
}

/// Synthesizes and distills one workload at its eval shape.
///
/// # Panics
///
/// Panics if generation fails (cannot happen for the Table 2 shapes).
pub fn fit_pipeline(id: WorkloadId, scale: f64, precision: Precision, seed: u64) -> FittedWorkload {
    let workload = id.workload();
    let (l, d) = eval_shape(&workload);
    let seed = workload_seed(id, seed);
    // Recommendation catalogues are broader and flatter than vocabularies:
    // more clusters, weaker query concentration.
    let recommendation = matches!(workload.task, enmc_model::workloads::TaskKind::Recommendation);
    let synth_cfg = SynthesisConfig {
        categories: l,
        hidden: d,
        clusters: if recommendation { 96.min(l) } else { 48.min(l) },
        row_noise: if recommendation { 0.5 } else { 0.4 },
        zipf_exponent: if recommendation { 0.9 } else { 1.0 },
        bias_scale: 1.0,
        query_signal: if recommendation { 1.9 } else { 2.2 },
        seed,
    };
    let synth = SyntheticClassifier::generate(&synth_cfg).expect("valid synth config");
    let cfg = ScreenerConfig { scale, precision, per_row_scales: false, seed: seed ^ 0x51ee };
    let mut screener = Screener::new(l, d, &cfg).expect("valid screener dims");
    let train: Vec<_> = synth
        .sample_queries_seeded(192, seed ^ 0x7421)
        .into_iter()
        .map(|q| q.hidden)
        .collect();
    fit_least_squares(&mut screener, synth.weights(), synth.bias(), &train, 1e-4);
    let m = ((l as f64) * candidate_fraction(id)).round() as usize;
    let mut classifier = ApproxClassifier::new(
        synth.weights().clone(),
        synth.bias().clone(),
        screener,
        SelectionPolicy::TopM(m.max(1)),
    )
    .expect("shape-consistent classifier");
    // Frozen so the harness binaries can classify through shared
    // references when sharding query loops across workers.
    classifier.freeze();
    FittedWorkload { workload, synth, classifier, shape: (l, d) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_shapes_are_bounded() {
        for id in WorkloadId::table2() {
            let (l, d) = eval_shape(&id.workload());
            assert!(l <= 6000 && d <= 256, "{id}: {l}x{d}");
        }
    }

    #[test]
    fn candidate_fractions_order_matches_paper_speedups() {
        // Higher paper speedup → smaller candidate fraction.
        assert!(
            candidate_fraction(WorkloadId::Xmlcnn670K)
                < candidate_fraction(WorkloadId::GnmtE32K)
        );
        assert!(
            candidate_fraction(WorkloadId::GnmtE32K)
                < candidate_fraction(WorkloadId::TransformerW268K)
        );
    }

    #[test]
    fn fit_pipeline_produces_consistent_shapes() {
        let f = fit_pipeline(WorkloadId::GnmtE32K, 0.25, Precision::Fp32, 1);
        assert_eq!(f.classifier.categories(), f.shape.0);
        assert_eq!(f.synth.hidden(), f.shape.1);
    }

    #[test]
    fn par_rows_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let seq = par_rows(&SimConfig::sequential(), items.clone(), |&i| i * i);
        let par = par_rows(&SimConfig::with_threads(4), items, |&i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[36], 36 * 36);
    }
}
