//! Bench-trajectory emission: each harness binary can mirror its headline
//! numbers into a stable [`BenchRecord`] (`BENCH_<name>.json`) so runs can
//! be diffed over time with `enmc bench-diff`.
//!
//! Metrics come in two kinds with different gate policies (see
//! `enmc_perf::bench`):
//!
//! * **deterministic** — simulated cycles, energy, speedups, quality.
//!   Bit-stable across hosts and worker counts; *any* drift fails a diff.
//! * **wall** — host timings, recorded as a median over N samples.
//!   Only regressions beyond a noise tolerance fail.
//!
//! Like [`crate::report::Reporter`], the destination is opt-in and
//! resolved once at startup:
//!
//! 1. a `--bench-json <file>` argument wins;
//! 2. otherwise, if `ENMC_BENCH_DIR` is set, the record lands in
//!    `<dir>/BENCH_<name>.json`;
//! 3. otherwise the emitter is inert and costs nothing.

use enmc_perf::bench::BenchRecord;
use std::path::PathBuf;
use std::time::Instant;

/// Collects metrics from one harness binary and writes them as a
/// `BENCH_<name>.json` record on [`BenchEmitter::finish`].
#[derive(Debug)]
pub struct BenchEmitter {
    record: BenchRecord,
    dest: Option<PathBuf>,
}

impl BenchEmitter {
    /// An emitter for the binary `name`, resolving its destination from
    /// the process arguments (`--bench-json <file>`) and the
    /// `ENMC_BENCH_DIR` environment variable.
    pub fn from_env(name: &str) -> Self {
        let args: Vec<String> = std::env::args().collect();
        let dest = args
            .iter()
            .position(|a| a == "--bench-json")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var_os("ENMC_BENCH_DIR")
                    .map(|dir| PathBuf::from(dir).join(format!("BENCH_{name}.json")))
            });
        BenchEmitter { record: BenchRecord::new(name), dest }
    }

    /// An emitter writing to an explicit path (primarily for tests).
    pub fn to_path(name: &str, path: impl Into<PathBuf>) -> Self {
        BenchEmitter { record: BenchRecord::new(name), dest: Some(path.into()) }
    }

    /// `true` when [`BenchEmitter::finish`] will write somewhere.
    pub fn active(&self) -> bool {
        self.dest.is_some()
    }

    /// Records the deterministic metric `key`. Cheap no-op when inactive.
    pub fn det(&mut self, key: &str, value: f64) {
        if self.active() {
            self.record.metric(key, value);
        }
    }

    /// Records a wall metric as the median of `samples_ns`. No-op when
    /// inactive or when `samples_ns` is empty.
    pub fn wall_ns(&mut self, key: &str, samples_ns: &[f64]) {
        if self.active() && !samples_ns.is_empty() {
            self.record.wall_metric(key, samples_ns);
        }
    }

    /// Runs `f` once and records its wall time under `key` (a median of
    /// one sample). The closure always runs — timing is just skipped when
    /// the emitter is inert — so harness behaviour doesn't depend on
    /// whether a record is being written.
    pub fn timed<T>(&mut self, key: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let ns = start.elapsed().as_nanos() as f64;
        self.wall_ns(key, &[ns]);
        out
    }

    /// The record serialized as it will be written.
    pub fn to_json(&self) -> String {
        self.record.to_json()
    }

    /// Writes the record to the resolved destination, if any. Failures are
    /// reported on stderr but never abort the harness run.
    pub fn finish(&self) {
        let Some(dest) = &self.dest else { return };
        match std::fs::write(dest, format!("{}\n", self.record.to_json())) {
            Ok(()) => eprintln!("bench record written to {}", dest.display()),
            Err(e) => eprintln!("cannot write bench record {}: {e}", dest.display()),
        }
    }
}

/// Times `f` over `samples` repetitions and returns the per-run wall
/// times in nanoseconds along with the last run's output. Callers feed
/// the samples to [`BenchEmitter::wall_ns`], which records the median.
///
/// # Panics
///
/// Panics if `samples` is zero.
pub fn time_samples<T>(samples: usize, mut f: impl FnMut() -> T) -> (T, Vec<f64>) {
    assert!(samples > 0, "time_samples needs at least one sample");
    let mut ns = Vec::with_capacity(samples);
    let mut out = None;
    for _ in 0..samples {
        let start = Instant::now();
        out = Some(f());
        ns.push(start.elapsed().as_nanos() as f64);
    }
    (out.expect("samples > 0"), ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_perf::bench::diff;

    #[test]
    fn inactive_emitter_collects_nothing_and_finish_is_a_noop() {
        let mut em = BenchEmitter { record: BenchRecord::new("x"), dest: None };
        em.det("cycles", 10.0);
        em.wall_ns("sim", &[1.0, 2.0]);
        assert!(!em.active());
        let parsed = BenchRecord::parse(&em.to_json()).unwrap();
        assert!(parsed.deterministic.is_empty() && parsed.wall.is_empty());
        em.finish();
    }

    #[test]
    fn timed_runs_the_closure_even_when_inert() {
        let mut em = BenchEmitter { record: BenchRecord::new("x"), dest: None };
        let v = em.timed("sim", || 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn emitted_record_round_trips_and_self_diffs_clean() {
        let path = std::env::temp_dir().join("BENCH_enmc-trajectory-test.json");
        let mut em = BenchEmitter::to_path("fig00", &path);
        em.det("speedup/geomean/enmc", 56.5);
        em.det("sim_cycles/lstm/b1", 12_345.0);
        let (sum, ns) = time_samples(3, || (0..100u64).sum::<u64>());
        assert_eq!(sum, 4950);
        assert_eq!(ns.len(), 3);
        em.wall_ns("harness/sum_ns", &ns);
        em.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let rec = BenchRecord::parse(text.trim_end()).unwrap();
        assert_eq!(rec.name, "fig00");
        assert_eq!(rec.deterministic.len(), 2);
        assert_eq!(rec.wall.len(), 1);
        let report = diff(&rec, &rec, 0.2).unwrap();
        assert!(!report.failed(), "a record must self-diff clean:\n{}", report.render());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn time_samples_rejects_zero() {
        let _ = time_samples(0, || ());
    }
}
