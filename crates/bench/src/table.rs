//! Fixed-width ASCII tables for harness output.

/// A simple fixed-width table printer.
///
/// # Example
///
/// ```
/// use enmc_bench::table::Table;
/// let mut t = Table::new(&["workload", "speedup"]);
/// t.row(&["GNMT-E32K", "11.8"]);
/// let s = t.render();
/// assert!(s.contains("GNMT-E32K"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends one row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a speedup as `N.N×`.
pub fn fmt_speedup(v: f64) -> String {
    format!("{v:.1}x")
}

/// Formats a byte count in human units.
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(10), "10 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.00 MiB");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(7.345), "7.3x");
        assert_eq!(fmt(1.23456, 2), "1.23");
    }
}
