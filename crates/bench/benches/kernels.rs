//! Criterion micro-benchmarks for the numeric kernels on the critical
//! path of screening and candidate-only classification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enmc_tensor::dist::standard_normal;
use enmc_tensor::quant::{Precision, QuantMatrix, QuantVector};
use enmc_tensor::select::top_k_indices;
use enmc_tensor::{Matrix, SparseProjection, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = standard_normal(rng);
    }
    m
}

fn random_vector(rng: &mut StdRng, n: usize) -> Vector {
    (0..n).map(|_| standard_normal(rng)).collect()
}

fn bench_matvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("matvec_fp32");
    for l in [1024usize, 8192] {
        let d = 128;
        let m = random_matrix(&mut rng, l, d);
        let h = random_vector(&mut rng, d);
        g.throughput(Throughput::Elements((l * d) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| black_box(m.matvec(black_box(&h))))
        });
    }
    g.finish();
}

fn bench_quant_matvec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let l = 8192;
    let k = 128;
    let m = random_matrix(&mut rng, l, k);
    let h = random_vector(&mut rng, k);
    let qm = QuantMatrix::quantize(&m, Precision::Int4).expect("nonempty");
    let qh = QuantVector::quantize(&h, Precision::Int4).expect("nonempty");
    let mut g = c.benchmark_group("screening_matvec_int4");
    g.throughput(Throughput::Elements((l * k) as u64));
    g.bench_function("8192x128", |b| b.iter(|| black_box(qm.matvec_quant(black_box(&qh)))));
    g.finish();
}

fn bench_projection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let p = SparseProjection::new(128, 512, 7).expect("valid dims");
    let h = random_vector(&mut rng, 512);
    c.bench_function("sparse_projection_128x512", |b| {
        b.iter(|| black_box(p.project(black_box(&h))))
    });
}

fn bench_topk(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let scores: Vec<f32> = (0..100_000).map(|_| standard_normal(&mut rng)).collect();
    let mut g = c.benchmark_group("top_k");
    for k in [10usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(top_k_indices(black_box(&scores), k)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matvec, bench_quant_matvec, bench_projection, bench_topk
}
criterion_main!(benches);
