//! Criterion benchmarks for the algorithm layer: screener distillation,
//! approximate inference, and the offline costs of the baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use enmc_model::synth::{SynthesisConfig, SyntheticClassifier};
use enmc_screen::fgd::{FgdConfig, FgdIndex};
use enmc_screen::infer::{ApproxClassifier, SelectionPolicy};
use enmc_screen::screener::{Screener, ScreenerConfig};
use enmc_screen::svd::SvdSoftmax;
use enmc_screen::train::{fit_least_squares, train_sgd, TrainConfig};
use enmc_tensor::quant::Precision;
use enmc_tensor::Vector;
use std::hint::black_box;

fn synth() -> SyntheticClassifier {
    SyntheticClassifier::generate(&SynthesisConfig {
        categories: 2000,
        hidden: 96,
        clusters: 32,
        row_noise: 0.4,
        zipf_exponent: 1.0,
        bias_scale: 1.0,
        query_signal: 2.2,
        seed: 21,
    })
    .expect("valid synth config")
}

fn samples(s: &SyntheticClassifier, n: usize) -> Vec<Vector> {
    s.sample_queries_seeded(n, 5).into_iter().map(|q| q.hidden).collect()
}

fn bench_distillation(c: &mut Criterion) {
    let s = synth();
    let train = samples(&s, 96);
    c.bench_function("fit_least_squares_2000x96", |b| {
        b.iter(|| {
            let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Fp32, per_row_scales: false, seed: 1 };
            let mut screener = Screener::new(2000, 96, &cfg).expect("dims");
            black_box(fit_least_squares(&mut screener, s.weights(), s.bias(), &train, 1e-4))
        })
    });
    c.bench_function("train_sgd_1epoch_2000x96", |b| {
        b.iter(|| {
            let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Fp32, per_row_scales: false, seed: 1 };
            let mut screener = Screener::new(2000, 96, &cfg).expect("dims");
            let config = TrainConfig { epochs: 1, ..Default::default() };
            black_box(train_sgd(&mut screener, s.weights(), s.bias(), &train, &config))
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    let s = synth();
    let train = samples(&s, 96);
    let cfg = ScreenerConfig { scale: 0.25, precision: Precision::Int4, per_row_scales: false, seed: 1 };
    let mut screener = Screener::new(2000, 96, &cfg).expect("dims");
    fit_least_squares(&mut screener, s.weights(), s.bias(), &train, 1e-4);
    let mut clf = ApproxClassifier::new(
        s.weights().clone(),
        s.bias().clone(),
        screener,
        SelectionPolicy::TopM(100),
    )
    .expect("shapes");
    let q = &samples(&s, 1)[0];
    c.bench_function("approx_classify_2000x96_m100", |b| {
        b.iter(|| black_box(clf.classify(black_box(q))))
    });
    c.bench_function("full_classify_2000x96", |b| {
        b.iter(|| black_box(clf.full_logits(black_box(q))))
    });
}

fn bench_baseline_builds(c: &mut Criterion) {
    let s = synth();
    let mut g = c.benchmark_group("baseline_offline");
    g.sample_size(10);
    g.bench_function("svd_factorize_2000x96", |b| {
        b.iter(|| {
            black_box(
                SvdSoftmax::new(s.weights(), s.bias().clone(), 12, 20).expect("valid"),
            )
        })
    });
    g.bench_function("fgd_build_2000x96", |b| {
        b.iter(|| {
            black_box(
                FgdIndex::build(
                    s.weights().clone(),
                    s.bias().clone(),
                    &FgdConfig { pool: 128, ..Default::default() },
                )
                .expect("valid"),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_distillation, bench_inference, bench_baseline_builds
}
criterion_main!(benches);
