//! Criterion benchmarks for the simulation substrates: DRAM streaming,
//! the ENMC rank-unit, and the instruction codec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use enmc_arch::config::EnmcConfig;
use enmc_arch::unit::{RankJob, RankUnit, UnitParams};
use enmc_dram::{AddressMapping, DramConfig, DramSystem, MemRequest};
use enmc_isa::{BufferId, Instruction, RegId};
use std::hint::black_box;

fn bench_dram_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_stream_read");
    let bytes = 256 * 1024u64;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("256KiB_single_rank", |b| {
        b.iter(|| {
            let mut sys = DramSystem::with_mapping(
                DramConfig::enmc_single_rank(),
                AddressMapping::RoRaBaCoBg,
            );
            let total = bytes / 64;
            let mut sent = 0u64;
            let mut done = 0u64;
            while done < total {
                while sent < total && sys.enqueue(MemRequest::read(sent * 64)).is_some() {
                    sent += 1;
                }
                sys.tick();
                done += sys.drain_completions().len() as u64;
            }
            black_box(sys.cycle())
        })
    });
    g.finish();
}

fn bench_rank_unit(c: &mut Criterion) {
    let unit = RankUnit::new(UnitParams::enmc(&EnmcConfig::table3()));
    let job = RankJob {
        categories: 4096,
        hidden: 512,
        reduced: 128,
        batch: 1,
        candidates_per_item: vec![82],
    };
    c.bench_function("enmc_rank_unit_4096cat", |b| {
        b.iter(|| black_box(unit.simulate(black_box(&job))))
    });
}

fn bench_isa_codec(c: &mut Criterion) {
    let instructions: Vec<Instruction> = vec![
        Instruction::Init { reg: RegId::VocabSize, data: 123_456 },
        Instruction::Ldr { buffer: BufferId::WeightInt4, addr: 0x1000 },
        Instruction::MulAddInt4 { a: BufferId::FeatureInt4, b: BufferId::WeightInt4 },
        Instruction::Filter { buffer: BufferId::PsumInt4 },
        Instruction::Softmax,
        Instruction::Return,
    ];
    c.bench_function("isa_encode_decode_6inst", |b| {
        b.iter(|| {
            for inst in &instructions {
                let frame = inst.encode();
                black_box(Instruction::decode(&frame).expect("roundtrip"));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dram_stream, bench_rank_unit, bench_isa_codec
}
criterion_main!(benches);
