//! Lowering tasks into ENMC instruction streams.

use crate::layout::MemoryLayout;
use crate::tile::Tiling;
use crate::{CompileError, TaskDescriptor};
use enmc_isa::{BufferId, Instruction, Program, RegId};

/// Emits the static screening-phase program for `task`.
///
/// Structure (per Fig. 9(b)'s compiled loop):
///
/// ```text
/// INIT  <shape & address registers, threshold>
/// for b in 0..batch:
///     LDR feature buffer
///     for t in 0..screen_tiles:
///         LDR  weight tile
///         MUL_ADD_INT4 feature, weight
///     FILTER psum            ; candidates → index buffer → controller
///     BARRIER                ; wait for executor's candidate work
///     MOVE output ← psum     ; approximate values for non-candidates
///     SOFTMAX / SIGMOID
///     RETURN
/// CLR
/// ```
///
/// The full-precision candidate instructions are *not* in this program —
/// the ENMC controller's instruction generator creates them at runtime
/// from the indices the FILTER step produced (paper §5.2).
///
/// # Errors
///
/// Propagates [`CompileError`] from tiling.
pub fn lower_screening(
    task: &TaskDescriptor,
    layout: &MemoryLayout,
    buffer_bytes: usize,
) -> Result<Program, CompileError> {
    let tiling = Tiling::new(task, buffer_bytes)?;
    let mut p = Program::new();
    // Initialization: shapes, addresses, threshold.
    p.push(Instruction::Init { reg: RegId::VocabSize, data: task.categories as u64 });
    p.push(Instruction::Init { reg: RegId::HiddenDim, data: task.hidden as u64 });
    p.push(Instruction::Init { reg: RegId::ReducedDim, data: task.reduced as u64 });
    p.push(Instruction::Init { reg: RegId::ScreenWeightAddr, data: layout.screen_weights });
    p.push(Instruction::Init { reg: RegId::ScreenWeightSize, data: task.screen_weight_bytes() });
    p.push(Instruction::Init { reg: RegId::ClassifierAddr, data: layout.classifier });
    p.push(Instruction::Init { reg: RegId::FeatureAddr, data: layout.features });
    p.push(Instruction::Init { reg: RegId::ScreenBiasAddr, data: layout.screen_bias });
    p.push(Instruction::Init { reg: RegId::Threshold, data: task.threshold_bits as u64 });
    p.push(Instruction::Init { reg: RegId::WeightScale, data: task.weight_scale_bits as u64 });
    p.push(Instruction::Init { reg: RegId::FeatureScale, data: task.feature_scale_bits as u64 });

    let feature_stride = (task.screen_precision.nbytes(task.reduced) as u64).div_ceil(64) * 64;
    for b in 0..task.batch {
        p.push(Instruction::Ldr {
            buffer: BufferId::FeatureInt4,
            addr: layout.features + b as u64 * feature_stride,
        });
        for t in 0..tiling.screen_tiles {
            p.push(Instruction::Ldr {
                buffer: BufferId::WeightInt4,
                addr: layout.screen_weights + (t * tiling.buffer_bytes) as u64,
            });
            p.push(Instruction::MulAddInt4 {
                a: BufferId::FeatureInt4,
                b: BufferId::WeightInt4,
            });
        }
        p.push(Instruction::Filter { buffer: BufferId::PsumInt4 });
        p.push(Instruction::Barrier);
        p.push(Instruction::Move { dst: BufferId::Output, src: BufferId::PsumInt4 });
        p.push(if task.softmax { Instruction::Softmax } else { Instruction::Sigmoid });
        p.push(Instruction::Return);
    }
    p.push(Instruction::Clr);
    Ok(p)
}

/// The per-candidate program the ENMC controller generates at runtime:
/// gather the candidate's FP32 row tile by tile and accumulate against the
/// FP32 feature buffer.
pub fn estimate_candidate_program(
    task: &TaskDescriptor,
    layout: &MemoryLayout,
    buffer_bytes: usize,
    candidate: usize,
) -> Result<Program, CompileError> {
    let tiling = Tiling::new(task, buffer_bytes)?;
    let mut p = Program::new();
    let row = layout.classifier_row(task, candidate);
    for t in 0..tiling.tiles_per_row {
        p.push(Instruction::Ldr {
            buffer: BufferId::WeightFp32,
            addr: row + (t * buffer_bytes) as u64,
        });
        p.push(Instruction::MulAddFp32 { a: BufferId::FeatureFp32, b: BufferId::WeightFp32 });
    }
    p.push(Instruction::Move { dst: BufferId::Output, src: BufferId::PsumFp32 });
    Ok(p)
}

/// The homogeneous FP32 program a naive NMP (TensorDIMM-style) runs: every
/// classifier row is streamed at full precision with no screening — the
/// baseline of the architecture comparison. When the logic-side buffers
/// cannot hold the running output tile, partial results spill to DRAM
/// (paper §7.2: "the buffer overflow results in frequent DRAM memory
/// accesses"); the spill STR/LDR pairs are included here.
///
/// # Errors
///
/// Propagates [`CompileError`] from tiling.
pub fn lower_full_classification(
    task: &TaskDescriptor,
    layout: &MemoryLayout,
    buffer_bytes: usize,
    output_buffer_bytes: usize,
) -> Result<Program, CompileError> {
    let tiling = Tiling::new(task, buffer_bytes)?;
    let mut p = Program::new();
    p.push(Instruction::Init { reg: RegId::VocabSize, data: task.categories as u64 });
    p.push(Instruction::Init { reg: RegId::ClassifierAddr, data: layout.classifier });
    // Output logits produced per batch item: l × 4 bytes. Each time the
    // output tile fills, spill it.
    let outputs_per_spill = (output_buffer_bytes / 4).max(1);
    for b in 0..task.batch {
        p.push(Instruction::Ldr {
            buffer: BufferId::FeatureFp32,
            addr: layout.features + (b * task.hidden * 4) as u64,
        });
        let mut produced = 0usize;
        for row in 0..task.categories {
            let base = layout.classifier_row(task, row);
            for t in 0..tiling.tiles_per_row {
                p.push(Instruction::Ldr {
                    buffer: BufferId::WeightFp32,
                    addr: base + (t * buffer_bytes) as u64,
                });
                p.push(Instruction::MulAddFp32 {
                    a: BufferId::FeatureFp32,
                    b: BufferId::WeightFp32,
                });
            }
            produced += 1;
            if produced.is_multiple_of(outputs_per_spill) {
                p.push(Instruction::Str {
                    buffer: BufferId::PsumFp32,
                    addr: layout.outputs + ((b * task.categories + produced) * 4) as u64,
                });
            }
        }
        p.push(Instruction::Softmax);
        p.push(Instruction::Return);
    }
    p.push(Instruction::Clr);
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_isa::Instruction as I;

    fn small_task() -> (TaskDescriptor, MemoryLayout) {
        let task = TaskDescriptor::paper_default(1024, 64, 2);
        let layout = MemoryLayout::for_task(&task);
        (task, layout)
    }

    #[test]
    fn screening_program_structure() {
        let (task, layout) = small_task();
        let p = lower_screening(&task, &layout, 256).unwrap();
        let stats = p.stats();
        // k = 16 → 1024·16 = 16384 INT4 elems → 32 tiles per batch item.
        let tiles = 32;
        // Per batch item: 1 feature LDR + tiles·(LDR+MULADD) + FILTER +
        // BARRIER + MOVE + act + RETURN.
        let expected = 11 + task.batch * (1 + tiles * 2 + 5) + 1;
        assert_eq!(stats.total, expected);
        // First instruction initializes the vocab size.
        assert!(matches!(p.instructions()[0], I::Init { .. }));
        // Ends with CLR.
        assert_eq!(*p.instructions().last().unwrap(), I::Clr);
    }

    #[test]
    fn screening_weight_addresses_cover_stream_contiguously() {
        let (task, layout) = small_task();
        let p = lower_screening(&task, &layout, 256).unwrap();
        let mut weight_addrs: Vec<u64> = p
            .iter()
            .filter_map(|i| match i {
                I::Ldr { buffer: BufferId::WeightInt4, addr } => Some(*addr),
                _ => None,
            })
            .collect();
        weight_addrs.truncate(32); // first batch item
        let expect: Vec<u64> = (0..32).map(|t| t * 256).collect();
        assert_eq!(weight_addrs, expect);
    }

    #[test]
    fn filter_runs_once_per_batch_item() {
        let (task, layout) = small_task();
        let p = lower_screening(&task, &layout, 256).unwrap();
        let filters = p.iter().filter(|i| matches!(i, I::Filter { .. })).count();
        assert_eq!(filters, task.batch);
    }

    #[test]
    fn sigmoid_for_recommendation_tasks() {
        let (mut task, layout) = small_task();
        task.softmax = false;
        let p = lower_screening(&task, &layout, 256).unwrap();
        assert!(p.iter().any(|i| matches!(i, I::Sigmoid)));
        assert!(!p.iter().any(|i| matches!(i, I::Softmax)));
    }

    #[test]
    fn candidate_program_gathers_full_row() {
        let (task, layout) = small_task();
        let p = estimate_candidate_program(&task, &layout, 256, 7).unwrap();
        // d = 64 → 256 B row → 1 tile → LDR + MULADD + MOVE.
        assert_eq!(p.len(), 3);
        match p.instructions()[0] {
            I::Ldr { buffer: BufferId::WeightFp32, addr } => {
                assert_eq!(addr, layout.classifier_row(&task, 7));
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_classification_is_much_longer_than_screening() {
        let (task, layout) = small_task();
        let screen = lower_screening(&task, &layout, 256).unwrap();
        let full = lower_full_classification(&task, &layout, 256, 512).unwrap();
        assert!(full.len() > 5 * screen.len());
    }

    #[test]
    fn small_output_buffer_forces_spills() {
        let (task, layout) = small_task();
        let small = lower_full_classification(&task, &layout, 256, 256).unwrap();
        let large = lower_full_classification(&task, &layout, 256, 1 << 20).unwrap();
        let spills = |p: &Program| p.iter().filter(|i| matches!(i, I::Str { .. })).count();
        assert!(spills(&small) > spills(&large));
        assert_eq!(spills(&large), 0);
    }

    #[test]
    fn programs_roundtrip_through_assembly() {
        let (task, layout) = small_task();
        let p = lower_screening(&task, &layout, 256).unwrap();
        let text = p.disassemble();
        let back = Program::parse(&text).unwrap();
        assert_eq!(back.len(), p.len());
    }
}
