//! Tiling of weight streams into buffer-sized chunks.
//!
//! The Screener and Executor each have two 256-byte input buffers
//! (Table 3). A screening *tile* is one weight-buffer fill: at INT4 that is
//! 512 W̃ elements, i.e. four 64-byte bursts. The MAC array consumes a tile
//! while the DRAM controller prefetches the next one (double buffering),
//! which is what lets the Screener "process the data in a streaming
//! manner" (§5.1).

use crate::{CompileError, TaskDescriptor};

/// Tiling parameters derived from the hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Tiling {
    /// Weight-buffer capacity in bytes (256 in Table 3).
    pub buffer_bytes: usize,
    /// Screening-weight elements per tile.
    pub screen_elems_per_tile: usize,
    /// Number of screening tiles to cover `l × k` (per batch item).
    pub screen_tiles: usize,
    /// 64-byte bursts per tile.
    pub bursts_per_tile: usize,
    /// Tiles needed per FP32 classifier row (candidate gather).
    pub tiles_per_row: usize,
}

impl Tiling {
    /// Computes the tiling for `task` with `buffer_bytes` input buffers.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] for zero-sized tasks or a buffer smaller
    /// than one burst.
    pub fn new(task: &TaskDescriptor, buffer_bytes: usize) -> Result<Self, CompileError> {
        if task.categories == 0 {
            return Err(CompileError::EmptyTask("categories"));
        }
        if task.hidden == 0 || task.reduced == 0 {
            return Err(CompileError::EmptyTask("hidden/reduced dimension"));
        }
        if buffer_bytes < 64 {
            return Err(CompileError::BufferTooSmall { needed: 64, available: buffer_bytes });
        }
        let bits = task.screen_precision.bits() as usize;
        let screen_elems_per_tile = buffer_bytes * 8 / bits;
        let total_elems = task.categories * task.reduced;
        let screen_tiles = total_elems.div_ceil(screen_elems_per_tile);
        let bursts_per_tile = buffer_bytes / 64;
        let row_bytes = task.hidden * 4;
        let tiles_per_row = row_bytes.div_ceil(buffer_bytes);
        Ok(Tiling {
            buffer_bytes,
            screen_elems_per_tile,
            screen_tiles,
            bursts_per_tile,
            tiles_per_row,
        })
    }

    /// Total screening bursts per batch item.
    pub fn screen_bursts(&self) -> usize {
        self.screen_tiles * self.bursts_per_tile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::quant::Precision;

    #[test]
    fn paper_config_tile_shapes() {
        // Transformer-W268K: l=267744, d=512, k=128, INT4, 256 B buffers.
        let task = TaskDescriptor::paper_default(267_744, 512, 1);
        let t = Tiling::new(&task, 256).unwrap();
        assert_eq!(t.screen_elems_per_tile, 512); // 256 B × 2 elems/B
        assert_eq!(t.bursts_per_tile, 4);
        assert_eq!(t.screen_tiles, (267_744 * 128usize).div_ceil(512));
        assert_eq!(t.tiles_per_row, 8); // 2 KiB row / 256 B
    }

    #[test]
    fn tiles_cover_all_elements() {
        let task = TaskDescriptor::paper_default(1000, 64, 1);
        let t = Tiling::new(&task, 256).unwrap();
        assert!(t.screen_tiles * t.screen_elems_per_tile >= 1000 * 16);
        assert!((t.screen_tiles - 1) * t.screen_elems_per_tile < 1000 * 16);
    }

    #[test]
    fn int8_halves_elems_per_tile() {
        let mut task = TaskDescriptor::paper_default(1000, 64, 1);
        task.screen_precision = Precision::Int8;
        let t = Tiling::new(&task, 256).unwrap();
        assert_eq!(t.screen_elems_per_tile, 256);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let mut task = TaskDescriptor::paper_default(0, 64, 1);
        assert!(Tiling::new(&task, 256).is_err());
        task = TaskDescriptor::paper_default(10, 64, 1);
        assert!(Tiling::new(&task, 32).is_err());
    }
}
