//! Programming support for ENMC (paper §5.4, Fig. 9).
//!
//! The paper wraps ENMC kernels in high-level APIs; "when translating the
//! applications into ENMC instructions, the compiler tiles the operation
//! with initialized parameters and hardware configurations and executes the
//! instruction in a loop". This crate is that compiler:
//!
//! * [`TaskDescriptor`] — the classification task as the host sees it
//!   (shapes, precisions, selection threshold, base addresses);
//! * [`Tiling`] — how matrices are cut into buffer-sized tiles given the
//!   hardware configuration (256-byte buffers, Table 3);
//! * [`lower_screening`] — emits the screening-phase program
//!   (INIT → per-batch LDR/MUL_ADD_INT4 loop → FILTER → BARRIER → RETURN);
//!   candidate-only FP32 instructions are generated *at runtime* by the
//!   ENMC controller's instruction generator (paper §5.2), so they are not
//!   part of the static program;
//! * [`lower_full_classification`] — the homogeneous FP32 program a naive
//!   NMP baseline (e.g. TensorDIMM) runs for the same task, used by the
//!   architecture comparison;
//! * [`estimate_candidate_program`] — the instruction count the controller
//!   generates per candidate, for budgeting.

pub mod layout;
pub mod lower;
pub mod tile;

pub use layout::MemoryLayout;
pub use lower::{estimate_candidate_program, lower_full_classification, lower_screening};
pub use tile::Tiling;

use enmc_tensor::quant::Precision;

/// A classification task to compile.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TaskDescriptor {
    /// Category count `l`.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Reduced (screening) dimension `k`.
    pub reduced: usize,
    /// Screening precision (INT4 in the paper's configuration).
    pub screen_precision: Precision,
    /// Batch size.
    pub batch: usize,
    /// FILTER threshold as IEEE-754 bits (preloaded into a status reg).
    pub threshold_bits: u32,
    /// Per-tensor scale of the quantized screening weights (f32 bits).
    pub weight_scale_bits: u32,
    /// Per-tensor scale of the quantized feature vector (f32 bits).
    pub feature_scale_bits: u32,
    /// Use SOFTMAX (`true`) or SIGMOID (`false`) in the Executor.
    pub softmax: bool,
}

impl TaskDescriptor {
    /// A task with the paper's default configuration (scale 0.25 → `k =
    /// d/4`, INT4 screening, softmax).
    pub fn paper_default(categories: usize, hidden: usize, batch: usize) -> Self {
        TaskDescriptor {
            categories,
            hidden,
            reduced: (hidden / 4).max(1),
            screen_precision: Precision::Int4,
            batch,
            threshold_bits: 0f32.to_bits(),
            weight_scale_bits: 1f32.to_bits(),
            feature_scale_bits: 1f32.to_bits(),
            softmax: true,
        }
    }

    /// Bytes of quantized screening weights (`l × k` at the screening
    /// precision) plus the FP32 screening bias.
    pub fn screen_weight_bytes(&self) -> u64 {
        self.screen_precision.nbytes(self.categories * self.reduced) as u64
            + self.categories as u64 * 4
    }

    /// Bytes of the packed screening-weight codes alone.
    pub fn screen_code_bytes(&self) -> u64 {
        self.screen_precision.nbytes(self.categories * self.reduced) as u64
    }

    /// Bytes of the full classifier (`l × d` FP32 + bias).
    pub fn classifier_bytes(&self) -> u64 {
        self.categories as u64 * self.hidden as u64 * 4 + self.categories as u64 * 4
    }

    /// Bytes of one FP32 classifier row.
    pub fn row_bytes(&self) -> u64 {
        self.hidden as u64 * 4
    }
}

/// Compiler errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A task dimension was zero.
    EmptyTask(&'static str),
    /// The hardware buffer cannot hold even one element row.
    BufferTooSmall {
        /// Required bytes for the smallest schedulable unit.
        needed: usize,
        /// Available buffer bytes.
        available: usize,
    },
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::EmptyTask(what) => write!(f, "task has zero {what}"),
            CompileError::BufferTooSmall { needed, available } => {
                write!(f, "buffer too small: need {needed} B, have {available} B")
            }
        }
    }
}

impl std::error::Error for CompileError {}
