//! DRAM placement of the task's tensors on one ENMC rank.
//!
//! Weights are laid out contiguously so the Screener can stream them with
//! maximal row-buffer locality; addresses are burst (64 B) aligned.

use crate::TaskDescriptor;

/// Base addresses of each tensor in one rank's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MemoryLayout {
    /// Quantized screening weights `W̃` (packed codes).
    pub screen_weights: u64,
    /// FP32 screening bias `b̃` (one float per category).
    pub screen_bias: u64,
    /// Full FP32 classifier `W` (+ bias appended).
    pub classifier: u64,
    /// Input feature vectors (batch × d FP32 + batch × k quantized).
    pub features: u64,
    /// Output logits region.
    pub outputs: u64,
    /// Total bytes occupied.
    pub end: u64,
}

/// Rounds `x` up to the next 64-byte burst boundary.
pub fn align_burst(x: u64) -> u64 {
    x.div_ceil(64) * 64
}

impl MemoryLayout {
    /// Packs the task's tensors from address 0 upward.
    pub fn for_task(task: &TaskDescriptor) -> Self {
        let screen_weights = 0u64;
        let code_bytes =
            task.screen_precision.nbytes(task.categories * task.reduced) as u64;
        let screen_bias = align_burst(screen_weights + code_bytes);
        let classifier = align_burst(screen_bias + task.categories as u64 * 4);
        let features_base = align_burst(classifier + task.classifier_bytes());
        let feature_bytes = task.batch as u64
            * (task.hidden as u64 * 4
                + task.screen_precision.nbytes(task.reduced) as u64);
        let outputs = align_burst(features_base + feature_bytes);
        let output_bytes = task.batch as u64 * task.categories as u64 * 4;
        let end = align_burst(outputs + output_bytes);
        MemoryLayout { screen_weights, screen_bias, classifier, features: features_base, outputs, end }
    }

    /// Address of FP32 classifier row `row`.
    pub fn classifier_row(&self, task: &TaskDescriptor, row: usize) -> u64 {
        self.classifier + row as u64 * task.row_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_burst_rounds_up() {
        assert_eq!(align_burst(0), 0);
        assert_eq!(align_burst(1), 64);
        assert_eq!(align_burst(64), 64);
        assert_eq!(align_burst(65), 128);
    }

    #[test]
    fn regions_are_ordered_and_disjoint() {
        let task = TaskDescriptor::paper_default(10_000, 512, 4);
        let l = MemoryLayout::for_task(&task);
        assert!(l.screen_weights < l.screen_bias);
        assert!(l.screen_bias < l.classifier);
        assert!(l.classifier < l.features);
        assert!(l.features < l.outputs);
        assert!(l.outputs < l.end);
        // Classifier region starts after all screening weights.
        assert!(l.classifier >= task.screen_weight_bytes());
    }

    #[test]
    fn classifier_rows_are_row_bytes_apart() {
        let task = TaskDescriptor::paper_default(100, 512, 1);
        let l = MemoryLayout::for_task(&task);
        assert_eq!(
            l.classifier_row(&task, 1) - l.classifier_row(&task, 0),
            task.row_bytes()
        );
    }

    #[test]
    fn everything_burst_aligned() {
        let task = TaskDescriptor::paper_default(12_345, 300, 3);
        let l = MemoryLayout::for_task(&task);
        for a in [l.screen_weights, l.screen_bias, l.classifier, l.features, l.outputs, l.end] {
            assert_eq!(a % 64, 0, "{a} not aligned");
        }
    }
}
