//! Deterministic worker pool for parallel simulation.
//!
//! ENMC's simulation workloads decompose into independent shards whose
//! boundaries are fixed by the *workload* — per-channel DRAM controllers,
//! per-rank classification slices, per-shard query batches — never by the
//! thread count. [`par_map`] runs one closure per shard on a pool of
//! scoped worker threads fed from a channel work queue, then returns the
//! results in shard-index order. Because each shard is self-contained and
//! the merge order is fixed, the output is bit-identical for any thread
//! count, including one; threads only change wall-clock time.
//!
//! The crate has zero external dependencies: `std::thread::scope` plus
//! `std::sync::mpsc` are enough for a work-stealing-free FIFO pool, and
//! keeping it dependency-free means the determinism argument rests on
//! ~100 lines of auditable code.

use std::num::NonZeroUsize;
use std::sync::mpsc;
use std::sync::Mutex;

/// How a simulation phase should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Run every shard on the calling thread, in shard order.
    Sequential,
    /// Run shards on exactly this many worker threads.
    Threads(NonZeroUsize),
    /// Pick a thread count from the environment/machine at run time.
    Auto,
}

impl Default for ParallelPolicy {
    fn default() -> Self {
        ParallelPolicy::Sequential
    }
}

impl ParallelPolicy {
    /// Builds a policy from an explicit thread count: `0` or `1` mean
    /// sequential, anything larger a pool of that many workers.
    pub fn threads(n: usize) -> Self {
        match NonZeroUsize::new(n) {
            Some(n) if n.get() > 1 => ParallelPolicy::Threads(n),
            _ => ParallelPolicy::Sequential,
        }
    }

    /// Resolves the policy to a concrete worker count (`1` = sequential).
    ///
    /// `Auto` honours the `ENMC_THREADS` environment variable when set to
    /// a positive integer and otherwise uses `std::thread::available_parallelism`.
    pub fn worker_count(self) -> usize {
        match self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Threads(n) => n.get(),
            ParallelPolicy::Auto => env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
            }),
        }
    }

    /// True when [`worker_count`](Self::worker_count) would exceed one.
    pub fn is_parallel(self) -> bool {
        self.worker_count() > 1
    }
}

/// Reads `ENMC_THREADS`; `None` when unset, empty, or unparsable.
pub fn env_threads() -> Option<usize> {
    std::env::var("ENMC_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()).filter(|&n| n > 0)
}

/// Simulation-wide execution configuration.
///
/// Carried alongside the workload descriptors so every layer — DRAM
/// system, rank units, pipeline — shards with the same policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimConfig {
    /// Execution policy for every parallelizable phase.
    pub policy: ParallelPolicy,
    /// Attach the DDR4 protocol conformance checker to every DRAM channel
    /// (off by default: the release path pays nothing).
    pub check_protocol: bool,
}

impl SimConfig {
    /// Sequential execution (the default).
    pub fn sequential() -> Self {
        SimConfig { policy: ParallelPolicy::Sequential, check_protocol: false }
    }

    /// Execution on `n` worker threads (`0`/`1` collapse to sequential).
    pub fn with_threads(n: usize) -> Self {
        SimConfig { policy: ParallelPolicy::threads(n), check_protocol: false }
    }

    /// The same configuration with protocol checking turned on.
    pub fn with_protocol_check(mut self) -> Self {
        self.check_protocol = true;
        self
    }

    /// Resolved worker count for this configuration.
    pub fn worker_count(&self) -> usize {
        self.policy.worker_count()
    }

    /// Resolves the shared "`--threads` flag beats `ENMC_THREADS` beats
    /// sequential" convention every CLI entry point follows.
    ///
    /// `flag` is the parsed `--threads` value when the user passed one.
    /// With neither the flag nor the environment variable set, execution
    /// is sequential — never `Auto` — so defaults stay deterministic and
    /// machine-independent.
    pub fn resolve(flag: Option<usize>, check_protocol: bool) -> Self {
        let cfg = match flag.or_else(env_threads) {
            Some(n) => SimConfig::with_threads(n),
            None => SimConfig::sequential(),
        };
        if check_protocol {
            cfg.with_protocol_check()
        } else {
            cfg
        }
    }
}

/// Splits `len` items into `shards` contiguous ranges whose sizes differ
/// by at most one, earlier shards taking the remainder.
///
/// The decomposition depends only on `(len, shards)`, so callers that fix
/// the shard count from the workload get identical shard boundaries
/// regardless of how many threads later execute them. Shards are never
/// empty: asking for more shards than items yields `len` ranges.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let size = base + usize::from(s < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Applies `f` to every item, returning results in item order.
///
/// With `workers <= 1` (or fewer than two items) this is a plain
/// sequential map on the calling thread. Otherwise items are dispatched
/// through a channel work queue to `workers` scoped threads; each result
/// is written back into its item's slot, so the returned vector is
/// independent of scheduling. `f` must be `Sync` (shared by reference
/// across workers) and items/results must be `Send`.
///
/// Panics in `f` propagate to the caller once the scope joins.
pub fn par_map<T, U, F>(workers: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if workers <= 1 || items.len() < 2 {
        return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let n = items.len();
    let workers = workers.min(n);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    for pair in items.into_iter().enumerate() {
        tx.send(pair).expect("queue open");
    }
    drop(tx);
    let queue = Mutex::new(rx);

    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let slots = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Hold the queue lock only for the receive, not the work.
                let next = queue.lock().expect("queue lock").try_recv();
                match next {
                    Ok((i, item)) => {
                        let out = f(i, item);
                        slots.lock().expect("slot lock")[i] = Some(out);
                    }
                    Err(_) => break,
                }
            });
        }
    });

    let collected: Vec<U> = slots
        .into_inner()
        .expect("slots")
        .iter_mut()
        .map(|s| s.take().expect("every shard produced a result"))
        .collect();
    collected
}

/// Maps `f` over the shard ranges of `len` items split `shards` ways,
/// merging results in shard order. Convenience over
/// [`shard_ranges`] + [`par_map`].
pub fn par_map_ranges<U, F>(workers: usize, len: usize, shards: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize, std::ops::Range<usize>) -> U + Sync,
{
    par_map(workers, shard_ranges(len, shards), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000, 670_091] {
            for shards in [1usize, 2, 3, 4, 7, 16, 64] {
                let ranges = shard_ranges(len, shards);
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "gap at {cursor} for ({len},{shards})");
                    assert!(!r.is_empty(), "empty shard for ({len},{shards})");
                    cursor = r.end;
                }
                assert_eq!(cursor, len, "({len},{shards}) does not cover");
                if len > 0 {
                    assert_eq!(ranges.len(), shards.min(len));
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(max - min <= 1, "unbalanced: {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for workers in [1usize, 2, 3, 4, 8, 128] {
            let got = par_map(workers, items.clone(), |_, x| x * x + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_map_preserves_index_order_under_skew() {
        // Make early items slow so late items finish first; order must hold.
        let got = par_map(4, (0..16u64).collect(), |i, x| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x
        });
        assert_eq!(got, (0..16u64).collect::<Vec<_>>());
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ParallelPolicy::Sequential.worker_count(), 1);
        assert_eq!(ParallelPolicy::threads(0), ParallelPolicy::Sequential);
        assert_eq!(ParallelPolicy::threads(1), ParallelPolicy::Sequential);
        assert_eq!(ParallelPolicy::threads(4).worker_count(), 4);
        assert!(!SimConfig::sequential().policy.is_parallel());
        assert_eq!(SimConfig::with_threads(6).worker_count(), 6);
        assert!(ParallelPolicy::Auto.worker_count() >= 1);
    }

    #[test]
    fn resolve_prefers_flag_over_environment() {
        // Explicit flag always wins, protocol toggle carries through.
        let cfg = SimConfig::resolve(Some(6), true);
        assert_eq!(cfg.worker_count(), 6);
        assert!(cfg.check_protocol);
        let cfg = SimConfig::resolve(Some(1), false);
        assert_eq!(cfg.policy, ParallelPolicy::Sequential);
        assert!(!cfg.check_protocol);
        // Without a flag the result is either sequential or the
        // ENMC_THREADS count, depending on the ambient environment — but
        // never Auto (env mutation in tests would race other threads).
        let cfg = SimConfig::resolve(None, false);
        match env_threads() {
            Some(n) if n > 1 => assert_eq!(cfg.worker_count(), n),
            _ => assert_eq!(cfg.policy, ParallelPolicy::Sequential),
        }
    }

    #[test]
    fn par_map_ranges_composes() {
        let sums = par_map_ranges(3, 100, 4, |_, r| r.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert_eq!(sums.len(), 4);
    }
}
