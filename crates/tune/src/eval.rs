//! Design evaluation: a lattice point becomes a configured
//! [`SystemModel`], runs through the cost backend, and comes back as
//! latency / energy / quality coordinates for the frontier.
//!
//! Every design gets its **own** [`CostModel`] seeded from the base seed
//! and its lattice index, so the audit lottery is a pure function of
//! `(seed, index)` — never of worker count, evaluation order, or which
//! search strategy asked. That is the property the guided-equals-
//! exhaustive and thread-invariance guarantees rest on.

use crate::space::{price_design, Budget, DesignPoint, TuneSpace};
use enmc_arch::{AreaPower, ClassificationJob, EnmcConfig, PhysicalModel, SystemModel};
use enmc_par::{par_map, SimConfig};
use enmc_surrogate::{CostBackend, CostModel, SurrogateViolation};

/// Energy surcharge of SEC-DED ECC per DRAM burst, nJ (matches the
/// fault crate's `ECC_NJ_PER_BURST`).
const ECC_NJ_PER_BURST: f64 = 0.12;

/// One evaluated design: the lattice point, its Table 4/5 price, and its
/// measured (or predicted) serving coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedDesign {
    /// The lattice point.
    pub point: DesignPoint,
    /// Priced area/power over the whole DIMM population.
    pub cost: AreaPower,
    /// Batch latency including the linger window, nanoseconds.
    pub latency_ns: f64,
    /// Energy per query, nanojoules.
    pub energy_per_query_nj: f64,
    /// Analytic screening-quality proxy in percent (higher is better).
    pub quality_pct: f64,
    /// Whether the audit lottery re-ran this design cycle-accurately
    /// (always true on the cycle-accurate backend).
    pub audited: bool,
    /// Cycle-accurate anchors the design's fit consumed.
    pub fit_anchors: u64,
    /// Worst audited relative leaf error for this design.
    pub audit_max_rel_err: f64,
}

impl EvaluatedDesign {
    /// Report/fixture provenance tag: `audited` when a cycle-accurate
    /// pass backs the numbers, `surrogate` when only the fit did.
    pub fn provenance(&self) -> &'static str {
        if self.audited {
            "audited"
        } else {
            "surrogate"
        }
    }
}

/// The [`SystemModel`] a design point configures: memory technology,
/// rank count, lane count, and screener bitwidth applied to the base
/// platform, plus the ECC energy surcharge when the design carries ECC.
/// The design's memory axis always rebases the platform (so the energy
/// model is the chosen technology's nominal one before the ECC
/// surcharge applies).
pub fn configure_system(base: &SystemModel, d: &DesignPoint) -> SystemModel {
    let cfg = EnmcConfig {
        int4_macs: d.lanes,
        screen_bits: d.screen_bits,
        filter_width: d.lanes,
        ..*base.enmc_config()
    };
    let mut sys = base
        .clone()
        .with_memory(d.memory)
        .with_total_ranks(d.ranks)
        .with_enmc_config(cfg);
    if d.ecc {
        let em = (*sys.energy_model()).with_ecc_surcharge(ECC_NJ_PER_BURST);
        sys = sys.with_energy_model(em);
    }
    sys
}

/// The workload a design point is evaluated at: the base shape with the
/// design's screening level, candidate count, and batch applied.
pub fn configure_job(base: &ClassificationJob, d: &DesignPoint) -> ClassificationJob {
    ClassificationJob {
        reduced: (base.reduced >> d.screen_shift).max(1),
        batch: d.batch_max.max(1),
        candidates: d.candidates.max(1),
        ..*base
    }
}

/// Analytic screening-quality proxy in percent: a saturating function of
/// the fraction of candidates kept, screening dimensions kept, and
/// screener bitwidth relative to the paper's 4-bit operating point.
/// Deliberately restricted to `+ * / sqrt` — all exactly-rounded IEEE
/// operations — so the number is bit-identical on any conforming host.
pub fn quality_proxy(base: &ClassificationJob, d: &DesignPoint) -> f64 {
    let cand_frac = (d.candidates as f64 / base.categories as f64).min(1.0);
    let kept = ((base.reduced >> d.screen_shift).max(1)) as f64 / base.reduced.max(1) as f64;
    let bits = d.screen_bits as f64 / 4.0;
    let m = 8.0 * cand_frac.sqrt() * kept.sqrt() * bits.sqrt();
    100.0 * (m * m) / (1.0 + m * m)
}

/// Mixes the tuner seed with a design's lattice index into the
/// per-design audit seed (SplitMix64 finalizer).
fn design_seed(seed: u64, index: usize) -> u64 {
    let mut z = seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evaluates one design through its own cost model.
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when the design's audit misses the
/// declared bound.
pub fn evaluate_design(
    base_sys: &SystemModel,
    base_job: &ClassificationJob,
    space: &TuneSpace,
    index: usize,
    backend: CostBackend,
    seed: u64,
) -> Result<EvaluatedDesign, SurrogateViolation> {
    let point = space.design(index);
    let sys = configure_system(base_sys, &point);
    let job = configure_job(base_job, &point);
    let mut cost = CostModel::new(backend, design_seed(seed, index));
    let context = format!("tune design {}", point.label());
    let run = cost.run_sharded_enmc(&sys, &job, &SimConfig::sequential(), &context)?;
    let report = run.result.rank_report.as_ref().expect("ENMC runs are cycle-simulated");
    let ns_per_cycle = if report.dram_cycles > 0 { report.ns / report.dram_cycles as f64 } else { 0.0 };
    let latency_ns = run.result.ns + point.linger_cycles as f64 * ns_per_cycle;
    let energy = run.result.energy.expect("ENMC runs carry energy");
    let energy_per_query_nj = energy.total_nj() / job.batch.max(1) as f64;
    let stats = cost.stats();
    Ok(EvaluatedDesign {
        point,
        cost: price_design(&PhysicalModel::tsmc28(), &point),
        latency_ns,
        energy_per_query_nj,
        quality_pct: quality_proxy(base_job, &point),
        audited: matches!(backend, CostBackend::CycleAccurate) || stats.audited > 0,
        fit_anchors: stats.fit_anchors,
        audit_max_rel_err: stats.max_rel_err,
    })
}

/// Evaluates a set of lattice indices in parallel, preserving index
/// order. Results are bit-identical for any `workers`: each design's
/// evaluation is self-contained, `par_map` preserves input order, and a
/// violation anywhere reports the one with the *lowest lattice index*
/// regardless of which worker hit it first.
///
/// # Errors
///
/// Returns the lowest-indexed [`SurrogateViolation`] among the evaluated
/// designs.
pub fn evaluate_designs(
    base_sys: &SystemModel,
    base_job: &ClassificationJob,
    space: &TuneSpace,
    indices: &[usize],
    backend: CostBackend,
    seed: u64,
    workers: usize,
) -> Result<Vec<EvaluatedDesign>, SurrogateViolation> {
    let results = par_map(workers.max(1), indices.to_vec(), |_, index| {
        evaluate_design(base_sys, base_job, space, index, backend, seed)
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Prices every design of the space and splits it into budget-admitted
/// and rejected index sets (both ascending).
pub fn admit_by_budget(space: &TuneSpace, budget: &Budget) -> (Vec<usize>, Vec<usize>) {
    let model = PhysicalModel::tsmc28();
    let mut admitted = Vec::new();
    let mut rejected = Vec::new();
    for i in 0..space.size() {
        let d = space.design(i);
        if budget.admits(&price_design(&model, &d)) {
            admitted.push(i);
        } else {
            rejected.push(i);
        }
    }
    (admitted, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 4, candidates: 128 }
    }

    #[test]
    fn quality_proxy_orders_sensibly() {
        let job = small_job();
        let space = TuneSpace::small().normalize();
        let base = space.design(0);
        let more_cand = DesignPoint { candidates: 128, ..base };
        let fewer_cand = DesignPoint { candidates: 64, ..base };
        assert!(quality_proxy(&job, &more_cand) > quality_proxy(&job, &fewer_cand));
        let sharp = DesignPoint { screen_shift: 0, ..base };
        let coarse = DesignPoint { screen_shift: 1, ..base };
        assert!(quality_proxy(&job, &sharp) > quality_proxy(&job, &coarse));
        let q = quality_proxy(&job, &base);
        assert!((0.0..=100.0).contains(&q));
    }

    #[test]
    fn evaluation_is_worker_invariant() {
        let sys = SystemModel::table3();
        let job = small_job();
        let space = TuneSpace::small().normalize();
        let indices: Vec<usize> = (0..space.size()).collect();
        let backend = CostBackend::Surrogate { audit_rate: 0.2 };
        let one = evaluate_designs(&sys, &job, &space, &indices, backend, 7, 1).unwrap();
        let four = evaluate_designs(&sys, &job, &space, &indices, backend, 7, 4).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn evaluation_is_order_invariant() {
        // The same design evaluates identically whether asked alone or
        // within any subset — the per-design cost model guarantees it.
        let sys = SystemModel::table3();
        let job = small_job();
        let space = TuneSpace::small().normalize();
        let backend = CostBackend::Surrogate { audit_rate: 0.2 };
        let all: Vec<usize> = (0..space.size()).collect();
        let full = evaluate_designs(&sys, &job, &space, &all, backend, 7, 1).unwrap();
        let solo = evaluate_design(&sys, &job, &space, 5, backend, 7).unwrap();
        assert_eq!(full[5], solo);
    }

    #[test]
    fn ecc_design_spends_more_energy() {
        let sys = SystemModel::table3();
        let job = small_job();
        let space = TuneSpace::small().normalize();
        let plain_i = (0..space.size()).find(|&i| !space.design(i).ecc).unwrap();
        let plain_pt = space.design(plain_i);
        let ecc_i = (0..space.size())
            .find(|&i| {
                let d = space.design(i);
                d.ecc
                    && DesignPoint { ecc: false, index: 0, ..d }
                        == DesignPoint { ecc: false, index: 0, ..plain_pt }
            })
            .unwrap();
        let backend = CostBackend::CycleAccurate;
        let plain = evaluate_design(&sys, &job, &space, plain_i, backend, 7).unwrap();
        let ecc = evaluate_design(&sys, &job, &space, ecc_i, backend, 7).unwrap();
        assert!(ecc.energy_per_query_nj > plain.energy_per_query_nj);
        assert!((ecc.latency_ns - plain.latency_ns).abs() < 1e-9, "ECC is an energy cost");
    }

    #[test]
    fn memory_axis_changes_the_evaluation() {
        use enmc_mem::MemTech;
        let sys = SystemModel::table3();
        let job = small_job();
        let mut space = TuneSpace::small();
        space.memory = MemTech::ALL.to_vec();
        let space = space.normalize();
        assert_eq!(space.size(), 32 * 4);
        let backend = CostBackend::CycleAccurate;
        // Four designs identical except for the memory axis: distinct
        // latency/energy coordinates, identical quality proxy.
        let evals: Vec<EvaluatedDesign> = (0..4)
            .map(|i| evaluate_design(&sys, &job, &space, i, backend, 7).unwrap())
            .collect();
        for pair in evals.windows(2) {
            assert_ne!(pair[0].point.memory, pair[1].point.memory);
            assert_ne!(
                (pair[0].latency_ns, pair[0].energy_per_query_nj),
                (pair[1].latency_ns, pair[1].energy_per_query_nj),
                "{} vs {}",
                pair[0].point.label(),
                pair[1].point.label()
            );
            assert_eq!(pair[0].quality_pct, pair[1].quality_pct, "quality is tech-independent");
        }
    }

    #[test]
    fn budget_rejects_big_designs() {
        let space = TuneSpace::small().normalize();
        let (admitted, rejected) = admit_by_budget(
            &space,
            &Budget { max_area_mm2: Some(15.0), max_power_mw: None },
        );
        assert_eq!(admitted.len() + rejected.len(), space.size());
        // 64-rank designs cost at least 64 × 0.35 mm² > 15.
        assert!(admitted.iter().all(|&i| space.design(i).ranks == 32));
        assert!(!admitted.is_empty());
        assert!(!rejected.is_empty());
    }
}
