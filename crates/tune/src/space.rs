//! The declared design space: axis lists, mixed-radix lattice indexing,
//! the Table 4/5 pricing rule, and area/power budget admission.
//!
//! A [`TuneSpace`] is a small cartesian lattice over the accelerator's
//! sizing levers. Every design has a stable *lattice index* — its
//! mixed-radix position over the normalized (sorted, deduplicated) axis
//! lists — and everything downstream (evaluation seeds, frontier
//! ordering, provenance) is keyed to that index, never to evaluation
//! order. That is what makes guided search, exhaustive search, and any
//! worker count produce byte-identical frontiers over the same space.

use enmc_arch::{AreaPower, PhysicalModel};
use enmc_mem::MemTech;

/// Area/power surcharge of SEC-DED (72,64) ECC on the on-DIMM DRAM
/// controller: 8 extra bits per 64 = 12.5 % more controller datapath
/// area, at the fault crate's measured 11.6 mW ECC engine power.
const ECC_AREA_FRACTION: f64 = 0.125;
const ECC_POWER_MW: f64 = 11.6;

/// The declared design space: one sorted, deduplicated level list per
/// axis. The lattice a [`TuneSpace`] spans is the cartesian product of
/// the lists, indexed mixed-radix with `ranks` as the slowest axis and
/// `ecc` the fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSpace {
    /// DIMM rank-unit counts (capacity axis; Table 3 ships 64).
    pub ranks: Vec<usize>,
    /// INT4 screener lanes per rank unit (Table 3: 128).
    pub lanes: Vec<usize>,
    /// Screening-weight bitwidths (Table 3: 4).
    pub screen_bits: Vec<u32>,
    /// Screening-level shifts: reduced dimension halved this many times.
    pub screen_shift: Vec<u32>,
    /// Candidates surviving the screen (`K`).
    pub candidates: Vec<usize>,
    /// Serving-side maximum batch size the design is evaluated at.
    pub batch_max: Vec<usize>,
    /// Batching linger windows in DRAM cycles (a latency adder).
    pub linger_cycles: Vec<u64>,
    /// Whether the DRAM controller carries SEC-DED ECC.
    pub ecc: Vec<bool>,
    /// Memory technologies to evaluate the design on (Table 3 DDR4
    /// baseline unless widened; the 9th axis, fastest in the lattice).
    pub memory: Vec<MemTech>,
}

impl Default for TuneSpace {
    fn default() -> Self {
        Self::small()
    }
}

impl TuneSpace {
    /// The default small space the CLI explores when no axes are given:
    /// 2 × 2 × 1 × 2 × 2 × 1 × 1 × 2 = 32 designs around the Table 3
    /// point.
    pub fn small() -> Self {
        TuneSpace {
            ranks: vec![32, 64],
            lanes: vec![64, 128],
            screen_bits: vec![4],
            screen_shift: vec![0, 1],
            candidates: vec![64, 128],
            batch_max: vec![4],
            linger_cycles: vec![2_000],
            ecc: vec![false, true],
            memory: vec![MemTech::Ddr4_2666],
        }
    }

    /// Sorts and deduplicates every axis list.
    ///
    /// # Panics
    ///
    /// Panics when any axis is empty or holds a zero level where zero is
    /// meaningless (ranks, lanes, bits, candidates, batch).
    pub fn normalize(mut self) -> Self {
        fn norm<T: Ord + Copy>(name: &str, v: &mut Vec<T>) {
            assert!(!v.is_empty(), "axis {name} must declare at least one level");
            v.sort_unstable();
            v.dedup();
        }
        norm("ranks", &mut self.ranks);
        norm("lanes", &mut self.lanes);
        norm("screen-bits", &mut self.screen_bits);
        norm("screen-shift", &mut self.screen_shift);
        norm("candidates", &mut self.candidates);
        norm("batch-max", &mut self.batch_max);
        norm("linger", &mut self.linger_cycles);
        norm("ecc", &mut self.ecc);
        norm("memory", &mut self.memory);
        assert!(self.ranks[0] > 0, "ranks levels must be positive");
        assert!(self.lanes[0] > 0, "lane levels must be positive");
        assert!(self.screen_bits[0] > 0, "screen-bits levels must be positive");
        assert!(self.candidates[0] > 0, "candidate levels must be positive");
        assert!(self.batch_max[0] > 0, "batch-max levels must be positive");
        self
    }

    /// Per-axis level counts, slowest axis first.
    fn radices(&self) -> [usize; 9] {
        [
            self.ranks.len(),
            self.lanes.len(),
            self.screen_bits.len(),
            self.screen_shift.len(),
            self.candidates.len(),
            self.batch_max.len(),
            self.linger_cycles.len(),
            self.ecc.len(),
            self.memory.len(),
        ]
    }

    /// Total designs in the lattice.
    pub fn size(&self) -> usize {
        self.radices().iter().product()
    }

    /// Decodes a lattice index into per-axis level coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.size()`.
    pub fn coords(&self, index: usize) -> [usize; 9] {
        assert!(index < self.size(), "design index {index} out of range");
        let radices = self.radices();
        let mut c = [0usize; 9];
        let mut rest = index;
        for axis in (0..9).rev() {
            c[axis] = rest % radices[axis];
            rest /= radices[axis];
        }
        c
    }

    /// Encodes per-axis level coordinates back into the lattice index.
    pub fn index_of(&self, coords: &[usize; 9]) -> usize {
        let radices = self.radices();
        let mut index = 0usize;
        for axis in 0..9 {
            debug_assert!(coords[axis] < radices[axis]);
            index = index * radices[axis] + coords[axis];
        }
        index
    }

    /// The concrete design at a lattice index.
    pub fn design(&self, index: usize) -> DesignPoint {
        let c = self.coords(index);
        DesignPoint {
            index,
            ranks: self.ranks[c[0]],
            lanes: self.lanes[c[1]],
            screen_bits: self.screen_bits[c[2]],
            screen_shift: self.screen_shift[c[3]],
            candidates: self.candidates[c[4]],
            batch_max: self.batch_max[c[5]],
            linger_cycles: self.linger_cycles[c[6]],
            ecc: self.ecc[c[7]],
            memory: self.memory[c[8]],
        }
    }

    /// Lattice indices one level step away from `index` along any single
    /// axis, ascending. The guided search expands these around frontier
    /// points.
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let radices = self.radices();
        let base = self.coords(index);
        let mut out = Vec::new();
        for axis in 0..9 {
            for step in [-1isize, 1] {
                let level = base[axis] as isize + step;
                if level < 0 || level as usize >= radices[axis] {
                    continue;
                }
                let mut c = base;
                c[axis] = level as usize;
                out.push(self.index_of(&c));
            }
        }
        out.sort_unstable();
        out
    }
}

/// One concrete design: a point of the lattice with its stable index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignPoint {
    /// Mixed-radix lattice index within the declaring [`TuneSpace`].
    pub index: usize,
    /// Rank units on the DIMM population.
    pub ranks: usize,
    /// INT4 screener lanes per unit.
    pub lanes: usize,
    /// Screening-weight bitwidth.
    pub screen_bits: u32,
    /// Screening-level shift applied to the reduced dimension.
    pub screen_shift: u32,
    /// Candidates surviving the screen.
    pub candidates: usize,
    /// Maximum evaluation batch size.
    pub batch_max: usize,
    /// Batching linger window (DRAM cycles), charged as added latency.
    pub linger_cycles: u64,
    /// SEC-DED ECC on the DRAM controller.
    pub ecc: bool,
    /// Memory technology the design is evaluated on.
    pub memory: MemTech,
}

impl DesignPoint {
    /// A compact stable label, e.g.
    /// `r64.l128.b4.s0.c128.bm4.lg2000.ecc0.md4`.
    pub fn label(&self) -> String {
        format!(
            "r{}.l{}.b{}.s{}.c{}.bm{}.lg{}.ecc{}.m{}",
            self.ranks,
            self.lanes,
            self.screen_bits,
            self.screen_shift,
            self.candidates,
            self.batch_max,
            self.linger_cycles,
            u8::from(self.ecc),
            self.memory.short()
        )
    }
}

/// Prices a design with the Table 4/5 synthesis model: per-unit cost is
/// the INT4 array scaled to the design's lane count and bitwidth, the
/// fixed FP32 executor, both buffer blocks, both controllers, and the
/// ECC surcharge when enabled; the DIMM total scales the unit by the
/// rank count. The power envelope also carries the memory technology's
/// own background draw per rank — that is what lets a `--max-power-mw`
/// budget discriminate between technologies (HBM2's standby watts price
/// it out of tight envelopes that LPDDR4 fits with room to spare). At
/// the Table 3 point (128 lanes, 4-bit, no ECC) the per-unit *silicon*
/// price reduces exactly to [`PhysicalModel::enmc_unit`].
pub fn price_design(model: &PhysicalModel, d: &DesignPoint) -> AreaPower {
    let int4 = model.int4_mac.scale(d.lanes as f64 * d.screen_bits as f64 / 4.0);
    let mut unit = int4
        .add(&model.fp32_mac.scale(16.0))
        .add(&model.buffer_kb)
        .add(&model.control_buffer())
        .add(&model.enmc_ctrl)
        .add(&model.dram_ctrl);
    if d.ecc {
        unit = unit.add(&AreaPower {
            area_mm2: model.dram_ctrl.area_mm2 * ECC_AREA_FRACTION,
            power_mw: ECC_POWER_MW,
        });
    }
    unit = unit.add(&AreaPower {
        area_mm2: 0.0,
        power_mw: d.memory.preset().energy.background_w * 1e3,
    });
    unit.scale(d.ranks as f64)
}

/// User-declared DIMM-population budget the tuner must respect.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Maximum total silicon area in mm² (`None` = unconstrained).
    pub max_area_mm2: Option<f64>,
    /// Maximum total power in mW (`None` = unconstrained).
    pub max_power_mw: Option<f64>,
}

impl Budget {
    /// Whether a priced design fits the budget.
    pub fn admits(&self, cost: &AreaPower) -> bool {
        self.max_area_mm2.map_or(true, |cap| cost.area_mm2 <= cap)
            && self.max_power_mw.map_or(true, |cap| cost.power_mw <= cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips_over_the_whole_lattice() {
        let space = TuneSpace::small().normalize();
        assert_eq!(space.size(), 32);
        for i in 0..space.size() {
            let c = space.coords(i);
            assert_eq!(space.index_of(&c), i);
            assert_eq!(space.design(i).index, i);
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        let mut space = TuneSpace::small();
        space.lanes = vec![128, 64, 128];
        space.candidates = vec![128, 64];
        let space = space.normalize();
        assert_eq!(space.lanes, vec![64, 128]);
        assert_eq!(space.candidates, vec![64, 128]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_axis_panics() {
        let mut space = TuneSpace::small();
        space.ranks = vec![];
        let _ = space.normalize();
    }

    #[test]
    fn neighbors_are_single_axis_steps() {
        let space = TuneSpace::small().normalize();
        for i in 0..space.size() {
            let base = space.coords(i);
            for n in space.neighbors(i) {
                let c = space.coords(n);
                let diff: usize = (0..9)
                    .map(|a| usize::from(base[a] != c[a]))
                    .sum();
                assert_eq!(diff, 1, "{base:?} vs {c:?}");
            }
        }
    }

    #[test]
    fn table3_point_prices_at_enmc_unit_plus_dram_background() {
        // 128 lanes, 4-bit screener, no ECC must reduce to Table 5's
        // unit exactly on silicon; power adds only the technology's own
        // per-rank background draw.
        let model = PhysicalModel::tsmc28();
        let d = DesignPoint {
            index: 0,
            ranks: 1,
            lanes: 128,
            screen_bits: 4,
            screen_shift: 0,
            candidates: 128,
            batch_max: 4,
            linger_cycles: 0,
            ecc: false,
            memory: MemTech::Ddr4_2666,
        };
        let priced = price_design(&model, &d);
        let unit = model.enmc_unit();
        let background = MemTech::Ddr4_2666.preset().energy.background_w * 1e3;
        assert!((priced.area_mm2 - unit.area_mm2).abs() < 1e-12);
        assert!((priced.power_mw - (unit.power_mw + background)).abs() < 1e-12);
        let dimm = price_design(&model, &DesignPoint { ranks: 64, ..d });
        assert!((dimm.area_mm2 - 64.0 * unit.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn memory_technology_moves_the_power_envelope_not_the_silicon() {
        let model = PhysicalModel::tsmc28();
        let d = TuneSpace::small().normalize().design(0);
        let by_tech: Vec<AreaPower> = MemTech::ALL
            .iter()
            .map(|&m| price_design(&model, &DesignPoint { memory: m, ..d }))
            .collect();
        for p in &by_tech {
            assert!((p.area_mm2 - by_tech[0].area_mm2).abs() < 1e-12, "area is tech-independent");
        }
        let power = |m: MemTech| {
            by_tech[MemTech::ALL.iter().position(|&t| t == m).unwrap()].power_mw
        };
        assert!(power(MemTech::Hbm2) > power(MemTech::Ddr4_2666));
        assert!(power(MemTech::Lpddr4_3200) < power(MemTech::Ddr4_2666));
    }

    #[test]
    fn ecc_costs_extra() {
        let model = PhysicalModel::tsmc28();
        let d = TuneSpace::small().normalize().design(0);
        let plain = price_design(&model, &DesignPoint { ecc: false, ..d });
        let ecc = price_design(&model, &DesignPoint { ecc: true, ..d });
        assert!(ecc.area_mm2 > plain.area_mm2);
        assert!(ecc.power_mw > plain.power_mw);
    }

    #[test]
    fn budget_admission() {
        let b = Budget { max_area_mm2: Some(10.0), max_power_mw: None };
        assert!(b.admits(&AreaPower { area_mm2: 10.0, power_mw: 1e9 }));
        assert!(!b.admits(&AreaPower { area_mm2: 10.1, power_mw: 0.0 }));
        assert!(Budget::default().admits(&AreaPower { area_mm2: 1e9, power_mw: 1e9 }));
    }
}
