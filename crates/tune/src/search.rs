//! The search driver: exhaustive and guided exploration of a budgeted
//! [`TuneSpace`], and the schema-v9 tuning report.
//!
//! Both strategies share one invariant: a design's evaluation is a pure
//! function of `(space, seed, lattice index)` — see [`crate::eval`] — so
//! wherever the two strategies evaluate the *same* designs they get the
//! *same* numbers, and identical frontiers render identical fixtures.
//! Guided search is a seeded local-neighborhood frontier fixpoint
//! (successive halving over the lattice): it seeds with the admitted
//! extremes plus a deterministic sample, keeps the running frontier, and
//! expands the single-axis lattice neighbors of frontier points until no
//! expansion changes the frontier. CI verifies it equals brute force on
//! small spaces.

use crate::eval::{admit_by_budget, evaluate_designs, EvaluatedDesign};
use crate::pareto::{dominated_count, pareto_frontier, FrontierPoint};
use crate::space::{Budget, TuneSpace};
use enmc_arch::{ClassificationJob, SystemModel};
use enmc_obs::report::RunReport;
use enmc_serve::arrival::SplitMix64;
use enmc_surrogate::{CostBackend, CostModel, SurrogateViolation};
use std::collections::BTreeSet;

/// How the driver walks the admitted lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Evaluate every admitted design.
    Exhaustive,
    /// Seeded sample + frontier-neighborhood fixpoint.
    Guided,
}

impl SearchMode {
    /// CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            SearchMode::Exhaustive => "exhaustive",
            SearchMode::Guided => "guided",
        }
    }
}

/// A full tuning run's configuration.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// The declared space (normalized on entry to [`tune`]).
    pub space: TuneSpace,
    /// Area/power budget rejected designs violate.
    pub budget: Budget,
    /// Cost backend every survivor is evaluated through.
    pub backend: CostBackend,
    /// Base seed for the per-design audit lotteries and the guided
    /// sampler.
    pub seed: u64,
    /// Worker threads for the evaluation fan-out.
    pub workers: usize,
    /// Search strategy.
    pub mode: SearchMode,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            space: TuneSpace::small(),
            budget: Budget::default(),
            backend: CostBackend::Surrogate { audit_rate: 0.1 },
            seed: 7,
            workers: 1,
            mode: SearchMode::Exhaustive,
        }
    }
}

/// A completed tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Designs in the declared lattice.
    pub space_size: usize,
    /// Designs the budget rejected before evaluation.
    pub rejected: u64,
    /// Every evaluated design, ascending by lattice index.
    pub evaluated: Vec<EvaluatedDesign>,
    /// The Pareto frontier over the evaluated designs.
    pub frontier: Vec<FrontierPoint>,
    /// Evaluated designs dominated by at least one frontier point.
    pub dominated: u64,
}

impl TuneResult {
    /// Evaluated designs whose audit lottery fired (or that ran
    /// cycle-accurately outright).
    pub fn audited(&self) -> u64 {
        self.evaluated.iter().filter(|d| d.audited).count() as u64
    }
}

/// Runs one tuning search.
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when any design's audit misses the
/// declared bound.
///
/// # Panics
///
/// Panics when the space normalizes to zero designs (empty axes panic in
/// [`TuneSpace::normalize`]).
pub fn tune(
    sys: &SystemModel,
    job: &ClassificationJob,
    cfg: &TuneConfig,
) -> Result<TuneResult, SurrogateViolation> {
    let space = cfg.space.clone().normalize();
    let space_size = space.size();
    let (admitted, rejected) = admit_by_budget(&space, &cfg.budget);
    let evaluated = match cfg.mode {
        SearchMode::Exhaustive => {
            evaluate_designs(sys, job, &space, &admitted, cfg.backend, cfg.seed, cfg.workers)?
        }
        SearchMode::Guided => guided(sys, job, &space, &admitted, cfg)?,
    };
    let frontier = pareto_frontier(&evaluated);
    let dominated = dominated_count(&evaluated, &frontier);
    Ok(TuneResult {
        space_size,
        rejected: rejected.len() as u64,
        evaluated,
        frontier,
        dominated,
    })
}

/// Seeded local-neighborhood search. Evaluation results accumulate in a
/// lattice-index-ordered map, so the returned vector (and thus the
/// frontier) is independent of the wave order designs were discovered
/// in.
fn guided(
    sys: &SystemModel,
    job: &ClassificationJob,
    space: &TuneSpace,
    admitted: &[usize],
    cfg: &TuneConfig,
) -> Result<Vec<EvaluatedDesign>, SurrogateViolation> {
    if admitted.is_empty() {
        return Ok(Vec::new());
    }
    let admitted_set: BTreeSet<usize> = admitted.iter().copied().collect();

    // Wave 0: the admitted extremes plus a seeded sample of roughly half
    // the admitted lattice (successive halving's first rung).
    let mut wave: BTreeSet<usize> = BTreeSet::new();
    wave.insert(*admitted.first().expect("admitted is non-empty"));
    wave.insert(*admitted.last().expect("admitted is non-empty"));
    let mut rng = SplitMix64::new(cfg.seed ^ 0x7475_6e65); // "tune"
    let samples = (admitted.len() / 2).max(4).min(admitted.len());
    for _ in 0..samples {
        let pick = admitted[(rng.next_u64() % admitted.len() as u64) as usize];
        wave.insert(pick);
    }

    let mut evaluated: Vec<EvaluatedDesign> = Vec::new();
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    loop {
        let fresh: Vec<usize> = wave.iter().copied().filter(|i| seen.insert(*i)).collect();
        if fresh.is_empty() {
            break;
        }
        let new = evaluate_designs(sys, job, space, &fresh, cfg.backend, cfg.seed, cfg.workers)?;
        evaluated.extend(new);
        evaluated.sort_by_key(|d| d.point.index);

        // Next wave: unexplored admitted neighbors of the running
        // frontier.
        wave.clear();
        for f in pareto_frontier(&evaluated) {
            for n in space.neighbors(f.design.point.index) {
                if admitted_set.contains(&n) && !seen.contains(&n) {
                    wave.insert(n);
                }
            }
        }
    }
    Ok(evaluated)
}

/// Builds the schema-v9 tuning [`RunReport`]. `cost` is the CLI-level
/// cost model carrying nothing (per-design models do the work); only its
/// backend name is reported. Simulation cycles stay zero — a tuning run
/// has no single timeline — so the report is trivially phase-consistent.
pub fn tune_report(
    workload: &str,
    cfg: &TuneConfig,
    result: &TuneResult,
    cost: &CostModel,
) -> RunReport {
    let mut report = RunReport::new("tune", workload, "enmc");
    report.cost_backend = cost.backend().name().to_string();
    report.space_size = result.space_size as u64;
    report.evaluated_designs = result.evaluated.len() as u64;
    report.audited_designs = result.audited();
    report.frontier_points = result.frontier.len() as u64;
    report.dominated_points = result.dominated;
    report.max_area_mm2 = cfg.budget.max_area_mm2.unwrap_or(0.0);
    report.max_power_mw = cfg.budget.max_power_mw.unwrap_or(0.0);
    report.fit_anchors = result.evaluated.iter().map(|d| d.fit_anchors).sum();
    report.audit_max_rel_err = result
        .evaluated
        .iter()
        .map(|d| d.audit_max_rel_err)
        .fold(0.0, f64::max);
    if let Some(best) = result.frontier.first() {
        report.headline_ns = best.design.latency_ns;
        report.batch = best.design.point.batch_max as u64;
        report.candidates = best.design.point.candidates as u64;
    }
    report.notes.push(format!(
        "{} search over {} design(s): {} rejected by budget, {} evaluated, {} on frontier",
        cfg.mode.name(),
        result.space_size,
        result.rejected,
        result.evaluated.len(),
        result.frontier.len(),
    ));
    for p in &result.frontier {
        let d = &p.design;
        report.notes.push(format!(
            "frontier {}: {:.1} ns, {:.1} nJ/query, {:.2} % quality, {:.3} mm2, {:.1} mW, {} ({} dominated)",
            d.point.label(),
            d.latency_ns,
            d.energy_per_query_nj,
            d.quality_pct,
            d.cost.area_mm2,
            d.cost.power_mw,
            d.provenance(),
            p.dominates,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pareto::dominates;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 4, candidates: 128 }
    }

    fn base_cfg() -> TuneConfig {
        TuneConfig {
            backend: CostBackend::Surrogate { audit_rate: 0.25 },
            ..TuneConfig::default()
        }
    }

    #[test]
    fn guided_matches_exhaustive_on_the_small_space() {
        let sys = SystemModel::table3();
        let job = small_job();
        let ex = tune(&sys, &job, &base_cfg()).unwrap();
        let gd =
            tune(&sys, &job, &TuneConfig { mode: SearchMode::Guided, ..base_cfg() }).unwrap();
        // Same non-dominated designs with identical coordinates; only
        // the per-point dominance counts (over each strategy's smaller
        // or larger evaluated set) may differ.
        let designs = |r: &TuneResult| -> Vec<EvaluatedDesign> {
            r.frontier.iter().map(|f| f.design.clone()).collect()
        };
        assert_eq!(designs(&ex), designs(&gd));
        assert!(gd.evaluated.len() <= ex.evaluated.len());
        let budget = Budget::default();
        assert_eq!(
            crate::pareto::frontier_json("lstm", ex.space_size, &budget, &ex.frontier),
            crate::pareto::frontier_json("lstm", gd.space_size, &budget, &gd.frontier),
        );
    }

    #[test]
    fn tuning_is_worker_invariant() {
        let sys = SystemModel::table3();
        let job = small_job();
        for mode in [SearchMode::Exhaustive, SearchMode::Guided] {
            let one = tune(&sys, &job, &TuneConfig { mode, workers: 1, ..base_cfg() }).unwrap();
            let four = tune(&sys, &job, &TuneConfig { mode, workers: 4, ..base_cfg() }).unwrap();
            assert_eq!(one, four, "{mode:?}");
        }
    }

    #[test]
    fn budget_excludes_designs_from_frontier() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = TuneConfig {
            budget: Budget { max_area_mm2: Some(15.0), max_power_mw: None },
            ..base_cfg()
        };
        let r = tune(&sys, &job, &cfg).unwrap();
        assert!(r.rejected > 0);
        assert_eq!(r.evaluated.len() + r.rejected as usize, r.space_size);
        for f in &r.frontier {
            assert!(f.design.cost.area_mm2 <= 15.0);
            assert_eq!(f.design.point.ranks, 32);
        }
    }

    #[test]
    fn frontier_is_mutually_non_dominating() {
        let sys = SystemModel::table3();
        let job = small_job();
        let r = tune(&sys, &job, &base_cfg()).unwrap();
        assert!(!r.frontier.is_empty());
        for a in &r.frontier {
            for b in &r.frontier {
                assert!(!dominates(&a.design, &b.design), "frontier point dominated");
            }
        }
    }

    #[test]
    fn report_is_consistent_and_v9() {
        let sys = SystemModel::table3();
        let job = small_job();
        let cfg = base_cfg();
        let r = tune(&sys, &job, &cfg).unwrap();
        let cost = CostModel::new(cfg.backend, cfg.seed);
        let report = tune_report("lstm", &cfg, &r, &cost);
        assert_eq!(report.schema_version, enmc_obs::report::SCHEMA_VERSION);
        assert!(report.is_consistent());
        assert_eq!(report.space_size, 32);
        assert_eq!(report.frontier_points, r.frontier.len() as u64);
        assert_eq!(report.cost_backend, "surrogate");
        let parsed = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed.space_size, report.space_size);
        assert_eq!(parsed.frontier_points, report.frontier_points);
    }
}
