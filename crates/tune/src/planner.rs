//! The per-query offload planner (NMPO-style): given a design's
//! calibrated NMP service table and the host's CPU roofline, pick the
//! cheaper executor for every `(tier, batch)` admission point and emit
//! the [`OffloadPlan`] the serving simulators install.
//!
//! The planner is pure table arithmetic over two deterministic models,
//! so a plan is a function of `(system, job, ladder, table)` alone —
//! same bytes at any worker count, any audit rate, any search strategy.

use enmc_arch::{ClassificationJob, SystemModel};
use enmc_par::SimConfig;
use enmc_serve::sim::{calibrate_service_table, ServiceTable};
use enmc_serve::tier::DegradeTier;
use enmc_serve::OffloadPlan;
use enmc_surrogate::{CostModel, SurrogateViolation};

/// One admission point's comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadDecision {
    /// Degrade-tier index.
    pub tier: usize,
    /// Batch size (1-based).
    pub batch: usize,
    /// CPU-roofline service time in DRAM cycles.
    pub cpu_cycles: u64,
    /// Calibrated NMP service time in DRAM cycles.
    pub nmp_cycles: u64,
    /// `true` when NMP is no slower than the CPU (NMP wins ties — the
    /// host stays free for everything that is not this workload).
    pub nmp: bool,
}

impl OffloadDecision {
    /// The planned service time: the winner's cycles.
    pub fn cycles(&self) -> u64 {
        if self.nmp {
            self.nmp_cycles
        } else {
            self.cpu_cycles
        }
    }
}

/// Compares every `(tier, batch)` point of a calibrated service table
/// against the CPU roofline for the same degraded job.
///
/// # Panics
///
/// Panics when `table.ns_per_cycle` is not positive — a calibrated
/// table always carries the DRAM clock.
pub fn plan_decisions(
    sys: &SystemModel,
    job: &ClassificationJob,
    tiers: &[DegradeTier],
    table: &ServiceTable,
) -> Vec<OffloadDecision> {
    assert!(
        table.ns_per_cycle > 0.0,
        "service table must carry a positive ns-per-cycle calibration"
    );
    let screen_bits = sys.enmc_config().screen_bits;
    let mut out = Vec::new();
    for (t, tier) in tiers.iter().enumerate() {
        let tjob = tier.apply(job);
        for (bi, &nmp_cycles) in table.cycles[t].iter().enumerate() {
            let batch = bi + 1;
            let cpu_ns = sys.cpu().screened_classification_ns(
                tjob.categories,
                tjob.hidden,
                tjob.reduced,
                tier.candidates,
                screen_bits,
                batch,
            );
            let cpu_cycles = ((cpu_ns / table.ns_per_cycle).ceil() as u64).max(1);
            out.push(OffloadDecision {
                tier: t,
                batch,
                cpu_cycles,
                nmp_cycles,
                nmp: nmp_cycles <= cpu_cycles,
            });
        }
    }
    out
}

/// Folds per-point decisions into the [`OffloadPlan`] the serving
/// simulators install.
pub fn plan_from_decisions(
    tiers: usize,
    batch_max: usize,
    decisions: &[OffloadDecision],
) -> OffloadPlan {
    let mut cycles = vec![vec![0u64; batch_max]; tiers];
    let mut nmp = vec![vec![false; batch_max]; tiers];
    for d in decisions {
        cycles[d.tier][d.batch - 1] = d.cycles().max(1);
        nmp[d.tier][d.batch - 1] = d.nmp;
    }
    let plan = OffloadPlan { cycles, nmp };
    plan.check_shape(tiers, batch_max);
    plan
}

/// [`plan_decisions`] + [`plan_from_decisions`] over a calibrated table.
pub fn plan_from_table(
    sys: &SystemModel,
    job: &ClassificationJob,
    tiers: &[DegradeTier],
    table: &ServiceTable,
) -> OffloadPlan {
    let batch_max = table.cycles.first().map_or(0, Vec::len);
    plan_from_decisions(tiers.len(), batch_max, &plan_decisions(sys, job, tiers, table))
}

/// Calibrates a service ladder through `cost` and plans it: the one-call
/// entry the CLI's `offload-plan` command and `serve-sim --offload` use.
///
/// # Errors
///
/// Returns the [`SurrogateViolation`] when an audited calibration point
/// misses the declared bound.
pub fn plan_ladder(
    sys: &SystemModel,
    job: &ClassificationJob,
    tiers: &[DegradeTier],
    batch_max: usize,
    sim: &SimConfig,
    cost: &mut CostModel,
) -> Result<(ServiceTable, Vec<OffloadDecision>, OffloadPlan), SurrogateViolation> {
    let table = calibrate_service_table(
        sys,
        job,
        tiers,
        batch_max,
        sim,
        cost,
        "offload-plan calibration",
    )?;
    let decisions = plan_decisions(sys, job, tiers, &table);
    let plan = plan_from_decisions(tiers.len(), batch_max, &decisions);
    Ok((table, decisions, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_surrogate::CostBackend;

    fn small_job() -> ClassificationJob {
        ClassificationJob { categories: 2048, hidden: 64, reduced: 16, batch: 1, candidates: 128 }
    }

    fn ladder() -> Vec<DegradeTier> {
        vec![
            DegradeTier { candidates: 128, screen_shift: 0 },
            DegradeTier { candidates: 32, screen_shift: 2 },
        ]
    }

    fn calibrated() -> (SystemModel, ClassificationJob, Vec<DegradeTier>, ServiceTable) {
        let sys = SystemModel::table3();
        let job = small_job();
        let tiers = ladder();
        let mut cost = CostModel::new(CostBackend::CycleAccurate, 7);
        let table = calibrate_service_table(
            &sys,
            &job,
            &tiers,
            4,
            &SimConfig::sequential(),
            &mut cost,
            "test",
        )
        .unwrap();
        (sys, job, tiers, table)
    }

    #[test]
    fn every_decision_picks_the_cheaper_executor() {
        let (sys, job, tiers, table) = calibrated();
        let decisions = plan_decisions(&sys, &job, &tiers, &table);
        assert_eq!(decisions.len(), tiers.len() * 4);
        for d in &decisions {
            assert_eq!(d.cycles(), d.cpu_cycles.min(d.nmp_cycles));
            assert_eq!(d.nmp, d.nmp_cycles <= d.cpu_cycles, "NMP wins ties");
        }
    }

    #[test]
    fn plan_matches_decisions_and_shape() {
        let (sys, job, tiers, table) = calibrated();
        let decisions = plan_decisions(&sys, &job, &tiers, &table);
        let plan = plan_from_table(&sys, &job, &tiers, &table);
        plan.check_shape(tiers.len(), 4);
        for d in &decisions {
            assert_eq!(plan.cycles[d.tier][d.batch - 1], d.cycles().max(1));
            assert_eq!(plan.nmp[d.tier][d.batch - 1], d.nmp);
        }
    }

    #[test]
    fn plan_never_exceeds_the_calibrated_table() {
        // The planned service time is min(cpu, nmp) — installing a plan
        // can only speed a scenario up.
        let (sys, job, tiers, table) = calibrated();
        let plan = plan_from_table(&sys, &job, &tiers, &table);
        for (t, row) in plan.cycles.iter().enumerate() {
            for (b, &c) in row.iter().enumerate() {
                assert!(c <= table.cycles[t][b]);
            }
        }
    }

    #[test]
    fn plan_ladder_is_deterministic() {
        let sys = SystemModel::table3();
        let job = small_job();
        let tiers = ladder();
        let mut c1 = CostModel::new(CostBackend::CycleAccurate, 7);
        let mut c2 = CostModel::new(CostBackend::CycleAccurate, 7);
        let (t1, d1, p1) =
            plan_ladder(&sys, &job, &tiers, 4, &SimConfig::sequential(), &mut c1).unwrap();
        let (t2, d2, p2) =
            plan_ladder(&sys, &job, &tiers, 4, &SimConfig::with_threads(4), &mut c2).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }
}
