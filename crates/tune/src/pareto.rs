//! Pareto-frontier extraction over evaluated designs and the
//! deterministic frontier JSON fixture format.
//!
//! The objective space is (latency ↓, energy/query ↓, quality ↑). The
//! frontier is sorted by `(latency, energy, lattice index)` and every
//! point carries how many evaluated designs it dominates, so two
//! frontiers over the same space diff byte-identically regardless of
//! worker count or search strategy. The JSON deliberately omits
//! *how many* designs were evaluated — guided search evaluates fewer
//! than exhaustive, and CI diffs the two frontiers for equality.

use crate::eval::EvaluatedDesign;
use crate::space::Budget;

/// One frontier point: the evaluated design plus its dominance count.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The non-dominated design.
    pub design: EvaluatedDesign,
    /// Evaluated designs this point strictly dominates.
    pub dominates: u64,
}

/// Whether `a` Pareto-dominates `b`: no worse on every objective and
/// strictly better on at least one.
pub fn dominates(a: &EvaluatedDesign, b: &EvaluatedDesign) -> bool {
    let no_worse = a.latency_ns <= b.latency_ns
        && a.energy_per_query_nj <= b.energy_per_query_nj
        && a.quality_pct >= b.quality_pct;
    let better = a.latency_ns < b.latency_ns
        || a.energy_per_query_nj < b.energy_per_query_nj
        || a.quality_pct > b.quality_pct;
    no_worse && better
}

/// Extracts the Pareto frontier, sorted by
/// `(latency_ns, energy_per_query_nj, lattice index)`.
pub fn pareto_frontier(evaluated: &[EvaluatedDesign]) -> Vec<FrontierPoint> {
    let mut frontier: Vec<FrontierPoint> = Vec::new();
    for (i, d) in evaluated.iter().enumerate() {
        if evaluated
            .iter()
            .enumerate()
            .any(|(j, other)| j != i && dominates(other, d))
        {
            continue;
        }
        // Duplicate objective vectors: keep every copy (none dominates
        // the other), the sort key separates them by lattice index.
        let count = evaluated.iter().filter(|other| dominates(d, other)).count() as u64;
        frontier.push(FrontierPoint { design: d.clone(), dominates: count });
    }
    frontier.sort_by(|a, b| {
        a.design
            .latency_ns
            .total_cmp(&b.design.latency_ns)
            .then(a.design.energy_per_query_nj.total_cmp(&b.design.energy_per_query_nj))
            .then(a.design.point.index.cmp(&b.design.point.index))
    });
    frontier
}

/// Total dominated designs (with multiplicity collapsed): evaluated
/// designs dominated by at least one frontier point.
pub fn dominated_count(evaluated: &[EvaluatedDesign], frontier: &[FrontierPoint]) -> u64 {
    evaluated
        .iter()
        .filter(|d| frontier.iter().any(|f| dominates(&f.design, d)))
        .count() as u64
}

/// Fixed-precision float for fixture text: enough digits to restore the
/// value, no platform-dependent shortest-form drift.
fn fnum(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:.6}")
    }
}

/// Renders a frontier as the `tune-frontier-v1` JSON fixture: the
/// declared space size, the budget, and every frontier point with its
/// design axes, price, objectives, and provenance. Deterministic by
/// construction; excludes evaluated/audited totals and per-point
/// dominance counts (both depend on how many designs a strategy
/// evaluated) so guided and exhaustive searches over the same space
/// render byte-identically.
pub fn frontier_json(
    workload: &str,
    space_size: usize,
    budget: &Budget,
    frontier: &[FrontierPoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tune-frontier-v1\",\n");
    s.push_str(&format!("  \"workload\": \"{workload}\",\n"));
    s.push_str(&format!("  \"space_size\": {space_size},\n"));
    s.push_str(&format!(
        "  \"max_area_mm2\": {},\n",
        budget.max_area_mm2.map_or("null".to_string(), fnum)
    ));
    s.push_str(&format!(
        "  \"max_power_mw\": {},\n",
        budget.max_power_mw.map_or("null".to_string(), fnum)
    ));
    s.push_str("  \"frontier\": [\n");
    for (i, p) in frontier.iter().enumerate() {
        let d = &p.design;
        let pt = &d.point;
        s.push_str("    {");
        s.push_str(&format!("\"design\": \"{}\", ", pt.label()));
        s.push_str(&format!("\"index\": {}, ", pt.index));
        s.push_str(&format!("\"ranks\": {}, ", pt.ranks));
        s.push_str(&format!("\"lanes\": {}, ", pt.lanes));
        s.push_str(&format!("\"screen_bits\": {}, ", pt.screen_bits));
        s.push_str(&format!("\"screen_shift\": {}, ", pt.screen_shift));
        s.push_str(&format!("\"candidates\": {}, ", pt.candidates));
        s.push_str(&format!("\"batch_max\": {}, ", pt.batch_max));
        s.push_str(&format!("\"linger_cycles\": {}, ", pt.linger_cycles));
        s.push_str(&format!("\"ecc\": {}, ", pt.ecc));
        s.push_str(&format!("\"memory\": \"{}\", ", pt.memory.name()));
        s.push_str(&format!("\"area_mm2\": {}, ", fnum(d.cost.area_mm2)));
        s.push_str(&format!("\"power_mw\": {}, ", fnum(d.cost.power_mw)));
        s.push_str(&format!("\"latency_ns\": {}, ", fnum(d.latency_ns)));
        s.push_str(&format!("\"energy_per_query_nj\": {}, ", fnum(d.energy_per_query_nj)));
        s.push_str(&format!("\"quality_pct\": {}, ", fnum(d.quality_pct)));
        // Per-point dominance counts (like evaluated totals) are over
        // the evaluated set, which guided search keeps smaller — they
        // live in the RunReport, not the mode-diffed fixture.
        s.push_str(&format!("\"provenance\": \"{}\"", d.provenance()));
        s.push('}');
        if i + 1 < frontier.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignPoint;
    use enmc_arch::AreaPower;

    fn design(index: usize, lat: f64, nj: f64, q: f64) -> EvaluatedDesign {
        EvaluatedDesign {
            point: DesignPoint {
                index,
                ranks: 64,
                lanes: 128,
                screen_bits: 4,
                screen_shift: 0,
                candidates: 128,
                batch_max: 4,
                linger_cycles: 0,
                ecc: false,
                memory: enmc_mem::MemTech::Ddr4_2666,
            },
            cost: AreaPower { area_mm2: 28.0, power_mw: 18_000.0 },
            latency_ns: lat,
            energy_per_query_nj: nj,
            quality_pct: q,
            audited: true,
            fit_anchors: 0,
            audit_max_rel_err: 0.0,
        }
    }

    #[test]
    fn dominance_is_strict_and_directional() {
        let a = design(0, 10.0, 10.0, 90.0);
        let b = design(1, 20.0, 20.0, 80.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &a), "a point never dominates itself");
        // Trade-off: faster but lower quality — neither dominates.
        let c = design(2, 5.0, 5.0, 50.0);
        assert!(!dominates(&a, &c));
        assert!(!dominates(&c, &a));
    }

    #[test]
    fn frontier_has_no_dominated_points() {
        let pts = vec![
            design(0, 10.0, 10.0, 90.0),
            design(1, 20.0, 20.0, 80.0), // dominated by 0
            design(2, 5.0, 30.0, 95.0),
            design(3, 30.0, 5.0, 60.0),
        ];
        let frontier = pareto_frontier(&pts);
        let kept: Vec<usize> = frontier.iter().map(|f| f.design.point.index).collect();
        assert_eq!(kept, vec![2, 0, 3], "sorted by latency");
        for f in &frontier {
            assert!(!pts.iter().any(|p| dominates(p, &f.design)));
        }
        assert_eq!(dominated_count(&pts, &frontier), 1);
        assert_eq!(frontier.iter().map(|f| f.dominates).sum::<u64>(), 1);
    }

    #[test]
    fn duplicate_objectives_all_survive() {
        let pts = vec![design(0, 10.0, 10.0, 90.0), design(1, 10.0, 10.0, 90.0)];
        let frontier = pareto_frontier(&pts);
        assert_eq!(frontier.len(), 2);
        assert_eq!(frontier[0].design.point.index, 0, "ties break by index");
    }

    #[test]
    fn json_is_stable_and_excludes_evaluated_counts() {
        let pts = vec![design(0, 10.0, 10.5, 90.0)];
        let frontier = pareto_frontier(&pts);
        let j = frontier_json("lstm", 32, &Budget::default(), &frontier);
        assert!(j.contains("\"schema\": \"tune-frontier-v1\""));
        assert!(j.contains("\"space_size\": 32"));
        assert!(j.contains("\"max_area_mm2\": null"));
        assert!(j.contains("\"energy_per_query_nj\": 10.5"));
        assert!(!j.contains("evaluated"), "guided and exhaustive must render identically");
        assert!(!j.contains("dominates"), "dominance counts depend on the evaluated set");
        let again = frontier_json("lstm", 32, &Budget::default(), &frontier);
        assert_eq!(j, again);
    }
}
