//! Constraint-driven design-space auto-tuner for the ENMC accelerator.
//!
//! The rest of the workspace evaluates *one* design — the paper's
//! Table 3 point. This crate searches the neighborhood the paper never
//! swept: a declared lattice of rank counts, screener lane counts and
//! bitwidths, screening levels, candidate counts, and serving knobs,
//! priced with the Table 4/5 synthesis model and constrained by
//! user-declared area/power budgets.
//!
//! 1. [`space`] — the [`TuneSpace`] lattice, mixed-radix design
//!    indexing, the [`price_design`] Table 4/5 composition, and
//!    [`Budget`] admission.
//! 2. [`eval`] — a lattice point becomes a configured
//!    [`enmc_arch::SystemModel`] and runs through a per-design
//!    [`enmc_surrogate::CostModel`] into latency / energy / quality
//!    coordinates.
//! 3. [`pareto`] — frontier extraction over (latency ↓, energy ↓,
//!    quality ↑) and the deterministic `tune-frontier-v1` JSON fixture.
//! 4. [`search`] — the exhaustive and guided (seeded
//!    local-neighborhood) drivers and the schema-v9 tuning report.
//! 5. [`planner`] — the NMPO-style per-query offload planner: CPU
//!    roofline vs. calibrated NMP cost per `(tier, batch)` admission
//!    point, folded into the [`enmc_serve::OffloadPlan`] hook the
//!    serving and fleet simulators install.
//!
//! # Determinism contract
//!
//! Every design's evaluation is a pure function of
//! `(space, seed, lattice index)`: per-design cost models keep the audit
//! lottery independent of worker count, evaluation order, and search
//! strategy. Frontiers are sorted by `(latency, energy, lattice index)`
//! and the frontier fixture excludes evaluated-design counts, so guided
//! and exhaustive searches over the same space — at any `ENMC_THREADS` —
//! render byte-identical frontier files.

pub mod eval;
pub mod pareto;
pub mod planner;
pub mod search;
pub mod space;

pub use eval::{evaluate_design, evaluate_designs, EvaluatedDesign};
pub use pareto::{dominates, frontier_json, pareto_frontier, FrontierPoint};
pub use planner::{
    plan_decisions, plan_from_decisions, plan_from_table, plan_ladder, OffloadDecision,
};
pub use search::{tune, tune_report, SearchMode, TuneConfig, TuneResult};
pub use space::{price_design, Budget, DesignPoint, TuneSpace};
