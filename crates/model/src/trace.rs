//! Autoregressive decoding traces.
//!
//! The paper's NLP workloads run the classifier once per *decoding step*:
//! the front-end consumes the previously emitted token and produces the
//! next hidden state. This module synthesizes whole decoding trajectories
//! with that sequential dependence — step `t+1`'s hidden state is anchored
//! near a category sampled from the neighbourhood of step `t`'s target —
//! so sequence-level metrics (exact-match decoding, cumulative perplexity)
//! and per-step latency accounting can be evaluated, not just i.i.d.
//! queries.

use crate::synth::SyntheticClassifier;
use enmc_tensor::dist::standard_normal;
use enmc_tensor::Vector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One decoding step: the hidden state the front-end produced and the
/// ground-truth next token.
#[derive(Debug, Clone)]
pub struct DecodeStep {
    /// Hidden representation entering the classifier.
    pub hidden: Vector,
    /// Ground-truth target category for this step.
    pub target: usize,
}

/// A complete decoding trajectory.
#[derive(Debug, Clone)]
pub struct DecodeTrace {
    /// The steps in order.
    pub steps: Vec<DecodeStep>,
}

impl DecodeTrace {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Generates `sentences` traces of `steps` steps each over `synth`'s
/// category space.
///
/// Sequential structure: the first target is Zipf-sampled; each subsequent
/// target is drawn from the 32 nearest categories (by weight-row cosine)
/// of the previous target with probability `locality`, otherwise fresh
/// from the Zipf law — mimicking topical coherence in text.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn generate_traces(
    synth: &SyntheticClassifier,
    sentences: usize,
    steps: usize,
    locality: f64,
    seed: u64,
) -> Vec<DecodeTrace> {
    assert!(steps > 0, "traces need at least one step");
    let mut rng = StdRng::seed_from_u64(seed);
    let l = synth.categories();
    let d = synth.hidden();
    let w = synth.weights();

    let mut traces = Vec::with_capacity(sentences);
    for _ in 0..sentences {
        let mut steps_out = Vec::with_capacity(steps);
        // Seed the sentence with an ordinary query.
        let mut prev_target = synth.sample_queries_seeded(1, rng.random())[0].target;
        for _ in 0..steps {
            let target = if rng.random::<f64>() < locality {
                // A category similar to the previous one: search a random
                // pool for the best cosine (cheap approximate kNN).
                let prev_row = w.row(prev_target);
                let mut best = prev_target;
                let mut best_sim = f32::NEG_INFINITY;
                for _ in 0..32 {
                    let cand = rng.random_range(0..l);
                    if cand == prev_target {
                        continue;
                    }
                    let sim = enmc_tensor::matrix::dot(prev_row, w.row(cand));
                    if sim > best_sim {
                        best_sim = sim;
                        best = cand;
                    }
                }
                best
            } else {
                synth.sample_queries_seeded(1, rng.random())[0].target
            };
            // Hidden state anchored at the target row (like synth queries).
            let row = w.row(target);
            let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            let signal = synth.config().query_signal;
            let noise = 1.0 / (d as f32).sqrt();
            let hidden: Vector = row
                .iter()
                .map(|&x| signal * x / norm + standard_normal(&mut rng) * noise)
                .collect();
            steps_out.push(DecodeStep { hidden, target });
            prev_target = target;
        }
        traces.push(DecodeTrace { steps: steps_out });
    }
    traces
}

/// Sequence-level decoding metrics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SequenceReport {
    /// Fraction of steps where the approximate argmax equals the exact
    /// argmax (per-step agreement).
    pub step_agreement: f64,
    /// Fraction of *sentences* decoded identically start to finish — the
    /// strictest BLEU proxy.
    pub exact_sentences: f64,
    /// Mean per-step perplexity of the targets under the approximate
    /// logits divided by the same under exact logits.
    pub perplexity_ratio: f64,
}

/// Scores an approximate classifier over traces, comparing each step's
/// output against the exact classifier.
pub fn score_traces<F>(synth: &SyntheticClassifier, traces: &[DecodeTrace], mut approx: F) -> SequenceReport
where
    F: FnMut(&Vector) -> Vector,
{
    use enmc_tensor::activation::neg_log_prob;
    use enmc_tensor::select::top_k_indices;
    let mut steps = 0usize;
    let mut agree = 0usize;
    let mut exact_sent = 0usize;
    let mut nlp_full = 0.0;
    let mut nlp_approx = 0.0;
    for trace in traces {
        let mut sentence_exact = true;
        for step in &trace.steps {
            let full = synth.full_logits(&step.hidden);
            let out = approx(&step.hidden);
            let a_full = top_k_indices(full.as_slice(), 1)[0];
            let a_out = top_k_indices(out.as_slice(), 1)[0];
            if a_full == a_out {
                agree += 1;
            } else {
                sentence_exact = false;
            }
            nlp_full += neg_log_prob(full.as_slice(), step.target);
            nlp_approx += neg_log_prob(out.as_slice(), step.target);
            steps += 1;
        }
        if sentence_exact {
            exact_sent += 1;
        }
    }
    let n = steps.max(1) as f64;
    SequenceReport {
        step_agreement: agree as f64 / n,
        exact_sentences: exact_sent as f64 / traces.len().max(1) as f64,
        perplexity_ratio: ((nlp_approx - nlp_full) / n).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthesisConfig;

    fn synth() -> SyntheticClassifier {
        SyntheticClassifier::generate(&SynthesisConfig {
            categories: 600,
            hidden: 48,
            clusters: 12,
            row_noise: 0.4,
            zipf_exponent: 1.0,
            bias_scale: 1.0,
            query_signal: 2.2,
            seed: 5,
        })
        .expect("valid config")
    }

    #[test]
    fn traces_have_requested_shape() {
        let s = synth();
        let traces = generate_traces(&s, 3, 7, 0.7, 1);
        assert_eq!(traces.len(), 3);
        for t in &traces {
            assert_eq!(t.len(), 7);
            assert!(!t.is_empty());
            for step in &t.steps {
                assert!(step.target < 600);
                assert_eq!(step.hidden.len(), 48);
            }
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let s = synth();
        let a = generate_traces(&s, 2, 5, 0.5, 9);
        let b = generate_traces(&s, 2, 5, 0.5, 9);
        for (ta, tb) in a.iter().zip(&b) {
            for (sa, sb) in ta.steps.iter().zip(&tb.steps) {
                assert_eq!(sa.target, sb.target);
                assert_eq!(sa.hidden, sb.hidden);
            }
        }
    }

    #[test]
    fn locality_produces_similar_consecutive_targets() {
        let s = synth();
        let local = generate_traces(&s, 8, 20, 1.0, 3);
        let free = generate_traces(&s, 8, 20, 0.0, 3);
        let mean_sim = |traces: &[DecodeTrace]| {
            let w = s.weights();
            let mut total = 0.0;
            let mut n = 0;
            for t in traces {
                for pair in t.steps.windows(2) {
                    total += enmc_tensor::stats::cosine_similarity(
                        w.row(pair[0].target),
                        w.row(pair[1].target),
                    );
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(mean_sim(&local) > mean_sim(&free) + 0.05);
    }

    #[test]
    fn perfect_approximation_scores_perfectly() {
        let s = synth();
        let traces = generate_traces(&s, 4, 6, 0.6, 11);
        let report = score_traces(&s, &traces, |h| s.full_logits(h));
        assert_eq!(report.step_agreement, 1.0);
        assert_eq!(report.exact_sentences, 1.0);
        assert!((report.perplexity_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn broken_approximation_scores_poorly() {
        let s = synth();
        let traces = generate_traces(&s, 4, 6, 0.6, 13);
        // An "approximation" that returns reversed logits.
        let report = score_traces(&s, &traces, |h| {
            let mut z: Vec<f32> = s.full_logits(h).into_inner();
            z.reverse();
            Vector::from(z)
        });
        assert!(report.step_agreement < 0.2);
        assert!(report.exact_sentences < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let s = synth();
        generate_traces(&s, 1, 0, 0.5, 0);
    }
}
