//! The evaluated workloads (paper Table 2 + the synthetic scaling set).
//!
//! | Application     | Dataset      | Categories | Model       | Hidden | Abbr.             |
//! |-----------------|--------------|-----------:|-------------|-------:|-------------------|
//! | NLP             | Wikitext-2   |     33,278 | LSTM        |   1500 | LSTM-W33K         |
//! | NLP             | Wikitext-103 |    267,744 | Transformer |    512 | Transformer-W268K |
//! | NMT             | WMT16 en-de  |     32,317 | GNMT        |   1024 | GNMT-E32K         |
//! | Recommendation  | Amazon-670k  |    670,091 | XMLCNN      |    512 | XMLCNN-670K       |
//!
//! plus S1M / S10M / S100M with 1e6 / 1e7 / 1e8 categories (d = 512,
//! XMLCNN front-end) used for the scalability study (paper Fig. 15).

/// Task family of a workload, which determines the output normalization and the
/// quality metric: LM and NMT use softmax + perplexity/BLEU, recommendation
/// uses sigmoid + precision@k.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TaskKind {
    /// Language modeling (perplexity).
    LanguageModeling,
    /// Neural machine translation (BLEU proxy = top-1 agreement).
    Translation,
    /// Multi-label recommendation (precision@k).
    Recommendation,
}

/// Front-end (non-classification) model descriptor, used for the Fig. 4
/// breakdown and the end-to-end model of Fig. 15.
///
/// Parameter/operation counts are analytic estimates of the standard
/// architectures (documented per variant) — they only need to have the right
/// order of magnitude relative to the classifier, which is what Fig. 4 shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FrontEnd {
    /// 2-layer LSTM language model (Merity et al.): per layer
    /// `4·(d·d + d·d)` weights, ×2 ops per weight per token.
    Lstm {
        /// Hidden width.
        hidden: usize,
        /// Number of stacked LSTM layers.
        layers: usize,
    },
    /// Transformer decoder stack (Vaswani et al.): per layer `12·d²`
    /// weights (QKVO + 2 FFN matrices at 4× width).
    Transformer {
        /// Model width `d`.
        hidden: usize,
        /// Number of decoder layers.
        layers: usize,
    },
    /// GNMT: 8-layer encoder + 8-layer decoder LSTM with attention.
    Gnmt {
        /// Hidden width.
        hidden: usize,
    },
    /// XML-CNN (Liu et al.): convolutional feature extractor + bottleneck.
    XmlCnn {
        /// Bottleneck (feature) width.
        hidden: usize,
    },
}

impl FrontEnd {
    /// Approximate trainable parameter count of the front-end (excluding
    /// the classification layer and input embeddings).
    pub fn params(&self) -> u64 {
        match *self {
            FrontEnd::Lstm { hidden, layers } => {
                // 4 gates, each with input + recurrent weight matrices.
                (8 * hidden * hidden * layers) as u64
            }
            FrontEnd::Transformer { hidden, layers } => (12 * hidden * hidden * layers) as u64,
            FrontEnd::Gnmt { hidden } => {
                // 8 encoder + 8 decoder LSTM layers + attention.
                (8 * hidden * hidden * 16 + 2 * hidden * hidden) as u64
            }
            FrontEnd::XmlCnn { hidden } => {
                // Convolutional filters + pooling + bottleneck; dominated by
                // the bottleneck projection in the original paper's config.
                (32 * hidden * hidden) as u64
            }
        }
    }

    /// Approximate multiply-accumulate operations to produce one hidden
    /// vector (one token / one query).
    pub fn ops_per_query(&self) -> u64 {
        // Dense layers: 1 MAC per weight per token.
        self.params()
    }
}

/// Identifier for each evaluated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum WorkloadId {
    /// LSTM on Wikitext-2 (33K categories, d=1500).
    LstmW33K,
    /// Transformer on Wikitext-103 (268K categories, d=512).
    TransformerW268K,
    /// GNMT on WMT16 en-de (32K categories, d=1024).
    GnmtE32K,
    /// XMLCNN on Amazon-670k (670K categories, d=512).
    Xmlcnn670K,
    /// Synthetic 1M-category recommendation workload (Fig. 15).
    S1M,
    /// Synthetic 10M-category recommendation workload (Fig. 15).
    S10M,
    /// Synthetic 100M-category recommendation workload (Fig. 15).
    S100M,
}

impl WorkloadId {
    /// The four real workloads of Table 2, in the paper's order.
    pub fn table2() -> [WorkloadId; 4] {
        [
            WorkloadId::LstmW33K,
            WorkloadId::TransformerW268K,
            WorkloadId::GnmtE32K,
            WorkloadId::Xmlcnn670K,
        ]
    }

    /// The synthetic scaling workloads of Fig. 15.
    pub fn scaling() -> [WorkloadId; 3] {
        [WorkloadId::S1M, WorkloadId::S10M, WorkloadId::S100M]
    }
}

impl core::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.workload().abbr)
    }
}

/// A fully described workload: shapes, task type and front-end.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Which workload this is.
    pub id: WorkloadId,
    /// Paper abbreviation, e.g. `"Transformer-W268K"`.
    pub abbr: &'static str,
    /// Number of classification categories `l`.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Task family.
    pub task: TaskKind,
    /// Front-end model descriptor.
    pub front_end: FrontEnd,
}

impl Workload {
    /// Classifier weight parameter count (`l × d`, excluding bias).
    pub fn classifier_params(&self) -> u64 {
        self.categories as u64 * self.hidden as u64
    }

    /// Classifier FP32 weight bytes — the quantity plotted in Fig. 5(a).
    pub fn classifier_bytes(&self) -> u64 {
        self.classifier_params() * 4
    }

    /// MACs for one full classification (`l·d`).
    pub fn classifier_ops_per_query(&self) -> u64 {
        self.classifier_params()
    }

    /// Fraction of total parameters consumed by the classifier (Fig. 4).
    pub fn classifier_param_fraction(&self) -> f64 {
        let c = self.classifier_params() as f64;
        c / (c + self.front_end.params() as f64)
    }

    /// Fraction of per-query operations consumed by the classifier (Fig. 4).
    pub fn classifier_ops_fraction(&self) -> f64 {
        let c = self.classifier_ops_per_query() as f64;
        c / (c + self.front_end.ops_per_query() as f64)
    }
}

impl WorkloadId {
    /// Returns the full workload description (Table 2 constants).
    pub fn workload(self) -> Workload {
        match self {
            WorkloadId::LstmW33K => Workload {
                id: self,
                abbr: "LSTM-W33K",
                categories: 33_278,
                hidden: 1500,
                task: TaskKind::LanguageModeling,
                front_end: FrontEnd::Lstm { hidden: 1500, layers: 2 },
            },
            WorkloadId::TransformerW268K => Workload {
                id: self,
                abbr: "Transformer-W268K",
                categories: 267_744,
                hidden: 512,
                task: TaskKind::LanguageModeling,
                front_end: FrontEnd::Transformer { hidden: 512, layers: 6 },
            },
            WorkloadId::GnmtE32K => Workload {
                id: self,
                abbr: "GNMT-E32K",
                categories: 32_317,
                hidden: 1024,
                task: TaskKind::Translation,
                front_end: FrontEnd::Gnmt { hidden: 1024 },
            },
            WorkloadId::Xmlcnn670K => Workload {
                id: self,
                abbr: "XMLCNN-670K",
                categories: 670_091,
                hidden: 512,
                task: TaskKind::Recommendation,
                front_end: FrontEnd::XmlCnn { hidden: 512 },
            },
            WorkloadId::S1M => Workload {
                id: self,
                abbr: "S1M",
                categories: 1_000_000,
                hidden: 512,
                task: TaskKind::Recommendation,
                front_end: FrontEnd::XmlCnn { hidden: 512 },
            },
            WorkloadId::S10M => Workload {
                id: self,
                abbr: "S10M",
                categories: 10_000_000,
                hidden: 512,
                task: TaskKind::Recommendation,
                front_end: FrontEnd::XmlCnn { hidden: 512 },
            },
            WorkloadId::S100M => Workload {
                id: self,
                abbr: "S100M",
                categories: 100_000_000,
                hidden: 512,
                task: TaskKind::Recommendation,
                front_end: FrontEnd::XmlCnn { hidden: 512 },
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shapes_match_paper() {
        let w = WorkloadId::TransformerW268K.workload();
        assert_eq!(w.categories, 267_744);
        assert_eq!(w.hidden, 512);
        let w = WorkloadId::LstmW33K.workload();
        assert_eq!(w.categories, 33_278);
        assert_eq!(w.hidden, 1500);
        let w = WorkloadId::GnmtE32K.workload();
        assert_eq!(w.categories, 32_317);
        assert_eq!(w.hidden, 1024);
        let w = WorkloadId::Xmlcnn670K.workload();
        assert_eq!(w.categories, 670_091);
        assert_eq!(w.hidden, 512);
    }

    #[test]
    fn hundred_million_categories_is_about_190gb() {
        // Paper §1/§2.2: "around 190GB" for 100M categories at d=512.
        let w = WorkloadId::S100M.workload();
        let gb = w.classifier_bytes() as f64 / (1u64 << 30) as f64;
        assert!((180.0..200.0).contains(&gb), "footprint {gb} GB");
    }

    #[test]
    fn classifier_dominates_at_large_category_counts() {
        // Fig. 4: classification share grows with category size.
        let small = WorkloadId::GnmtE32K.workload().classifier_param_fraction();
        let big = WorkloadId::Xmlcnn670K.workload().classifier_param_fraction();
        assert!(big > small);
        assert!(big > 0.9, "classifier fraction {big}");
    }

    #[test]
    fn nlp_classifier_fraction_is_significant() {
        // Fig. 4: for NLP tasks classifiers consume "a significant amount".
        for id in [WorkloadId::LstmW33K, WorkloadId::TransformerW268K, WorkloadId::GnmtE32K] {
            let f = id.workload().classifier_param_fraction();
            assert!(f > 0.15, "{id}: {f}");
        }
    }

    #[test]
    fn display_uses_abbr() {
        assert_eq!(WorkloadId::Xmlcnn670K.to_string(), "XMLCNN-670K");
    }

    #[test]
    fn scaling_workloads_monotone() {
        let ws = WorkloadId::scaling();
        assert!(ws[0].workload().categories < ws[1].workload().categories);
        assert!(ws[1].workload().categories < ws[2].workload().categories);
    }
}
