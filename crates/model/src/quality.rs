//! Quality metrics: how faithful is an approximated classification to the
//! full one?
//!
//! The paper reports BLEU (NMT), perplexity (LM) and accuracy/P@k
//! (recommendation). Without the original test sets we measure the same
//! *mechanism* — how much quality the approximation gives up — by comparing
//! the mixed (approximate + accurate) output against the full classifier
//! output on identical queries:
//!
//! * **top-1 agreement** — fraction of queries where the approximation
//!   selects the same argmax as the full classifier. This is the greedy
//!   decoding decision, so it is a direct proxy for BLEU preservation: if
//!   every decoding step picks the same word, the translation is identical.
//! * **perplexity ratio** — perplexity of the ground-truth targets under
//!   the approximated logits divided by perplexity under the full logits
//!   (1.0 = no degradation).
//! * **precision@k** — overlap between the approximate and full top-k sets,
//!   the standard XC metric for recommendation.

use enmc_tensor::activation::neg_log_prob;
use enmc_tensor::select::top_k_indices;

/// Quality of an approximate classification, accumulated over queries.
#[derive(Debug, Clone, Default)]
pub struct QualityAccumulator {
    n: usize,
    top1_hits: usize,
    p_at_k_sum: f64,
    k: usize,
    nlp_full_sum: f64,
    nlp_approx_sum: f64,
}

/// Summary statistics produced by [`QualityAccumulator::finish`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QualityReport {
    /// Number of queries accumulated.
    pub queries: usize,
    /// Fraction of queries whose argmax matches the full classifier
    /// (BLEU proxy for translation, accuracy proxy for recommendation).
    pub top1_agreement: f64,
    /// Mean overlap of approximate vs full top-k sets.
    pub precision_at_k: f64,
    /// `k` used for `precision_at_k`.
    pub k: usize,
    /// Perplexity of targets under the full logits.
    pub perplexity_full: f64,
    /// Perplexity of targets under the approximate logits.
    pub perplexity_approx: f64,
}

impl QualityReport {
    /// Ratio `perplexity_approx / perplexity_full`; 1.0 means lossless.
    pub fn perplexity_ratio(&self) -> f64 {
        if self.perplexity_full == 0.0 {
            0.0
        } else {
            self.perplexity_approx / self.perplexity_full
        }
    }

    /// Quality degradation in percent for the task-appropriate metric
    /// (uses top-1 agreement): `100·(1 − agreement)`.
    pub fn degradation_pct(&self) -> f64 {
        100.0 * (1.0 - self.top1_agreement)
    }
}

impl QualityAccumulator {
    /// Creates an accumulator that measures precision@`k`.
    pub fn new(k: usize) -> Self {
        QualityAccumulator { k, ..Default::default() }
    }

    /// Accumulates one query.
    ///
    /// `full` are the exact logits, `approx` the mixed approximate/accurate
    /// logits, `target` the ground-truth category (for perplexity).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `target` is out of range.
    pub fn add(&mut self, full: &[f32], approx: &[f32], target: usize) {
        assert_eq!(full.len(), approx.len(), "logit length mismatch");
        assert!(target < full.len(), "target out of range");
        self.n += 1;
        let t_full = top_k_indices(full, self.k.max(1));
        let t_approx = top_k_indices(approx, self.k.max(1));
        if t_full.first() == t_approx.first() {
            self.top1_hits += 1;
        }
        let full_set: std::collections::HashSet<usize> = t_full.iter().copied().collect();
        let overlap = t_approx.iter().filter(|i| full_set.contains(i)).count();
        self.p_at_k_sum += overlap as f64 / self.k.max(1) as f64;
        self.nlp_full_sum += neg_log_prob(full, target);
        self.nlp_approx_sum += neg_log_prob(approx, target);
    }

    /// Absorbs another accumulator's queries, e.g. one evaluated on a
    /// different shard of the batch. Merging shard accumulators in shard
    /// order reproduces the sequential accumulation exactly: the counters
    /// are sums, so the result is independent of how the shards were
    /// scheduled — only of the shard boundaries and merge order.
    ///
    /// # Panics
    ///
    /// Panics when the accumulators measure different `k`.
    pub fn merge(&mut self, other: &QualityAccumulator) {
        assert_eq!(self.k, other.k, "precision@k mismatch");
        self.n += other.n;
        self.top1_hits += other.top1_hits;
        self.p_at_k_sum += other.p_at_k_sum;
        self.nlp_full_sum += other.nlp_full_sum;
        self.nlp_approx_sum += other.nlp_approx_sum;
    }

    /// Number of queries accumulated so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Produces the final report.
    ///
    /// # Panics
    ///
    /// Panics if no queries were accumulated.
    pub fn finish(&self) -> QualityReport {
        assert!(self.n > 0, "no queries accumulated");
        let n = self.n as f64;
        QualityReport {
            queries: self.n,
            top1_agreement: self.top1_hits as f64 / n,
            precision_at_k: self.p_at_k_sum / n,
            k: self.k,
            perplexity_full: (self.nlp_full_sum / n).exp(),
            perplexity_approx: (self.nlp_approx_sum / n).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_logits_are_lossless() {
        let mut acc = QualityAccumulator::new(5);
        let z = vec![0.1, 0.9, -0.5, 2.0, 0.0, 1.0];
        for t in 0..3 {
            acc.add(&z, &z, t);
        }
        let r = acc.finish();
        assert_eq!(r.queries, 3);
        assert_eq!(r.top1_agreement, 1.0);
        assert_eq!(r.precision_at_k, 1.0);
        assert!((r.perplexity_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(r.degradation_pct(), 0.0);
    }

    #[test]
    fn wrong_argmax_counts_against_top1() {
        let mut acc = QualityAccumulator::new(2);
        let full = vec![0.0, 1.0, 2.0];
        let approx = vec![5.0, 1.0, 2.0]; // different argmax
        acc.add(&full, &approx, 2);
        let r = acc.finish();
        assert_eq!(r.top1_agreement, 0.0);
        assert!(r.degradation_pct() > 99.0);
    }

    #[test]
    fn precision_at_k_counts_overlap() {
        let mut acc = QualityAccumulator::new(2);
        let full = vec![3.0, 2.0, 1.0, 0.0]; // top-2 = {0,1}
        let approx = vec![3.0, 0.0, 2.5, 0.0]; // top-2 = {0,2}
        acc.add(&full, &approx, 0);
        let r = acc.finish();
        assert!((r.precision_at_k - 0.5).abs() < 1e-9);
    }

    #[test]
    fn perplexity_worsens_when_target_suppressed() {
        let mut acc = QualityAccumulator::new(1);
        let full = vec![2.0, 0.0, 0.0];
        let approx = vec![-2.0, 0.0, 0.0]; // target 0 suppressed
        acc.add(&full, &approx, 0);
        let r = acc.finish();
        assert!(r.perplexity_approx > r.perplexity_full);
        assert!(r.perplexity_ratio() > 1.0);
    }

    #[test]
    #[should_panic(expected = "no queries")]
    fn finish_requires_data() {
        QualityAccumulator::new(1).finish();
    }

    #[test]
    fn merged_shards_match_sequential_accumulation() {
        let queries: Vec<(Vec<f32>, Vec<f32>, usize)> = (0..12)
            .map(|i| {
                let full = vec![i as f32, 1.0, 2.0, 0.5];
                let approx = vec![i as f32 * 0.9, 1.1, 2.0, 0.4];
                (full, approx, i % 4)
            })
            .collect();
        let mut seq = QualityAccumulator::new(2);
        for (f, a, t) in &queries {
            seq.add(f, a, *t);
        }
        let mut merged = QualityAccumulator::new(2);
        for shard in queries.chunks(5) {
            let mut acc = QualityAccumulator::new(2);
            for (f, a, t) in shard {
                acc.add(f, a, *t);
            }
            merged.merge(&acc);
        }
        assert_eq!(merged.len(), seq.len());
        let (m, s) = (merged.finish(), seq.finish());
        assert_eq!(m.top1_agreement, s.top1_agreement);
        assert_eq!(m.k, s.k);
        // The float sums re-associate across shards; equal up to rounding.
        assert!((m.precision_at_k - s.precision_at_k).abs() < 1e-12);
        assert!((m.perplexity_full - s.perplexity_full).abs() < 1e-9 * s.perplexity_full);
        assert!((m.perplexity_approx - s.perplexity_approx).abs() < 1e-9 * s.perplexity_approx);
    }

    #[test]
    #[should_panic(expected = "precision@k mismatch")]
    fn merge_rejects_different_k() {
        let mut a = QualityAccumulator::new(2);
        a.merge(&QualityAccumulator::new(3));
    }

    #[test]
    fn is_empty_reflects_state() {
        let mut acc = QualityAccumulator::new(1);
        assert!(acc.is_empty());
        acc.add(&[1.0, 0.0], &[1.0, 0.0], 0);
        assert!(!acc.is_empty());
        assert_eq!(acc.len(), 1);
    }
}
