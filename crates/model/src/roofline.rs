//! Roofline analysis (paper Fig. 5b).
//!
//! Fig. 5(b) plots the major components — front-end DNN, approximate
//! screening, candidate-only classification — on a CPU roofline. The
//! message: after approximation, both screening and candidate-only
//! classification remain *bandwidth-bound* (low operational intensity),
//! unlike the compute-bound front-end, so they benefit from NMP bandwidth.

/// A machine roofline: peak compute and peak memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Roofline {
    /// Peak floating-point throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bw_gbs: f64,
}

impl Roofline {
    /// The paper's CPU baseline: Intel Xeon Platinum 8280 — 28 cores at
    /// 2.7 GHz with AVX-512 (2 FMA units → 64 FLOP/cycle/core) and six
    /// DDR4-2666 channels (128 GB/s ideal).
    pub fn xeon_8280() -> Self {
        Roofline { peak_gflops: 28.0 * 2.7 * 64.0, peak_bw_gbs: 128.0 }
    }

    /// Operational intensity (FLOP/byte) at which the machine transitions
    /// from bandwidth-bound to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        self.peak_gflops / self.peak_bw_gbs
    }

    /// Attainable GFLOP/s at operational intensity `oi`.
    pub fn attainable_gflops(&self, oi: f64) -> f64 {
        (oi * self.peak_bw_gbs).min(self.peak_gflops)
    }

    /// `true` if a kernel at intensity `oi` is limited by bandwidth.
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_point()
    }
}

/// A kernel characterized by its FLOPs and bytes moved per query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelPoint {
    /// Display name.
    pub name: &'static str,
    /// Floating-point (or integer MAC×2) operations per query batch.
    pub flops: f64,
    /// Bytes transferred from memory per query batch.
    pub bytes: f64,
}

impl KernelPoint {
    /// Operational intensity in FLOP/byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }
}

/// Builds the Fig. 5(b) kernel points for a classifier `(l, d)` with
/// screening dimension `k`, candidate count `m`, screening weight bytes per
/// element `wt_bytes` (0.5 for INT4), and batch size `batch`.
///
/// Weights are streamed once per batch (they far exceed any cache), so
/// larger batches raise intensity — the paper's "darker color indicates
/// larger batch size".
pub fn figure5b_points(
    l: usize,
    d: usize,
    k: usize,
    m: usize,
    wt_bytes: f64,
    batch: usize,
) -> Vec<KernelPoint> {
    let b = batch as f64;
    let lf = l as f64;
    let df = d as f64;
    let kf = k as f64;
    let mf = m as f64;
    vec![
        KernelPoint {
            name: "screening",
            flops: 2.0 * lf * kf * b,
            bytes: lf * kf * wt_bytes + b * kf * 4.0,
        },
        KernelPoint {
            name: "candidate-only classification",
            flops: 2.0 * mf * df * b,
            // Each query gathers its own candidate rows.
            bytes: b * (mf * df * 4.0 + df * 4.0),
        },
        KernelPoint {
            name: "front-end DNN",
            // Dense front-end: weights reused across the batch; activations
            // stay on-chip. Approximate a 12·d² transformer layer stack (6).
            flops: 2.0 * 72.0 * df * df * b,
            bytes: 72.0 * df * df * 4.0,
        },
        KernelPoint {
            name: "full classification",
            flops: 2.0 * lf * df * b,
            bytes: lf * df * 4.0 + b * df * 4.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_of_xeon() {
        let r = Roofline::xeon_8280();
        // ~4838 GFLOPs / 128 GB/s ≈ 37.8 FLOP/byte.
        assert!((35.0..42.0).contains(&r.ridge_point()), "{}", r.ridge_point());
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let r = Roofline::xeon_8280();
        assert_eq!(r.attainable_gflops(1e9), r.peak_gflops);
        assert!((r.attainable_gflops(1.0) - r.peak_bw_gbs).abs() < 1e-9);
    }

    #[test]
    fn screening_and_candidates_memory_bound_frontend_not() {
        let r = Roofline::xeon_8280();
        // The paper's deployment batch sizes are 1-4 (Fig. 13); batch 128
        // is included only to show the front-end crossing the ridge.
        for batch in [1usize, 2, 4, 128] {
            let pts = figure5b_points(267_744, 512, 128, 2048, 0.5, batch);
            let screening = &pts[0];
            let cand = &pts[1];
            let fe = &pts[2];
            if batch <= 4 {
                assert!(r.is_memory_bound(screening.intensity()), "batch {batch}");
                assert!(r.is_memory_bound(cand.intensity()), "batch {batch}");
            }
            // Front-end reuses its weights across the batch, so its
            // intensity scales with batch and crosses the ridge as the
            // batch grows (the paper's "darker color" direction).
            if batch >= 128 {
                assert!(!r.is_memory_bound(fe.intensity()), "batch {batch}");
            }
            let _ = cand;
        }
    }

    #[test]
    fn intensity_rises_with_batch_for_screening() {
        let p1 = figure5b_points(267_744, 512, 128, 2048, 0.5, 1)[0].intensity();
        let p4 = figure5b_points(267_744, 512, 128, 2048, 0.5, 4)[0].intensity();
        assert!(p4 > p1);
    }

    #[test]
    fn zero_bytes_is_infinite_intensity() {
        let k = KernelPoint { name: "x", flops: 1.0, bytes: 0.0 };
        assert!(k.intensity().is_infinite());
    }
}
