//! Parameter / operation breakdown (paper Fig. 4).
//!
//! Fig. 4 splits each workload's parameters and per-query operations into
//! *classification* (the final `l × d` layer) and *non-classification*
//! (input embedding + hidden layers). The figure's message: classifiers
//! consume a significant share for NLP tasks and become the bottleneck as
//! categories scale to millions.

use crate::workloads::{Workload, WorkloadId};

/// One row of the Fig. 4 breakdown.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BreakdownRow {
    /// Workload abbreviation.
    pub workload: &'static str,
    /// Classifier parameters.
    pub classifier_params: u64,
    /// Front-end (non-classification) parameters.
    pub front_end_params: u64,
    /// Classifier share of parameters in `[0, 1]`.
    pub param_fraction: f64,
    /// Classifier share of per-query operations in `[0, 1]`.
    pub ops_fraction: f64,
}

impl BreakdownRow {
    /// Computes the breakdown for one workload.
    pub fn for_workload(w: &Workload) -> Self {
        BreakdownRow {
            workload: w.abbr,
            classifier_params: w.classifier_params(),
            front_end_params: w.front_end.params(),
            param_fraction: w.classifier_param_fraction(),
            ops_fraction: w.classifier_ops_fraction(),
        }
    }
}

/// The full Fig. 4 table: the four Table 2 workloads plus the synthetic
/// scaling points that show classification becoming the bottleneck.
pub fn figure4_breakdown() -> Vec<BreakdownRow> {
    WorkloadId::table2()
        .iter()
        .chain(WorkloadId::scaling().iter())
        .map(|id| BreakdownRow::for_workload(&id.workload()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_seven_rows() {
        assert_eq!(figure4_breakdown().len(), 7);
    }

    #[test]
    fn fractions_in_unit_interval() {
        for row in figure4_breakdown() {
            assert!((0.0..=1.0).contains(&row.param_fraction), "{row:?}");
            assert!((0.0..=1.0).contains(&row.ops_fraction), "{row:?}");
        }
    }

    #[test]
    fn classification_share_grows_with_categories() {
        let rows = figure4_breakdown();
        let s1m = rows.iter().find(|r| r.workload == "S1M").unwrap();
        let s100m = rows.iter().find(|r| r.workload == "S100M").unwrap();
        assert!(s100m.param_fraction > s1m.param_fraction);
        assert!(s100m.param_fraction > 0.99);
    }

    #[test]
    fn nlp_workloads_have_significant_share() {
        let rows = figure4_breakdown();
        for abbr in ["LSTM-W33K", "Transformer-W268K", "GNMT-E32K"] {
            let r = rows.iter().find(|r| r.workload == abbr).unwrap();
            assert!(r.param_fraction > 0.15, "{abbr}: {}", r.param_fraction);
        }
    }
}
