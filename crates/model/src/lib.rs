//! Workload models and evaluation metrics for the ENMC reproduction.
//!
//! The paper evaluates on four real applications (Table 2) plus three
//! synthetic scaling datasets (S1M/S10M/S100M). We do not have the
//! pre-trained PyTorch checkpoints or the datasets, so this crate supplies:
//!
//! * [`workloads`] — the exact `(l, d)` shapes, task types and front-end
//!   model descriptors of Table 2, used to drive both the algorithm-level
//!   and architecture-level evaluation;
//! * [`synth`] — a synthetic classifier/query generator whose geometry
//!   (cluster structure + Zipfian popularity) makes approximate screening
//!   behave the way it does on real classifiers;
//! * [`quality`] — quality proxies (top-1/top-k agreement, perplexity ratio,
//!   precision@k) computed against the *full* classification output;
//! * [`breakdown`] — parameter/operation split between classification and
//!   the front-end network (paper Fig. 4);
//! * [`footprint`] — classifier memory footprint scaling (paper Fig. 5a);
//! * [`roofline`] — operational-intensity analysis (paper Fig. 5b).

pub mod breakdown;
pub mod footprint;
pub mod quality;
pub mod roofline;
pub mod statistics;
pub mod synth;
pub mod trace;
pub mod workloads;

pub use quality::QualityReport;
pub use synth::{SyntheticClassifier, SynthesisConfig};
pub use workloads::{FrontEnd, TaskKind, Workload, WorkloadId};
