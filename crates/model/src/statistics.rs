//! Workload realism statistics.
//!
//! The substitution argument in DESIGN.md §1 rests on the synthetic
//! workloads having the *statistical properties* approximate screening
//! exploits on real classifiers. This module measures those properties —
//! logit concentration, effective rank, popularity skew — so the claim is
//! checked by tests rather than asserted in prose.

use crate::synth::SyntheticClassifier;
use enmc_tensor::activation::softmax;
use enmc_tensor::select::top_k_indices;

/// Distributional statistics of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadStats {
    /// Mean probability mass captured by the top-10 categories per query
    /// (concentration — high for trained models on in-distribution data).
    pub top10_mass: f64,
    /// Mean softmax entropy in nats (low = concentrated).
    pub entropy: f64,
    /// Fraction of total row-space energy captured by the top `r`
    /// principal directions (effective-rank proxy), where `r` is the
    /// cluster count used at generation.
    pub spectral_mass: f64,
    /// Fraction of query targets falling in the most popular 10 % of
    /// categories (popularity skew).
    pub head_mass: f64,
}

/// Measures `synth` over `queries` sampled queries.
///
/// The spectral mass is estimated by projecting rows onto the span of the
/// per-cluster mean rows (cheap, avoids a full SVD) — an underestimate of
/// the true top-`r` spectral mass, hence a conservative bound.
pub fn measure(synth: &SyntheticClassifier, queries: usize, seed: u64) -> WorkloadStats {
    let qs = synth.sample_queries_seeded(queries.max(1), seed);
    let mut top10 = 0.0;
    let mut entropy = 0.0;
    let mut head = 0usize;
    let head_cut = synth.categories() / 10;
    for q in &qs {
        let z = synth.full_logits(&q.hidden);
        let p = softmax(z.as_slice());
        top10 += top_k_indices(&p, 10).iter().map(|&i| p[i] as f64).sum::<f64>();
        entropy += -p
            .iter()
            .filter(|&&x| x > 0.0)
            .map(|&x| (x as f64) * (x as f64).ln())
            .sum::<f64>();
        if q.target < head_cut {
            head += 1;
        }
    }
    let n = qs.len() as f64;

    // Spectral-mass proxy: energy of rows explained by the K-means-style
    // span of `clusters` random anchor rows' directions.
    let w = synth.weights();
    let clusters = synth.config().clusters.min(w.rows());
    let anchors: Vec<usize> =
        (0..clusters).map(|c| c * w.rows() / clusters).collect();
    let mut explained = 0.0_f64;
    let mut total = 0.0_f64;
    for r in 0..w.rows() {
        let row = w.row(r);
        let norm2: f64 = row.iter().map(|&x| (x as f64).powi(2)).sum();
        total += norm2;
        // Best single-anchor projection (lower bound on span projection).
        let mut best = 0.0_f64;
        for &a in &anchors {
            let anchor = w.row(a);
            let a_norm2: f64 = anchor.iter().map(|&x| (x as f64).powi(2)).sum();
            if a_norm2 == 0.0 {
                continue;
            }
            let dot: f64 =
                row.iter().zip(anchor).map(|(&x, &y)| x as f64 * y as f64).sum();
            best = best.max(dot * dot / a_norm2);
        }
        explained += best.min(norm2);
    }
    WorkloadStats {
        top10_mass: top10 / n,
        entropy: entropy / n,
        spectral_mass: if total > 0.0 { explained / total } else { 0.0 },
        head_mass: head as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::SynthesisConfig;

    fn synth(query_signal: f32, zipf: f64) -> SyntheticClassifier {
        SyntheticClassifier::generate(&SynthesisConfig {
            categories: 1500,
            hidden: 64,
            clusters: 24,
            row_noise: 0.4,
            zipf_exponent: zipf,
            bias_scale: 1.0,
            query_signal,
            seed: 31,
        })
        .expect("valid synth")
    }

    #[test]
    fn queries_are_concentrated() {
        // In-distribution queries of a trained classifier put most softmax
        // mass on a few categories (the paper's §3.1 approximation
        // opportunity).
        let s = measure(&synth(2.2, 1.0), 60, 9);
        // A uniform distribution would put 10/1500 = 0.67% in the top-10;
        // the synthetic queries concentrate several times that, and the
        // entropy sits clearly below the uniform maximum ln(1500) = 7.31.
        let uniform_top10 = 10.0 / 1500.0;
        assert!(s.top10_mass > 5.0 * uniform_top10, "top-10 mass {}", s.top10_mass);
        assert!(s.entropy < (1500.0_f64).ln() * 0.97, "entropy {}", s.entropy);
    }

    #[test]
    fn stronger_signal_concentrates_more() {
        let weak = measure(&synth(1.0, 1.0), 60, 9);
        let strong = measure(&synth(3.0, 1.0), 60, 9);
        assert!(strong.top10_mass > weak.top10_mass);
        assert!(strong.entropy < weak.entropy);
    }

    #[test]
    fn rows_have_low_effective_rank() {
        let s = measure(&synth(2.2, 1.0), 10, 9);
        // Cluster structure: a large share of row energy lies along the
        // anchor directions even with the conservative single-anchor bound.
        assert!(s.spectral_mass > 0.4, "spectral mass {}", s.spectral_mass);
    }

    #[test]
    fn zipf_skews_targets_to_the_head() {
        let flat = measure(&synth(2.2, 0.0), 400, 9);
        let skewed = measure(&synth(2.2, 1.2), 400, 9);
        assert!(skewed.head_mass > flat.head_mass + 0.1,
            "skewed {} vs flat {}", skewed.head_mass, flat.head_mass);
        // Uniform targets put ~10% in the head decile.
        assert!((flat.head_mass - 0.1).abs() < 0.06, "flat head {}", flat.head_mass);
    }
}
