//! Memory footprint scaling (paper Fig. 5a).
//!
//! The classifier's memory usage grows linearly with the category count and
//! hidden dimension; at industrial scale it exceeds accelerator and even
//! host memory (190 GB at 100M × 512). This module provides the points for
//! the Fig. 5(a) sweep and the screening-module footprint used to verify
//! the paper's "<0.1 % projection overhead / ~3 % screening weights" claims.

use enmc_tensor::quant::Precision;

/// Memory footprint of one classification configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Footprint {
    /// Category count `l`.
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Full classifier bytes (FP32 weights + bias).
    pub classifier_bytes: u64,
    /// Screening-module bytes (quantized `W̃` + bias + 2-bit `P`).
    pub screener_bytes: u64,
}

impl Footprint {
    /// Computes the footprint for a classifier with a screening module of
    /// reduction `scale` (`k = scale·d`) at `precision`.
    pub fn compute(categories: usize, hidden: usize, scale: f64, precision: Precision) -> Self {
        let k = reduced_dim(hidden, scale);
        let classifier_bytes = categories as u64 * hidden as u64 * 4 + categories as u64 * 4;
        let wt_bytes = precision.nbytes(categories * k) as u64;
        let bias_bytes = categories as u64 * 4;
        let proj_bytes = ((k * hidden).div_ceil(4)) as u64; // 2-bit dense P
        Footprint {
            categories,
            hidden,
            classifier_bytes,
            screener_bytes: wt_bytes + bias_bytes + proj_bytes,
        }
    }

    /// Screener bytes as a fraction of the classifier bytes.
    pub fn screener_fraction(&self) -> f64 {
        self.screener_bytes as f64 / self.classifier_bytes as f64
    }
}

/// Reduced dimension `k = round(scale · d)`, minimum 1.
pub fn reduced_dim(hidden: usize, scale: f64) -> usize {
    ((hidden as f64 * scale).round() as usize).max(1)
}

/// The Fig. 5(a) category sweep at `d = 512`: 10K → 100M.
pub fn figure5a_sweep() -> Vec<Footprint> {
    [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]
        .iter()
        .map(|&l| Footprint::compute(l, 512, 0.25, Precision::Int4))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_linear_in_categories() {
        let a = Footprint::compute(1000, 512, 0.25, Precision::Int4);
        let b = Footprint::compute(2000, 512, 0.25, Precision::Int4);
        // Bias contributes linearly too, so exactly 2x.
        assert_eq!(b.classifier_bytes, a.classifier_bytes * 2);
    }

    #[test]
    fn s100m_footprint_about_190_gb() {
        let f = Footprint::compute(100_000_000, 512, 0.25, Precision::Int4);
        let gb = f.classifier_bytes as f64 / (1u64 << 30) as f64;
        assert!((180.0..200.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn screener_overhead_near_three_percent() {
        // scale 0.25 at INT4 = 1/4 dims × 1/8 bytes ≈ 3.1% of the classifier
        // (paper §7.1 sets screening overhead to 3.1% of full classification).
        let f = Footprint::compute(267_744, 512, 0.25, Precision::Int4);
        let frac = f.screener_fraction();
        assert!((0.028..0.045).contains(&frac), "screener fraction {frac}");
    }

    #[test]
    fn reduced_dim_rounds_and_clamps() {
        assert_eq!(reduced_dim(512, 0.25), 128);
        assert_eq!(reduced_dim(1500, 0.25), 375);
        assert_eq!(reduced_dim(4, 0.01), 1);
    }

    #[test]
    fn sweep_is_monotone() {
        let sweep = figure5a_sweep();
        assert_eq!(sweep.len(), 5);
        for pair in sweep.windows(2) {
            assert!(pair[1].classifier_bytes > pair[0].classifier_bytes);
        }
    }
}
