//! Synthetic extreme-classification workload generation.
//!
//! We do not have the paper's pre-trained checkpoints, so we synthesize
//! `(W, b, h)` triples whose geometry reproduces the properties approximate
//! screening exploits on real classifiers:
//!
//! 1. **Low effective rank.** Real classifier rows live near a
//!    lower-dimensional manifold (word embeddings cluster by topic, product
//!    embeddings by catalogue structure). We draw rows as
//!    `w_i = c_{g(i)} + ε_i` from `n_clusters` Gaussian cluster centres —
//!    giving `W` an effective rank around `n_clusters`, so a learned
//!    `k`-dimensional screener approximates it well when `k ≳ n_clusters`
//!    and degrades gracefully below (the Fig. 12a shape).
//! 2. **Zipfian popularity.** Real vocabularies and catalogues are heavily
//!    skewed. The logit bias `b` carries a Zipf popularity bonus and query
//!    targets are drawn from the same Zipf law, so the "few candidates
//!    matter" property (paper §3.1) holds.
//! 3. **Concentrated queries.** A query's hidden vector is the (normalized)
//!    target row plus noise, so the full classifier assigns the target a
//!    high probability — as a trained model would on in-distribution data.
//!
//! The generator is seeded and deterministic, so every experiment is
//! reproducible bit-for-bit.

use crate::workloads::Workload;
use enmc_tensor::dist::{standard_normal, Zipf};
use enmc_tensor::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for synthetic classifier generation.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SynthesisConfig {
    /// Number of categories `l` to materialize. For algorithm-level
    /// experiments this may be smaller than the workload's nominal `l`
    /// (the architecture simulator uses the nominal shape regardless).
    pub categories: usize,
    /// Hidden dimension `d`.
    pub hidden: usize,
    /// Number of Gaussian clusters the category rows are drawn from;
    /// controls the effective rank of `W`.
    pub clusters: usize,
    /// Standard deviation of per-row noise around its cluster centre,
    /// relative to the centre scale (higher → harder to screen).
    pub row_noise: f32,
    /// Zipf exponent for category popularity.
    pub zipf_exponent: f64,
    /// Scale of the Zipf popularity bonus added to the bias vector.
    pub bias_scale: f32,
    /// Signal-to-noise control of queries: the hidden vector is
    /// `signal · ŵ_t + noise`, with noise of unit scale per dimension.
    pub query_signal: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SynthesisConfig {
    /// Sensible defaults for a workload, materializing at most `max_rows`
    /// categories (algorithm experiments run on a representative slice of
    /// the category space; shapes used for *performance* always come from
    /// the nominal workload).
    pub fn for_workload(w: &Workload, max_rows: usize, seed: u64) -> Self {
        SynthesisConfig {
            categories: w.categories.min(max_rows),
            hidden: w.hidden,
            clusters: 64,
            row_noise: 0.4,
            zipf_exponent: 1.0,
            bias_scale: 1.0,
            query_signal: 2.2,
            seed,
        }
    }
}

/// A synthesized extreme classifier with its query distribution.
///
/// # Example
///
/// ```
/// use enmc_model::{SynthesisConfig, SyntheticClassifier};
/// let cfg = SynthesisConfig {
///     categories: 512, hidden: 32, clusters: 8, row_noise: 0.4,
///     zipf_exponent: 1.0, bias_scale: 1.0, query_signal: 2.2, seed: 7,
/// };
/// let synth = SyntheticClassifier::generate(&cfg).unwrap();
/// let q = synth.sample_queries(4);
/// assert_eq!(q.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticClassifier {
    weights: Matrix,
    bias: Vector,
    zipf: Zipf,
    config: SynthesisConfig,
}

/// One synthetic query: the hidden vector and the category it was generated
/// from (its "ground-truth" label).
#[derive(Debug, Clone)]
pub struct Query {
    /// Hidden representation from the (virtual) front-end.
    pub hidden: Vector,
    /// The category whose row seeded this query.
    pub target: usize,
}

impl SyntheticClassifier {
    /// Generates a classifier from `config`.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero or `clusters >
    /// categories`.
    pub fn generate(config: &SynthesisConfig) -> Result<Self, String> {
        if config.categories == 0 || config.hidden == 0 || config.clusters == 0 {
            return Err("categories, hidden and clusters must be nonzero".into());
        }
        if config.clusters > config.categories {
            return Err("clusters cannot exceed categories".into());
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let d = config.hidden;
        // Cluster centres: unit-scale Gaussian directions.
        let scale = 1.0 / (d as f32).sqrt();
        let mut centres = Matrix::zeros(config.clusters, d);
        for r in 0..config.clusters {
            for v in centres.row_mut(r) {
                *v = standard_normal(&mut rng) * scale;
            }
        }
        let mut weights = Matrix::zeros(config.categories, d);
        for r in 0..config.categories {
            let c = rng.random_range(0..config.clusters);
            // Borrow-split: copy the centre first.
            let centre: Vec<f32> = centres.row(c).to_vec();
            for (w, ctr) in weights.row_mut(r).iter_mut().zip(&centre) {
                *w = *ctr + standard_normal(&mut rng) * scale * config.row_noise;
            }
        }
        let zipf = Zipf::new(config.categories, config.zipf_exponent)
            .map_err(|e| e.to_string())?;
        // Zipf popularity bonus: log-pmf, shifted to zero mean.
        let log_pmf: Vec<f64> = (0..config.categories).map(|r| zipf.pmf(r).ln()).collect();
        let mean_lp = log_pmf.iter().sum::<f64>() / log_pmf.len() as f64;
        let bias: Vector = log_pmf
            .iter()
            .map(|&lp| ((lp - mean_lp) as f32) * config.bias_scale * 0.1)
            .collect();
        Ok(SyntheticClassifier { weights, bias, zipf, config: config.clone() })
    }

    /// The classifier weight matrix `W` (`categories × hidden`).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector `b`.
    pub fn bias(&self) -> &Vector {
        &self.bias
    }

    /// The generation configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Number of categories materialized.
    pub fn categories(&self) -> usize {
        self.weights.rows()
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> usize {
        self.weights.cols()
    }

    /// Samples `n` queries using a dedicated RNG derived from the base
    /// seed, so weights and queries are independent streams.
    pub fn sample_queries(&self, n: usize) -> Vec<Query> {
        self.sample_queries_seeded(n, self.config.seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Samples `n` queries from an explicit seed (e.g. to build disjoint
    /// train / validation / test splits).
    pub fn sample_queries_seeded(&self, n: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = self.hidden();
        (0..n)
            .map(|_| {
                let target = self.zipf.sample(&mut rng);
                let row = self.weights.row(target);
                let norm: f32 =
                    row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                let noise_scale = 1.0 / (d as f32).sqrt();
                let hidden: Vector = row
                    .iter()
                    .map(|&w| {
                        self.config.query_signal * w / norm
                            + standard_normal(&mut rng) * noise_scale
                    })
                    .collect();
                Query { hidden, target }
            })
            .collect()
    }

    /// Full classification logits `z = W h + b` for a query (the reference
    /// output every approximation is measured against).
    pub fn full_logits(&self, hidden: &Vector) -> Vector {
        self.weights.matvec_bias(hidden, &self.bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enmc_tensor::select::top_k_indices;

    fn small_config(seed: u64) -> SynthesisConfig {
        SynthesisConfig {
            categories: 1000,
            hidden: 48,
            clusters: 16,
            row_noise: 0.4,
            zipf_exponent: 1.0,
            bias_scale: 1.0,
            query_signal: 2.2,
            seed,
        }
    }

    #[test]
    fn generate_validates_config() {
        let mut cfg = small_config(0);
        cfg.categories = 0;
        assert!(SyntheticClassifier::generate(&cfg).is_err());
        let mut cfg = small_config(0);
        cfg.clusters = 2000;
        assert!(SyntheticClassifier::generate(&cfg).is_err());
    }

    #[test]
    fn deterministic_across_calls() {
        let cfg = small_config(42);
        let a = SyntheticClassifier::generate(&cfg).unwrap();
        let b = SyntheticClassifier::generate(&cfg).unwrap();
        assert_eq!(a.weights(), b.weights());
        let qa = a.sample_queries(3);
        let qb = b.sample_queries(3);
        for (x, y) in qa.iter().zip(&qb) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.hidden, y.hidden);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticClassifier::generate(&small_config(1)).unwrap();
        let b = SyntheticClassifier::generate(&small_config(2)).unwrap();
        assert_ne!(a.weights(), b.weights());
    }

    #[test]
    fn queries_recover_their_target_in_top_k() {
        // The full classifier should put the generating category in the
        // top-10 for a large majority of queries — this is the property
        // that makes "only a few candidates matter".
        let synth = SyntheticClassifier::generate(&small_config(7)).unwrap();
        let queries = synth.sample_queries(200);
        let mut hits = 0;
        for q in &queries {
            let z = synth.full_logits(&q.hidden);
            if top_k_indices(z.as_slice(), 10).contains(&q.target) {
                hits += 1;
            }
        }
        let rate = hits as f64 / queries.len() as f64;
        assert!(rate > 0.7, "top-10 recovery rate {rate}");
    }

    #[test]
    fn popular_targets_dominate() {
        let synth = SyntheticClassifier::generate(&small_config(9)).unwrap();
        let queries = synth.sample_queries(2000);
        let head = queries.iter().filter(|q| q.target < 100).count();
        // Under Zipf(1.0) over 1000 ranks, the top-100 hold ~62% of mass.
        let frac = head as f64 / queries.len() as f64;
        assert!(frac > 0.5, "head fraction {frac}");
    }

    #[test]
    fn train_and_validation_splits_are_disjoint_streams() {
        let synth = SyntheticClassifier::generate(&small_config(3)).unwrap();
        let a = synth.sample_queries_seeded(5, 100);
        let b = synth.sample_queries_seeded(5, 200);
        assert!(a.iter().zip(&b).any(|(x, y)| x.hidden != y.hidden));
    }

    #[test]
    fn for_workload_caps_rows() {
        let w = crate::workloads::WorkloadId::Xmlcnn670K.workload();
        let cfg = SynthesisConfig::for_workload(&w, 10_000, 0);
        assert_eq!(cfg.categories, 10_000);
        assert_eq!(cfg.hidden, 512);
    }

    #[test]
    fn effective_rank_is_low() {
        // Rows drawn from 16 clusters + noise: the top-16 principal
        // directions should capture most of the energy. Cheap proxy: the
        // mean cosine similarity of same-cluster rows is high.
        let cfg = small_config(11);
        let synth = SyntheticClassifier::generate(&cfg).unwrap();
        // Compare rows to the mean row (crude but monotone in structure).
        let w = synth.weights();
        let mut mean = vec![0.0_f32; w.cols()];
        for r in 0..w.rows() {
            for (m, &x) in mean.iter_mut().zip(w.row(r)) {
                *m += x;
            }
        }
        // With clusters the variance of row norms around the centre scale
        // is bounded; just sanity-check the matrix is not degenerate.
        assert!(w.max_abs() > 0.0);
        assert!(mean.iter().any(|&x| x != 0.0));
    }
}
