//! DDR4 command set.

use crate::mapping::Coord;

/// The kind of a DDR command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CommandKind {
    /// Activate a row into the bank's row buffer.
    Act,
    /// Precharge (close) one bank's row buffer.
    Pre,
    /// Precharge all banks of a rank.
    PreA,
    /// Column read (row must be open).
    Rd,
    /// Column write (row must be open).
    Wr,
    /// Read with auto-precharge.
    Rda,
    /// Write with auto-precharge.
    Wra,
    /// Refresh (all banks of a rank).
    Ref,
}

impl CommandKind {
    /// `true` for column commands that move data on the DQ bus.
    pub fn is_column(self) -> bool {
        matches!(self, CommandKind::Rd | CommandKind::Wr | CommandKind::Rda | CommandKind::Wra)
    }

    /// `true` for reads (with or without auto-precharge).
    pub fn is_read(self) -> bool {
        matches!(self, CommandKind::Rd | CommandKind::Rda)
    }

    /// `true` for writes (with or without auto-precharge).
    pub fn is_write(self) -> bool {
        matches!(self, CommandKind::Wr | CommandKind::Wra)
    }

    /// `true` if the command auto-precharges its bank.
    pub fn auto_precharge(self) -> bool {
        matches!(self, CommandKind::Rda | CommandKind::Wra)
    }

    /// The conventional mnemonic, as it appears in trace output.
    pub fn name(self) -> &'static str {
        match self {
            CommandKind::Act => "ACT",
            CommandKind::Pre => "PRE",
            CommandKind::PreA => "PREA",
            CommandKind::Rd => "RD",
            CommandKind::Wr => "WR",
            CommandKind::Rda => "RDA",
            CommandKind::Wra => "WRA",
            CommandKind::Ref => "REF",
        }
    }
}

/// A fully addressed DDR command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Command {
    /// What to do.
    pub kind: CommandKind,
    /// Where (bank-level coordinates; row/column ignored where
    /// meaningless, e.g. for REF).
    pub coord: Coord,
}

impl Command {
    /// Convenience constructor.
    pub fn new(kind: CommandKind, coord: Coord) -> Self {
        Command { kind, coord }
    }
}

/// A command stamped with its issue cycle — one entry of the command log
/// the golden reference model replays (see [`crate::golden`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedCommand {
    /// Memory-clock cycle the command issued at.
    pub cycle: u64,
    /// The command.
    pub command: Command,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(CommandKind::Rd.is_column());
        assert!(CommandKind::Wra.is_column());
        assert!(!CommandKind::Act.is_column());
        assert!(CommandKind::Rd.is_read());
        assert!(CommandKind::Rda.is_read());
        assert!(!CommandKind::Wr.is_read());
        assert!(CommandKind::Wr.is_write());
        assert!(CommandKind::Wra.is_write());
        assert!(CommandKind::Rda.auto_precharge());
        assert!(!CommandKind::Rd.auto_precharge());
    }

    #[test]
    fn mnemonics_are_distinct() {
        let all = [
            CommandKind::Act,
            CommandKind::Pre,
            CommandKind::PreA,
            CommandKind::Rd,
            CommandKind::Wr,
            CommandKind::Rda,
            CommandKind::Wra,
            CommandKind::Ref,
        ];
        let names: std::collections::HashSet<&str> = all.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), all.len());
    }
}
