//! Physical-address → device-coordinate mapping.
//!
//! The mapping determines how a streaming access pattern spreads over
//! channels, ranks and banks — and therefore how much bank-level
//! parallelism and row-buffer locality a workload sees. We implement the
//! two schemes relevant here:
//!
//! * [`AddressMapping::RoBaRaCoCh`] — row : bank : rank : column : channel
//!   (from MSB to LSB). Sequential cache lines interleave across channels
//!   first, then walk a row. The standard host-side mapping.
//! * [`AddressMapping::RoRaBaCoBg`] — row : rank : bank : column : bank-group.
//!   Used for the on-DIMM ENMC controller: consecutive bursts alternate
//!   across the four bank groups (so back-to-back column commands pay the
//!   short tCCD_S, keeping the DQ bus saturated) while each bank still
//!   streams an entire row before moving on.

use crate::config::Organization;

/// Bank-level coordinates of one 64-byte burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Coord {
    /// Channel index.
    pub channel: usize,
    /// Rank within the channel.
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Burst-aligned column (0..bursts_per_row).
    pub column: usize,
}

impl Coord {
    /// Flat bank id within a rank.
    pub fn flat_bank(&self, org: &Organization) -> usize {
        self.bank_group * org.banks_per_group + self.bank
    }
}

/// Supported address-interleaving schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AddressMapping {
    /// Row:Bank:Rank:Column:Channel — channel-interleaved (host default).
    RoBaRaCoCh,
    /// Row:Rank:Bank:Column:BankGroup — bank-group-interleaved row
    /// streaming (ENMC on-DIMM).
    RoRaBaCoBg,
}

impl AddressMapping {
    /// Decodes a byte address into coordinates.
    ///
    /// The low 6 bits (64-byte burst offset) are dropped first.
    pub fn decode(&self, addr: u64, org: &Organization) -> Coord {
        let mut a = addr >> 6; // burst-aligned
        let mut take = |n: usize| -> usize {
            let v = (a % n as u64) as usize;
            a /= n as u64;
            v
        };
        match self {
            AddressMapping::RoBaRaCoCh => {
                let channel = take(org.channels);
                let column = take(org.bursts_per_row());
                let rank = take(org.ranks);
                let bank = take(org.banks_per_group);
                let bank_group = take(org.bank_groups);
                let row = take(org.rows);
                Coord { channel, rank, bank_group, bank, row, column }
            }
            AddressMapping::RoRaBaCoBg => {
                let bank_group = take(org.bank_groups);
                let column = take(org.bursts_per_row());
                let bank = take(org.banks_per_group);
                let rank = take(org.ranks);
                let row = take(org.rows);
                Coord { channel: 0, rank, bank_group, bank, row, column }
            }
        }
    }

    /// Encodes coordinates back to a byte address (inverse of
    /// [`AddressMapping::decode`]).
    pub fn encode(&self, c: &Coord, org: &Organization) -> u64 {
        let mut addr: u64 = 0;
        let mut shiftmul: u64 = 1;
        let put = |v: usize, n: usize, addr: &mut u64, shiftmul: &mut u64| {
            *addr += v as u64 * *shiftmul;
            *shiftmul *= n as u64;
        };
        match self {
            AddressMapping::RoBaRaCoCh => {
                put(c.channel, org.channels, &mut addr, &mut shiftmul);
                put(c.column, org.bursts_per_row(), &mut addr, &mut shiftmul);
                put(c.rank, org.ranks, &mut addr, &mut shiftmul);
                put(c.bank, org.banks_per_group, &mut addr, &mut shiftmul);
                put(c.bank_group, org.bank_groups, &mut addr, &mut shiftmul);
                put(c.row, org.rows, &mut addr, &mut shiftmul);
            }
            AddressMapping::RoRaBaCoBg => {
                put(c.bank_group, org.bank_groups, &mut addr, &mut shiftmul);
                put(c.column, org.bursts_per_row(), &mut addr, &mut shiftmul);
                put(c.bank, org.banks_per_group, &mut addr, &mut shiftmul);
                put(c.rank, org.ranks, &mut addr, &mut shiftmul);
                put(c.row, org.rows, &mut addr, &mut shiftmul);
            }
        }
        addr << 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn org() -> Organization {
        DramConfig::enmc_table3().organization
    }

    #[test]
    fn roundtrip_robaracoch() {
        let org = org();
        let m = AddressMapping::RoBaRaCoCh;
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 33) + 64 * 7] {
            let c = m.decode(addr, &org);
            assert_eq!(m.encode(&c, &org), addr, "addr {addr}");
        }
    }

    #[test]
    fn roundtrip_rorabaco() {
        let org = org();
        let m = AddressMapping::RoRaBaCoBg;
        for addr in [0u64, 64, 8192, 1 << 22, (1 << 30) + 64 * 3] {
            let c = m.decode(addr, &org);
            assert_eq!(m.encode(&c, &org), addr, "addr {addr}");
        }
    }

    #[test]
    fn sequential_lines_interleave_channels_in_host_mapping() {
        let org = org();
        let m = AddressMapping::RoBaRaCoCh;
        let c0 = m.decode(0, &org);
        let c1 = m.decode(64, &org);
        assert_ne!(c0.channel, c1.channel);
        assert_eq!(c0.row, c1.row);
    }

    #[test]
    fn sequential_lines_alternate_bank_groups_in_enmc_mapping() {
        let org = org();
        let m = AddressMapping::RoRaBaCoBg;
        let c0 = m.decode(0, &org);
        let c1 = m.decode(64, &org);
        // Adjacent bursts hit different bank groups (tCCD_S path)...
        assert_ne!(c0.bank_group, c1.bank_group);
        assert_eq!(c0.row, c1.row);
        // ...and burst 4 returns to the same bank, next column.
        let c4 = m.decode(256, &org);
        assert_eq!(c4.flat_bank(&org), c0.flat_bank(&org));
        assert_eq!(c4.column, c0.column + 1);
    }

    #[test]
    fn enmc_mapping_streams_whole_rows_before_switching_banks() {
        let org = org();
        let m = AddressMapping::RoRaBaCoBg;
        // One interleaved row group = bank_groups × row_bytes.
        let group_bytes = (org.bank_groups * org.row_bytes()) as u64;
        let c0 = m.decode(0, &org);
        let c_next = m.decode(group_bytes, &org);
        assert_ne!(c0.bank, c_next.bank);
        assert_eq!(c0.row, c_next.row);
    }

    #[test]
    fn flat_bank_covers_all_banks() {
        let org = org();
        let mut seen = std::collections::HashSet::new();
        for bg in 0..org.bank_groups {
            for b in 0..org.banks_per_group {
                let c = Coord { channel: 0, rank: 0, bank_group: bg, bank: b, row: 0, column: 0 };
                seen.insert(c.flat_bank(&org));
            }
        }
        assert_eq!(seen.len(), org.banks_per_rank());
    }
}
